//! Integration tests for the aggregate-function extension: COUNT, MIN,
//! MAX, AVG queries, their view-derivability rules, and the MDX
//! `AGGREGATE` clause — all checked against hand-rolled computations
//! directly over the generated base data.

use std::collections::BTreeMap;

use starshare::{
    reference_eval, AggFn, CubeBuilder, Dimension, Engine, GroupBy, GroupByQuery, HardwareModel,
    MeasureKind, MemberPred, OptimizerKind, StarSchema,
};

/// A small 2-dimensional cube with SUM, COUNT, MIN and MAX views.
fn build_engine() -> Engine {
    let schema = StarSchema::new(
        vec![
            Dimension::uniform("X", 3, &[4]),
            Dimension::uniform("Y", 2, &[5]),
        ],
        "v",
    );
    let cube = CubeBuilder::new(schema)
        .rows(5_000)
        .seed(77)
        .materialize("X'Y")
        .materialize_agg("X'Y", AggFn::Count)
        .materialize_agg("X'Y", AggFn::Min)
        .materialize_agg("X'Y", AggFn::Max)
        .index("XY", "X'")
        .build();
    Engine::new(cube, HardwareModel::paper_1998())
}

/// Hand-computed truth: per X' group, (sum, count, min, max) of base rows
/// with Y'' = 0.
fn ground_truth(e: &Engine) -> BTreeMap<u32, (f64, u64, f64, f64)> {
    let cube = e.cube();
    let base = cube.catalog.table(cube.catalog.base_table().unwrap());
    let mut keys = vec![0u32; 2];
    let mut truth: BTreeMap<u32, (f64, u64, f64, f64)> = BTreeMap::new();
    for pos in 0..base.n_rows() {
        let m = base.heap().read_at(pos, &mut keys);
        if cube.schema.dim(1).roll_up(keys[1], 0, 1) != 0 {
            continue;
        }
        let g = cube.schema.dim(0).roll_up(keys[0], 0, 1);
        let e = truth
            .entry(g)
            .or_insert((0.0, 0, f64::INFINITY, f64::NEG_INFINITY));
        e.0 += m;
        e.1 += 1;
        e.2 = e.2.min(m);
        e.3 = e.3.max(m);
    }
    truth
}

fn query(e: &Engine, agg: AggFn) -> GroupByQuery {
    GroupByQuery::new(
        GroupBy::parse(&e.cube().schema, "X'Y*").unwrap(),
        vec![MemberPred::All, MemberPred::eq(1, 0)],
    )
    .with_agg(agg)
}

#[test]
fn every_aggregate_matches_ground_truth() {
    let mut e = build_engine();
    let truth = ground_truth(&e);
    for agg in [AggFn::Sum, AggFn::Count, AggFn::Min, AggFn::Max, AggFn::Avg] {
        let q = query(&e, agg);
        let plan = e
            .optimize(std::slice::from_ref(&q), OptimizerKind::Gg)
            .unwrap();
        e.flush();
        let exec = e.execute_plan(&plan).unwrap();
        let r = &exec.results[0];
        assert_eq!(r.n_groups(), truth.len(), "{agg}");
        for (key, got) in &r.rows {
            let (sum, count, min, max) = truth[&key[0]];
            let want = match agg {
                AggFn::Sum => sum,
                AggFn::Count => count as f64,
                AggFn::Min => min,
                AggFn::Max => max,
                AggFn::Avg => sum / count as f64,
            };
            assert!(
                (got - want).abs() < 1e-9 * want.abs().max(1.0),
                "{agg} group {key:?}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn derivability_respects_measure_kinds() {
    let e = build_engine();
    let cat = &e.cube().catalog;
    let base = cat.base_table().unwrap();
    let sum_view = cat.find_by_name("X'Y").unwrap();
    let count_view = cat.find_by_name("COUNT:X'Y").unwrap();
    let min_view = cat.find_by_name("MIN:X'Y").unwrap();

    assert_eq!(cat.table(base).measure(), MeasureKind::Raw);
    assert_eq!(
        cat.table(count_view).measure(),
        MeasureKind::Aggregated(AggFn::Count)
    );

    // SUM: base + SUM view only.
    let c = cat.candidates_for(&query(&e, AggFn::Sum));
    assert!(c.contains(&base) && c.contains(&sum_view));
    assert!(!c.contains(&count_view) && !c.contains(&min_view));

    // COUNT: base + COUNT view.
    let c = cat.candidates_for(&query(&e, AggFn::Count));
    assert!(c.contains(&base) && c.contains(&count_view));
    assert!(!c.contains(&sum_view));

    // MIN: base + MIN view.
    let c = cat.candidates_for(&query(&e, AggFn::Min));
    assert!(c.contains(&base) && c.contains(&min_view));
    assert!(!c.contains(&sum_view) && !c.contains(&count_view));

    // AVG: raw base only.
    let c = cat.candidates_for(&query(&e, AggFn::Avg));
    assert_eq!(c, vec![base]);
}

#[test]
fn count_from_view_equals_count_from_base() {
    let e = build_engine();
    let cat = &e.cube().catalog;
    let q = query(&e, AggFn::Count);
    let via_base = reference_eval(e.cube(), cat.base_table().unwrap(), &q);
    let via_view = reference_eval(e.cube(), cat.find_by_name("COUNT:X'Y").unwrap(), &q);
    assert!(via_base.approx_eq(&via_view, 1e-12));
    // Sanity: the counts over the unfiltered query sum to the row count.
    let all = GroupByQuery::unfiltered(GroupBy::parse(&e.cube().schema, "X'Y*").unwrap())
        .with_agg(AggFn::Count);
    let r = reference_eval(e.cube(), cat.base_table().unwrap(), &all);
    assert_eq!(r.grand_total(), 5_000.0);
}

#[test]
fn mdx_aggregate_clause() {
    let mut e = build_engine();
    let out = e
        .mdx("{X'.X1.CHILDREN} on COLUMNS AGGREGATE count CONTEXT XY;")
        .unwrap();
    assert_eq!(out.expr(0).bound.queries[0].agg, AggFn::Count);
    let expect = reference_eval(
        e.cube(),
        e.cube().catalog.base_table().unwrap(),
        &out.expr(0).bound.queries[0],
    );
    assert!(out.result(0).approx_eq(&expect, 1e-12));
    // Unknown aggregate name errors cleanly.
    let err = e
        .mdx("{X'.X1} on COLUMNS AGGREGATE median CONTEXT XY;")
        .unwrap_err();
    assert!(err.to_string().contains("unknown aggregate"), "{err}");
}

#[test]
fn mixed_aggregate_workload_optimizes_and_executes() {
    // One workload mixing SUM, COUNT and AVG: the optimizer must route AVG
    // to the base, may route COUNT to the COUNT view, and everything must
    // still come out exactly right.
    let mut e = build_engine();
    let qs = vec![
        query(&e, AggFn::Sum),
        query(&e, AggFn::Count),
        query(&e, AggFn::Avg),
    ];
    for kind in OptimizerKind::ALL {
        let plan = e.optimize(&qs, kind).unwrap();
        // AVG must be assigned to the raw base.
        let (avg_table, _, _) = plan
            .assignments()
            .find(|(_, q, _)| q.agg == AggFn::Avg)
            .unwrap();
        assert_eq!(
            e.cube().catalog.table(avg_table).measure(),
            MeasureKind::Raw,
            "{kind}"
        );
        e.flush();
        let exec = e.execute_plan(&plan).unwrap();
        for r in &exec.results {
            let expect = reference_eval(e.cube(), e.cube().catalog.base_table().unwrap(), &r.query);
            assert!(r.approx_eq(&expect, 1e-9), "{kind} {:?}", r.query.agg);
        }
    }
}

#[test]
fn display_shows_non_sum_aggregates() {
    let e = build_engine();
    let q = query(&e, AggFn::Count);
    let d = q.display(&e.cube().schema);
    assert!(d.starts_with("COUNT "), "{d}");
    let q2 = query(&e, AggFn::Sum);
    assert!(!q2.display(&e.cube().schema).contains("SUM"));
}

#[test]
fn avg_view_is_rejected_at_build_time() {
    let schema = StarSchema::new(vec![Dimension::uniform("X", 2, &[2])], "v");
    let r = std::panic::catch_unwind(|| {
        CubeBuilder::new(schema)
            .rows(10)
            .materialize_agg("X'", AggFn::Avg)
            .build()
    });
    assert!(r.is_err(), "AVG views must be rejected");
}
