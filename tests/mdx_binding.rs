//! Integration tests on the MDX layer against the full engine: the paper's
//! queries via text vs programmatic construction, expansion counts, and a
//! generative parse/bind robustness sweep.

use starshare::paper_queries::{bind_paper_query, paper_query_target, paper_query_text};
use starshare::{bind, paper_schema, parse, Engine, PaperCubeSpec};
use starshare_prng::Prng;

#[test]
fn paper_queries_text_and_programmatic_agree() {
    let schema = paper_schema(18432);
    for n in 1..=9 {
        let via_text = bind_paper_query(&schema, n).unwrap();
        assert_eq!(
            via_text.group_by.display(&schema),
            paper_query_target(n),
            "Q{n} target"
        );
        // Re-parse the same text: binding is deterministic.
        let expr = parse(paper_query_text(n)).unwrap();
        let again = bind(&schema, &expr).unwrap();
        assert_eq!(again.queries.len(), 1);
        assert_eq!(again.queries[0], via_text, "Q{n} rebind");
    }
}

#[test]
fn expansion_count_is_product_of_level_choices() {
    let schema = paper_schema(48);
    let cases = [
        // (MDX, expected queries)
        ("{A''.A1} on COLUMNS CONTEXT ABCD;", 1),
        ("{A''.A1, A''.A1.CHILDREN} on COLUMNS CONTEXT ABCD;", 2),
        (
            "{A''.A1, A''.A1.CHILDREN} on COLUMNS \
             {B''.B1, B''.B1.CHILDREN} on ROWS CONTEXT ABCD;",
            4,
        ),
        (
            "{A''.A1, A''.A1.CHILDREN, A.AAA1} on COLUMNS \
             {B''.B1, B''.B1.CHILDREN} on ROWS \
             {C''.C1} on PAGES CONTEXT ABCD;",
            6,
        ),
    ];
    for (mdx, expect) in cases {
        let bound = bind(&schema, &parse(mdx).unwrap()).unwrap();
        assert_eq!(bound.queries.len(), expect, "{mdx}");
    }
}

#[test]
fn engine_evaluates_the_full_nine_query_suite_in_one_session() {
    // One engine, warm buffer pool across queries — later queries may hit
    // cached pages but answers never change.
    let mut e = Engine::paper(PaperCubeSpec {
        base_rows: 4_000,
        d_leaf: 24,
        seed: 3,
        with_indexes: true,
    });
    let mut grand_totals = Vec::new();
    for n in 1..=9 {
        let out = e.mdx(paper_query_text(n)).unwrap();
        grand_totals.push(out.result(0).grand_total());
    }
    // Re-run cold: identical totals.
    for n in 1..=9 {
        e.flush();
        let out = e.mdx(paper_query_text(n)).unwrap();
        assert_eq!(out.result(0).grand_total(), grand_totals[n - 1], "Q{n}");
    }
}

/// Generated member paths either bind cleanly or fail with an error —
/// never panic — and bound predicates reference valid members.
#[test]
fn random_paths_bind_or_error_cleanly() {
    let schema = paper_schema(48);
    let mut rng = Prng::seed_from_u64(0x0B1D_0001);
    for _ in 0..64 {
        let dim = rng.gen_range(0usize..4);
        let level = rng.gen_range(0u8..3);
        let member = rng.gen_range(0u32..60);
        let children = rng.gen_bool(0.5);
        let d = schema.dim(dim);
        let card = d.cardinality(level);
        let name = d.member_name(level, member % card);
        let path = if children && level > 0 {
            format!("{}.{}.CHILDREN", d.level(level).name, name)
        } else {
            format!("{}.{}", d.level(level).name, name)
        };
        let mdx = format!("{{{path}}} on COLUMNS CONTEXT ABCD;");
        let bound = bind(&schema, &parse(&mdx).unwrap());
        assert!(bound.is_ok(), "{mdx}: {bound:?}");
        let q = &bound.unwrap().queries[0];
        // The restricted dimension's predicate members are in range.
        if let starshare::MemberPred::In { level: pl, members } = &q.preds[dim] {
            for &m in members {
                assert!(m < schema.dim(dim).cardinality(*pl));
            }
        } else {
            panic!("expected a predicate on dimension {dim}");
        }
    }
}

/// Arbitrary junk never panics the parser.
#[test]
fn parser_never_panics() {
    let mut rng = Prng::seed_from_u64(0x0B1D_0002);
    for _ in 0..64 {
        let len = rng.gen_range(0usize..=60);
        let s: String = (0..len)
            .map(|_| {
                // Printable-ish chars plus grammar punctuation, heavy on the
                // bytes most likely to confuse a tokenizer.
                let c = rng.gen_range(0x20u32..0x7F);
                char::from_u32(c).unwrap()
            })
            .collect();
        let _ = parse(&s);
    }
}

/// Structured-ish junk: random token soup around a valid skeleton.
#[test]
fn parser_handles_token_soup() {
    let pres = ["{", "}", "(", ")", ",", ".", "NEST", "on", ""];
    let posts = ["{", ")", "FILTER", ";", "CONTEXT", ""];
    for pre in pres {
        for post in posts {
            let s = format!("{pre} {{A''.A1}} on COLUMNS CONTEXT ABCD {post}");
            let _ = parse(&s); // must not panic; may or may not parse
        }
    }
}
