//! Property tests on the optimizers: every algorithm, on random workloads,
//! must produce a *valid* plan (each query exactly once, every assignment
//! answerable, index methods only where indexes apply), the exhaustive
//! search must dominate every heuristic on estimates, and executing any
//! produced plan must yield reference answers. (The greedy algorithms are
//! deliberately *not* asserted to be totally ordered — see
//! `optimal_dominates_every_heuristic`.)

use std::sync::OnceLock;

use starshare::{
    paper_cube, reference_eval, Cube, Engine, GroupBy, GroupByQuery, HardwareModel, JoinMethod,
    LevelRef, MemberPred, OptimizerKind, PaperCubeSpec,
};
use starshare_prng::Prng;

fn cube_spec() -> PaperCubeSpec {
    PaperCubeSpec {
        base_rows: 3_000,
        d_leaf: 24,
        seed: 13,
        with_indexes: true,
    }
}

fn cube() -> &'static Cube {
    static CUBE: OnceLock<Cube> = OnceLock::new();
    CUBE.get_or_init(|| paper_cube(cube_spec()))
}

/// Queries whose predicate levels are no finer than level 1, so several
/// materialized views stay candidates (keeps the search interesting).
fn random_query(rng: &mut Prng) -> GroupByQuery {
    fn dim(rng: &mut Prng, card1: u32) -> (LevelRef, MemberPred) {
        let level = if rng.gen_bool(0.5) {
            LevelRef::All
        } else {
            LevelRef::Level(rng.gen_range(0u8..3))
        };
        let pred = if rng.gen_bool(0.4) {
            MemberPred::All
        } else {
            let lvl = rng.gen_range(1u8..3);
            let card = if lvl == 1 { card1 } else { 3 };
            let n = rng.gen_range(1usize..4);
            let ms: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..24) % card).collect();
            MemberPred::members_in(lvl, ms)
        };
        (level, pred)
    }
    let specs = [dim(rng, 6), dim(rng, 6), dim(rng, 6), dim(rng, 24)];
    let (levels, preds): (Vec<LevelRef>, Vec<MemberPred>) = specs.into_iter().unzip();
    GroupByQuery::new(GroupBy::new(levels), preds)
}

fn random_workload(rng: &mut Prng, lo: usize, hi: usize) -> Vec<GroupByQuery> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| random_query(rng)).collect()
}

#[test]
fn plans_are_valid_for_all_algorithms() {
    let cube = cube();
    let engine = Engine::new(paper_cube(cube_spec()), HardwareModel::paper_1998());
    let cm = engine.cost_model();
    let mut rng = Prng::seed_from_u64(0x0971_0001);
    for _ in 0..24 {
        let qs = random_workload(&mut rng, 1, 5);
        for kind in OptimizerKind::ALL {
            let plan = kind.run(&cm, &qs).expect("paper cube answers everything");
            assert_eq!(plan.n_queries(), qs.len(), "{}", kind);
            // Each input query appears exactly once.
            for q in &qs {
                let want = qs.iter().filter(|x| *x == q).count();
                let got = plan.assignments().filter(|(_, pq, _)| *pq == q).count();
                assert_eq!(got, want, "{}: {}", kind, q.display(&cube.schema));
            }
            for (t, q, m) in plan.assignments() {
                assert!(
                    q.answerable_from(engine.cube().catalog.table(t).group_by()),
                    "{}: unanswerable assignment",
                    kind
                );
                if m == JoinMethod::Index {
                    assert!(cm.index_applicable(q, t), "{}: bogus index method", kind);
                }
            }
            // No two classes share a base table (they should have merged).
            for (i, a) in plan.classes.iter().enumerate() {
                for b in &plan.classes[i + 1..] {
                    assert!(a.table != b.table, "{}: duplicate class base", kind);
                }
            }
        }
    }
}

#[test]
fn search_power_ordering_holds() {
    let engine = Engine::new(paper_cube(cube_spec()), HardwareModel::paper_1998());
    let cm = engine.cost_model();
    let mut rng = Prng::seed_from_u64(0x0971_0002);
    for _ in 0..24 {
        let qs = random_workload(&mut rng, 1, 4);
        let gg = OptimizerKind::Gg.run(&cm, &qs).unwrap().estimated_cost;
        let opt = OptimizerKind::Optimal.run(&cm, &qs).unwrap().estimated_cost;
        assert!(opt <= gg, "optimal {} > GG {}", opt, gg);
        // Singleton workloads: all algorithms find the same best plan.
        if qs.len() == 1 {
            let tplo = OptimizerKind::Tplo.run(&cm, &qs).unwrap().estimated_cost;
            assert_eq!(tplo, opt);
        }
    }
}

#[test]
fn executing_any_plan_gives_reference_answers() {
    let cube = cube();
    let base = cube.catalog.base_table().unwrap();
    let mut engine = Engine::new(paper_cube(cube_spec()), HardwareModel::paper_1998());
    let mut rng = Prng::seed_from_u64(0x0971_0003);
    for _ in 0..24 {
        let qs = random_workload(&mut rng, 1, 4);
        for kind in [OptimizerKind::Tplo, OptimizerKind::Gg] {
            let plan = engine.optimize(&qs, kind).unwrap();
            engine.flush();
            let exec = engine.execute_plan(&plan).unwrap();
            let plan_queries: Vec<GroupByQuery> =
                plan.assignments().map(|(_, q, _)| q.clone()).collect();
            for (q, r) in plan_queries.iter().zip(&exec.results) {
                let expect = reference_eval(cube, base, q);
                assert!(
                    r.approx_eq(&expect, 1e-9),
                    "{}: {}",
                    kind,
                    q.display(&cube.schema)
                );
            }
        }
    }
}

#[test]
fn optimal_dominates_every_heuristic() {
    // The only *guaranteed* ordering: the exhaustive search is at least
    // as good as every heuristic, and GGI never loses to GG (it starts
    // from GG's plan and accepts only improvements). The greedy
    // algorithms are NOT totally ordered in general — GG's bigger
    // greedy steps can backfire on adversarial workloads (observed at
    // 16+ random queries; see the `scaling` harness) — so no
    // GG ≤ ETPLG ≤ TPLO assertion here; the paper-workload tests pin
    // those orderings where the paper claims them.
    let engine = Engine::new(paper_cube(cube_spec()), HardwareModel::paper_1998());
    let cm = engine.cost_model();
    let mut rng = Prng::seed_from_u64(0x0971_0004);
    for _ in 0..24 {
        let qs = random_workload(&mut rng, 2, 4);
        let tplo = OptimizerKind::Tplo.run(&cm, &qs).unwrap().estimated_cost;
        let etplg = OptimizerKind::Etplg.run(&cm, &qs).unwrap().estimated_cost;
        let gg = OptimizerKind::Gg.run(&cm, &qs).unwrap().estimated_cost;
        let ggi = starshare::ggi(&cm, &qs).unwrap().estimated_cost;
        let opt = OptimizerKind::Optimal.run(&cm, &qs).unwrap().estimated_cost;
        for (name, c) in [("TPLO", tplo), ("ETPLG", etplg), ("GG", gg), ("GGI", ggi)] {
            assert!(opt <= c, "optimal {} > {} {}", opt, name, c);
        }
        assert!(ggi <= gg, "GGI {} > GG {}", ggi, gg);
    }
}
