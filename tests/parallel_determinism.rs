//! The parallel-execution determinism contract: for every one of the
//! paper's workloads, running the partitioned subsystem at 1, 2, and 4
//! threads returns **bit-identical** query results and **identical**
//! simulated totals — both total work (`sim`) and the critical path
//! (`critical`). Only wall time may differ.

use starshare::paper_queries::bind_paper_test;
use starshare::{
    Engine, EngineConfig, GroupByQuery, OptimizerKind, PaperCubeSpec, PlanExecution, SimTime,
};

fn engine() -> Engine {
    Engine::paper(PaperCubeSpec {
        base_rows: 5_000,
        d_leaf: 48,
        seed: 23,
        with_indexes: true,
    })
}

fn assert_identical(a: &PlanExecution, b: &PlanExecution, label: &str) {
    assert_eq!(a.total.sim, b.total.sim, "{label}: sim must not move");
    assert_eq!(
        a.total.critical, b.total.critical,
        "{label}: critical path must not move"
    );
    assert_eq!(a.total.io, b.total.io, "{label}: I/O counts must not move");
    assert_eq!(a.results.len(), b.results.len(), "{label}");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.query, y.query, "{label}: query order");
        assert_eq!(x.rows, y.rows, "{label}: rows must be bit-identical");
    }
}

/// Every paper workload (Tests 1–7, covering the Figure 10–12 operator
/// studies and all of Table 2), planned by GG, executed partitioned at
/// three thread counts.
#[test]
fn every_paper_workload_is_thread_count_invariant() {
    let mut e = engine();
    for test in 1..=7 {
        let queries = bind_paper_test(&e.cube().schema, test).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        let runs: Vec<PlanExecution> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                e.flush();
                e.execute_plan_threads(&plan, n).unwrap()
            })
            .collect();
        assert_identical(&runs[0], &runs[1], &format!("test {test}, 1 vs 2 threads"));
        assert_identical(&runs[0], &runs[2], &format!("test {test}, 1 vs 4 threads"));
        assert!(
            runs[0].total.critical <= runs[0].total.sim,
            "test {test}: the critical path cannot exceed total work"
        );
        assert!(runs[0].total.sim > SimTime::ZERO, "test {test}");
    }
}

/// The Table-2 workloads stay invariant under *every* optimizer's plan
/// shape, not just GG's (index-only classes, multi-class splits, …).
#[test]
fn table2_plans_from_all_optimizers_are_invariant() {
    let mut e = engine();
    for test in 4..=7 {
        let queries = bind_paper_test(&e.cube().schema, test).unwrap();
        for kind in OptimizerKind::ALL {
            let plan = e.optimize(&queries, kind).unwrap();
            e.flush();
            let one = e.execute_plan_threads(&plan, 1).unwrap();
            e.flush();
            let four = e.execute_plan_threads(&plan, 4).unwrap();
            assert_identical(&one, &four, &format!("test {test}, {kind}"));
        }
    }
}

/// The partitioned path agrees with the sequential path on *answers*
/// (floating-point association differs, so compare with tolerance), and an
/// engine built with a threads knob > 1 routes through it transparently.
#[test]
fn parallel_answers_match_the_sequential_path() {
    let mut seq = engine();
    let mut par = EngineConfig::paper().threads(4).build_paper(PaperCubeSpec {
        base_rows: 5_000,
        d_leaf: 48,
        seed: 23,
        with_indexes: true,
    });
    let queries: Vec<GroupByQuery> = bind_paper_test(&seq.cube().schema, 3).unwrap();
    let plan = seq.optimize(&queries, OptimizerKind::Gg).unwrap();
    let s = seq.execute_plan(&plan).unwrap();
    let p = par.execute_plan(&plan).unwrap();
    assert_eq!(s.results.len(), p.results.len());
    for (a, b) in s.results.iter().zip(&p.results) {
        assert_eq!(a.query, b.query);
        assert!(a.approx_eq(b, 1e-9), "answers must agree across paths");
    }
    // Sequential runs report critical == sim; the parallel run's critical
    // must not exceed the sequential critical path for the same plan.
    assert_eq!(s.total.critical, s.total.sim);
    assert!(p.total.critical <= p.total.sim);
}

/// Repeated parallel runs of the same plan are reproducible run-to-run
/// (same process, fresh pools) — the scheduler leaves no trace.
#[test]
fn repeated_runs_are_reproducible() {
    let mut e = engine();
    let queries = bind_paper_test(&e.cube().schema, 5).unwrap();
    let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
    e.flush();
    let first = e.execute_plan_threads(&plan, 2).unwrap();
    for _ in 0..3 {
        e.flush();
        let again = e.execute_plan_threads(&plan, 2).unwrap();
        assert_identical(&first, &again, "repeat");
    }
}
