//! End-to-end integration: MDX text in, correct aggregates out, across all
//! optimizers and both cube flavours (the paper's and a custom one).

use starshare::paper_queries::{bind_paper_query, paper_query_text};
use starshare::{
    reference_eval, CubeBuilder, Dimension, Engine, HardwareModel, OptimizerKind, PaperCubeSpec,
    StarSchema,
};

fn engine() -> Engine {
    Engine::paper(PaperCubeSpec {
        base_rows: 6_000,
        d_leaf: 48,
        seed: 99,
        with_indexes: true,
    })
}

#[test]
fn every_paper_query_round_trips_through_mdx() {
    let mut e = engine();
    let base = e.cube().catalog.base_table().unwrap();
    for n in 1..=9 {
        let out = e
            .mdx(paper_query_text(n))
            .unwrap_or_else(|err| panic!("Q{n}: {err}"));
        assert_eq!(out.results().len(), 1, "Q{n}");
        let q = bind_paper_query(&e.cube().schema, n).unwrap();
        let expect = reference_eval(e.cube(), base, &q);
        assert!(
            out.result(0).approx_eq(&expect, 1e-9),
            "Q{n}: MDX round trip disagrees with reference"
        );
    }
}

#[test]
fn all_optimizers_give_identical_answers() {
    let base_engine = engine();
    let base = base_engine.cube().catalog.base_table().unwrap();
    for kind in OptimizerKind::ALL {
        let mut e = engine();
        e.set_optimizer(kind);
        for n in [1, 5, 9] {
            let out = e.mdx(paper_query_text(n)).unwrap();
            let q = bind_paper_query(&e.cube().schema, n).unwrap();
            let expect = reference_eval(base_engine.cube(), base, &q);
            assert!(
                out.result(0).approx_eq(&expect, 1e-9),
                "{kind} Q{n} wrong answer"
            );
        }
    }
}

#[test]
fn multi_query_mdx_expands_and_answers() {
    let mut e = engine();
    // Mixed levels on two axes: (A'' + A') × (C'' + C') = 4 queries.
    let out = e
        .mdx(
            "{A''.A1, A''.A2.CHILDREN} on COLUMNS \
             {C''.C1, C''.C2.CHILDREN} on ROWS \
             CONTEXT ABCD FILTER (D.DD1);",
        )
        .unwrap();
    assert_eq!(out.expr(0).bound.queries.len(), 4);
    assert_eq!(out.results().len(), 4);
    let base = e.cube().catalog.base_table().unwrap();
    for (q, &r) in out.expr(0).bound.queries.iter().zip(&out.results()) {
        let expect = reference_eval(e.cube(), base, q);
        assert!(
            r.approx_eq(&expect, 1e-9),
            "{}",
            q.display(&e.cube().schema)
        );
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let run = || {
        let mut e = engine();
        let out = e.mdx(paper_query_text(2)).unwrap();
        (out.result(0).rows.clone(), out.report.sim)
    };
    let (rows1, sim1) = run();
    let (rows2, sim2) = run();
    assert_eq!(rows1, rows2, "results must be bit-identical");
    assert_eq!(sim1, sim2, "simulated time must be deterministic");
}

#[test]
fn custom_cube_end_to_end() {
    // Two dimensions, custom hierarchy depths, no paper machinery.
    let schema = StarSchema::new(
        vec![
            Dimension::uniform("P", 4, &[5]),
            Dimension::uniform("T", 2, &[3, 4]),
        ],
        "amount",
    );
    let cube = CubeBuilder::new(schema)
        .rows(3_000)
        .seed(5)
        .materialize("P'T'")
        .materialize("PT'")
        .index("PT", "P")
        .index("PT", "T'")
        .build();
    let mut e = Engine::new(cube, HardwareModel::paper_1998());
    let out = e
        .mdx("{P'.P2} on COLUMNS {T''.T1.CHILDREN} on ROWS CONTEXT PT;")
        .unwrap();
    assert_eq!(out.results().len(), 1);
    let q = &out.expr(0).bound.queries[0];
    let base = e.cube().catalog.base_table().unwrap();
    let expect = reference_eval(e.cube(), base, q);
    assert!(out.result(0).approx_eq(&expect, 1e-9));
    // The plan must have used the P'T' view, which answers (P', T') cheapest.
    let (t, _, _) = out.plan.assignments().next().unwrap();
    assert_eq!(e.cube().catalog.table(t).name(), "P'T'");
}

#[test]
fn grand_totals_are_preserved_through_views() {
    // Σ over any unfiltered query equals Σ of the base measure, no matter
    // which table or operator evaluates it.
    let mut e = engine();
    let out = e
        .mdx("{A''.A1, A''.A2, A''.A3} on COLUMNS CONTEXT ABCD;")
        .unwrap();
    let t = e
        .cube()
        .catalog
        .table(e.cube().catalog.base_table().unwrap());
    let mut keys = vec![0u32; 4];
    let base_total: f64 = (0..t.n_rows())
        .map(|p| t.heap().read_at(p, &mut keys))
        .sum();
    let got = out.result(0).grand_total();
    assert!(
        (got - base_total).abs() < 1e-6 * base_total,
        "{got} vs {base_total}"
    );
}
