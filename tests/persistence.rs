//! Snapshot round-trips at the integration level: a saved-and-reloaded
//! cube must be indistinguishable from the original under every query,
//! every optimizer, and the simulated clock.

use starshare::paper_queries::paper_query_text;
use starshare::{load_cube, save_cube, Engine, HardwareModel, OptimizerKind, PaperCubeSpec};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("starshare-it-{}-{name}", std::process::id()))
}

#[test]
fn reloaded_cube_is_query_equivalent() {
    let mut original = Engine::paper(PaperCubeSpec {
        base_rows: 4_000,
        d_leaf: 48,
        seed: 64,
        with_indexes: true,
    });
    let path = tmp("paper.ss");
    save_cube(original.cube(), &path).unwrap();
    let mut reloaded = Engine::new(load_cube(&path).unwrap(), HardwareModel::paper_1998());
    std::fs::remove_file(&path).ok();

    for n in 1..=9 {
        original.flush();
        reloaded.flush();
        let a = original.mdx(paper_query_text(n)).unwrap();
        let b = reloaded.mdx(paper_query_text(n)).unwrap();
        assert_eq!(a.result(0).rows, b.result(0).rows, "Q{n} rows differ");
        // Same plan, same simulated cost: file ids and page layouts are
        // preserved, so the clock sees identical work.
        assert_eq!(a.report.sim, b.report.sim, "Q{n} simulated time differs");
        assert_eq!(
            a.plan.explain(original.cube()),
            b.plan.explain(reloaded.cube()),
            "Q{n} plans differ"
        );
    }
}

#[test]
fn stats_flag_survives_the_round_trip() {
    let schema = starshare::paper_schema(48);
    let cube = starshare::CubeBuilder::new(schema)
        .rows(2_000)
        .seed(5)
        .skew(1.0)
        .materialize("A'B'C'D")
        .collect_stats()
        .build();
    let path = tmp("stats.ss");
    save_cube(&cube, &path).unwrap();
    let loaded = load_cube(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let a = cube.stats.as_ref().expect("original has stats");
    let b = loaded.stats.as_ref().expect("stats flag must survive");
    for d in 0..4 {
        assert_eq!(a.histogram(d), b.histogram(d), "dim {d}");
    }
    // And the optimizer over the reloaded cube sees the same estimates.
    let e1 = Engine::new(cube, HardwareModel::paper_1998());
    let e2 = Engine::new(loaded, HardwareModel::paper_1998());
    let q = starshare::paper_queries::bind_paper_query(&e1.cube().schema, 5).unwrap();
    let p1 = e1
        .optimize(std::slice::from_ref(&q), OptimizerKind::Gg)
        .unwrap();
    let p2 = e2
        .optimize(std::slice::from_ref(&q), OptimizerKind::Gg)
        .unwrap();
    assert_eq!(p1.estimated_cost, p2.estimated_cost);
}

#[test]
fn snapshot_of_agg_views_preserves_measure_kinds() {
    let schema = starshare::StarSchema::new(vec![starshare::Dimension::uniform("X", 3, &[4])], "m");
    let cube = starshare::CubeBuilder::new(schema)
        .rows(1_000)
        .seed(2)
        .materialize("X'")
        .materialize_agg("X'", starshare::AggFn::Count)
        .materialize_agg("X'", starshare::AggFn::Max)
        .build();
    let path = tmp("aggs.ss");
    save_cube(&cube, &path).unwrap();
    let loaded = load_cube(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for ((_, a), (_, b)) in cube.catalog.iter().zip(loaded.catalog.iter()) {
        assert_eq!(a.measure(), b.measure(), "{}", a.name());
    }
    // COUNT view still answers COUNT queries after reload.
    let q =
        starshare::GroupByQuery::unfiltered(loaded.groupby("X'")).with_agg(starshare::AggFn::Count);
    let c = loaded.catalog.candidates_for(&q);
    let count_view = loaded.catalog.find_by_name("COUNT:X'").unwrap();
    assert!(c.contains(&count_view));
}
