//! Property tests: every operator, on every answerable table, for random
//! queries, produces exactly the reference evaluator's answer — and shared
//! execution never changes any query's result.

use std::sync::OnceLock;

use starshare::{
    hash_star_join, index_star_join, paper_cube, reference_eval, shared_hybrid_join,
    shared_index_join, Cube, ExecContext, GroupBy, GroupByQuery, LevelRef, MemberPred,
    PaperCubeSpec,
};
use starshare_prng::Prng;

fn cube() -> &'static Cube {
    static CUBE: OnceLock<Cube> = OnceLock::new();
    CUBE.get_or_init(|| {
        paper_cube(PaperCubeSpec {
            base_rows: 3_000,
            d_leaf: 24,
            seed: 7,
            with_indexes: true,
        })
    })
}

/// One dimension's random (target level, predicate).
fn dim_spec(rng: &mut Prng, leaf_card: u32) -> (LevelRef, MemberPred) {
    let target = if rng.gen_bool(0.5) {
        LevelRef::All
    } else {
        LevelRef::Level(rng.gen_range(0u8..3))
    };
    let pred = if rng.gen_bool(3.0 / 7.0) {
        MemberPred::All
    } else {
        let lvl = rng.gen_range(0u8..3);
        // Clamp members into the level's cardinality.
        let card = match lvl {
            0 => leaf_card,
            1 => 6.min(leaf_card),
            _ => 3,
        };
        let n = rng.gen_range(1usize..4);
        let ms: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(0u32..leaf_card) % card)
            .collect();
        MemberPred::members_in(lvl, ms)
    };
    (target, pred)
}

/// A random query over the paper schema (A/B/C leaf 60, D leaf 24 at this
/// scale). Predicate levels are clamped per dimension.
fn random_query(rng: &mut Prng) -> GroupByQuery {
    let specs = [
        dim_spec(rng, 60),
        dim_spec(rng, 60),
        dim_spec(rng, 60),
        dim_spec(rng, 24),
    ];
    let (levels, preds): (Vec<LevelRef>, Vec<MemberPred>) = specs.into_iter().unzip();
    GroupByQuery::new(GroupBy::new(levels), preds)
}

#[test]
fn hash_join_equals_reference_on_every_candidate() {
    let cube = cube();
    let mut ctx = ExecContext::paper_1998();
    let mut rng = Prng::seed_from_u64(0x09E7_0001);
    for _ in 0..48 {
        let q = random_query(&mut rng);
        for t in cube.catalog.candidates_for(&q) {
            let expect = reference_eval(cube, t, &q);
            let (r, _) = hash_star_join(&mut ctx, cube, t, &q).expect("candidate answers");
            assert!(
                r.approx_eq(&expect, 1e-9),
                "table {}",
                cube.catalog.table(t).name()
            );
        }
    }
}

#[test]
fn index_join_equals_reference_where_indexes_exist() {
    let cube = cube();
    let mut ctx = ExecContext::paper_1998();
    let mut rng = Prng::seed_from_u64(0x09E7_0002);
    for _ in 0..48 {
        let q = random_query(&mut rng);
        for t in cube.catalog.candidates_for(&q) {
            let expect = reference_eval(cube, t, &q);
            let (r, _) = index_star_join(&mut ctx, cube, t, &q).expect("index join runs");
            assert!(
                r.approx_eq(&expect, 1e-9),
                "table {}",
                cube.catalog.table(t).name()
            );
        }
    }
}

#[test]
fn shared_execution_never_changes_results() {
    let cube = cube();
    let mut ctx = ExecContext::paper_1998();
    let base = cube.catalog.base_table().unwrap();
    let mut rng = Prng::seed_from_u64(0x09E7_0003);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..5);
        let qs: Vec<GroupByQuery> = (0..n).map(|_| random_query(&mut rng)).collect();
        // Hybrid: first half hash, second half index.
        let mid = qs.len() / 2;
        let (hash_qs, index_qs) = qs.split_at(mid.max(1));
        let (rs, _) = shared_hybrid_join(&mut ctx, cube, base, hash_qs, index_qs)
            .expect("base answers everything");
        let all: Vec<&GroupByQuery> = hash_qs.iter().chain(index_qs.iter()).collect();
        for (q, r) in all.iter().zip(&rs) {
            let expect = reference_eval(cube, base, q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
        // Shared index join over the same set.
        let (rs2, _) = shared_index_join(&mut ctx, cube, base, &qs).expect("runs");
        for (q, r) in qs.iter().zip(&rs2) {
            let expect = reference_eval(cube, base, q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
    }
}

#[test]
fn view_answers_equal_base_answers() {
    // Derivability correctness: any candidate view gives the same
    // answer as the base table.
    let cube = cube();
    let base = cube.catalog.base_table().unwrap();
    let mut rng = Prng::seed_from_u64(0x09E7_0004);
    for _ in 0..48 {
        let q = random_query(&mut rng);
        let expect = reference_eval(cube, base, &q);
        for t in cube.catalog.candidates_for(&q) {
            let got = reference_eval(cube, t, &q);
            assert!(
                got.approx_eq(&expect, 1e-9),
                "view {} disagrees with base",
                cube.catalog.table(t).name()
            );
        }
    }
}

#[test]
fn grand_total_equals_filtered_base_sum() {
    // Independent invariant: the sum over all result groups equals a
    // direct filtered sum over base tuples.
    let cube = cube();
    let base = cube.catalog.base_table().unwrap();
    let t = cube.catalog.table(base);
    let schema = &cube.schema;
    let mut rng = Prng::seed_from_u64(0x09E7_0005);
    for _ in 0..48 {
        let q = random_query(&mut rng);
        let mut keys = vec![0u32; 4];
        let mut direct = 0.0;
        for pos in 0..t.n_rows() {
            let m = t.heap().read_at(pos, &mut keys);
            let ok = (0..4).all(|d| q.preds[d].matches(schema, d, 0, keys[d]));
            if ok {
                direct += m;
            }
        }
        let r = reference_eval(cube, base, &q);
        assert!(
            (r.grand_total() - direct).abs() <= 1e-6 * direct.abs().max(1.0),
            "{} vs {}",
            r.grand_total(),
            direct
        );
    }
}
