//! The morsel scheduler's determinism contract, swept at engine level
//! across thread counts **and** morsel sizes:
//!
//! * At any fixed morsel size, the thread count is unobservable — query
//!   results are bit-identical and `sim`/`critical`/I-O counters identical
//!   across 1, 2, 7, and 16 threads, because morsel boundaries and merge
//!   order depend only on data and plan, never on scheduling.
//! * Across morsel sizes (1 page, the default, whole-table), the page
//!   access counters and the candidate-bitmap test count stay put and
//!   answers agree to 1e-9 — float association follows the merge tree's
//!   shape, and the merge-dependent CPU counters legitimately move with
//!   the partial count, but what was *read* and *tested* cannot.
//! * The differential oracle, widened over morsel sizes, agrees with the
//!   row-at-a-time reference on generated MDX sessions and reproduces
//!   itself bit-for-bit when rerun.

use starshare::paper_queries::bind_paper_test;
use starshare::{EngineConfig, OptimizerKind, PaperCubeSpec, PlanExecution, DEFAULT_MORSEL_PAGES};
use starshare_testkit::{generate_session, harness_spec, Oracle, ORACLE_THREADS};

const MORSEL_SIZES: [u32; 3] = [1, DEFAULT_MORSEL_PAGES, u32::MAX];
const THREADS: [usize; 4] = [1, 2, 7, 16];

fn spec() -> PaperCubeSpec {
    PaperCubeSpec {
        base_rows: 5_000,
        d_leaf: 48,
        seed: 23,
        with_indexes: true,
    }
}

fn assert_identical(a: &PlanExecution, b: &PlanExecution, label: &str) {
    assert_eq!(a.total.sim, b.total.sim, "{label}: sim must not move");
    assert_eq!(
        a.total.critical, b.total.critical,
        "{label}: critical path must not move"
    );
    assert_eq!(a.total.io, b.total.io, "{label}: I/O counts must not move");
    assert_eq!(a.results.len(), b.results.len(), "{label}");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.query, y.query, "{label}: query order");
        assert_eq!(x.rows, y.rows, "{label}: rows must be bit-identical");
    }
}

/// Paper workloads 3 (shared index join) and 6 (mixed Table-2 class
/// split), GG plans, run across the full thread matrix at each morsel
/// size: the thread count must be unobservable everywhere.
#[test]
fn thread_matrix_is_bit_identical_at_every_morsel_size() {
    for pages in MORSEL_SIZES {
        let mut e = EngineConfig::paper()
            .morsel_pages(pages)
            .build_paper(spec());
        for test in [3usize, 6] {
            let queries = bind_paper_test(&e.cube().schema, test).unwrap();
            let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
            let runs: Vec<PlanExecution> = THREADS
                .iter()
                .map(|&n| {
                    e.flush();
                    e.execute_plan_threads(&plan, n).unwrap()
                })
                .collect();
            for (i, run) in runs.iter().enumerate().skip(1) {
                assert_identical(
                    &runs[0],
                    run,
                    &format!(
                        "test {test}, {pages} pages/morsel, {} vs {} threads",
                        THREADS[0], THREADS[i]
                    ),
                );
            }
        }
    }
}

/// The same workloads at a fixed thread count across morsel sizes: pages
/// read, candidate-bitmap tests, and answers are size-invariant even
/// though the partial count (and so the merge work) is not.
#[test]
fn morsel_size_moves_neither_io_nor_answers() {
    let runs: Vec<(u32, Vec<PlanExecution>)> = MORSEL_SIZES
        .iter()
        .map(|&pages| {
            let mut e = EngineConfig::paper()
                .morsel_pages(pages)
                .build_paper(spec());
            let execs = [3usize, 6]
                .iter()
                .map(|&test| {
                    let queries = bind_paper_test(&e.cube().schema, test).unwrap();
                    let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
                    e.flush();
                    e.execute_plan_threads(&plan, 7).unwrap()
                })
                .collect();
            (pages, execs)
        })
        .collect();
    let (_, baseline) = &runs[0];
    for (pages, execs) in &runs[1..] {
        for (a, b) in baseline.iter().zip(execs) {
            let label = format!("1 vs {pages} pages/morsel");
            assert_eq!(a.total.io, b.total.io, "{label}: I/O counts must not move");
            assert_eq!(
                a.total.cpu.bitmap_tests, b.total.cpu.bitmap_tests,
                "{label}: candidate tests must not move"
            );
            assert_eq!(a.results.len(), b.results.len(), "{label}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.query, y.query, "{label}: query order");
                assert!(
                    x.approx_eq(y, 1e-9),
                    "{label}: answers must agree to within float association"
                );
            }
        }
    }
}

/// The differential oracle widened over morsel sizes: at every size, a
/// handful of generated MDX sessions agree with the row-at-a-time
/// reference across the whole thread matrix, and rerunning each
/// configuration reproduces its output bit-for-bit.
#[test]
fn oracle_matrix_holds_at_every_morsel_size() {
    for pages in MORSEL_SIZES {
        let mut oracle =
            Oracle::with_matrix(harness_spec(), &[OptimizerKind::Gg], &ORACLE_THREADS, pages);
        for seed in 100..104u64 {
            let session = generate_session(oracle.schema(), seed);
            if let Err(m) = oracle.check_session(&session, true) {
                panic!("{pages} pages/morsel: {m}");
            }
        }
        assert_eq!(oracle.stats.sessions, 4);
        assert!(oracle.stats.reruns > 0, "rerun sweep must have happened");
    }
}
