//! End-to-end fault-injection acceptance: with faults armed, every injected
//! fault is either retried to success inside the executor or reported as a
//! per-query typed error, and every query that still answers returns rows
//! bit-identical to the fault-free run of the same session.
//!
//! The heavy lifting — running the faulted engine next to its fault-free
//! twin and collecting contract violations — lives in
//! `starshare_testkit::FaultHarness`; this test drives it over seeded
//! sessions with two fault profiles (everything is deterministic, so the
//! coverage assertions at the bottom are stable, not flaky).

use starshare::{FaultPlan, OptimizerKind};
use starshare_testkit::{generate_session, harness_spec, FaultHarness};

/// Session seeds to sweep. Each runs under two fault profiles.
const SEEDS: u64 = 24;
/// Independent fault schedules per session under the hot profile.
const FAULT_SCHEDULES: u64 = 3;

#[test]
fn injected_faults_retry_or_degrade_and_survivors_are_bit_identical() {
    // TPLO keeps queries in more, smaller execution classes than GG, so a
    // faulted class leaves neighbours standing — which is exactly the
    // partial-failure shape this test must witness.
    let mut harness = FaultHarness::new(harness_spec(), OptimizerKind::Tplo);

    // Coverage the sweep must demonstrate (asserted below):
    let mut faults_injected = 0u64; // some accesses actually denied
    let mut degraded_queries = 0usize; // some queries failed with Error::Fault
    let mut mixed_sessions = 0usize; // some sessions had failures AND survivors
    let mut all_retried_sessions = 0usize; // some faulted sessions fully recovered

    for seed in 0..SEEDS {
        let session = generate_session(harness.schema(), seed);

        // Hot profile: poisoned pages guarantee unrecoverable faults, so
        // per-query degradation gets exercised. Several independent fault
        // schedules per session vary *which* class gets hit.
        for k in 0..FAULT_SCHEDULES {
            let hot = FaultPlan {
                seed: seed * 31 + k,
                transient: 0.05,
                poison: 0.02,
            };
            let cmp = harness.compare(&session, hot);
            assert!(
                cmp.ok(),
                "session {seed} (hot profile, schedule {k}) violated the degradation \
                 contract:\n{}",
                cmp.violations.join("\n")
            );
            faults_injected += cmp.stats.denials();
            degraded_queries += cmp.n_degraded();
            if cmp.n_degraded() > 0 && cmp.n_survived() > 0 {
                mixed_sessions += 1;
            }
        }

        // Transient-only profile: at this rate the bounded retry should
        // absorb every fault, so the run must be indistinguishable from
        // fault-free — denials happened, nothing degraded.
        let transient_only = FaultPlan {
            seed,
            transient: 0.05,
            poison: 0.0,
        };
        let cmp = harness.compare(&session, transient_only);
        assert!(
            cmp.ok(),
            "session {seed} (transient profile) violated the degradation contract:\n{}",
            cmp.violations.join("\n")
        );
        faults_injected += cmp.stats.denials();
        if cmp.n_degraded() == 0 && cmp.stats.denials() > 0 {
            all_retried_sessions += 1;
        }
    }

    // The sweep is only meaningful if it actually exercised both sides of
    // the contract. All of this is seeded and deterministic.
    assert!(faults_injected > 0, "no faults were ever injected");
    assert!(
        degraded_queries > 0,
        "no query ever degraded — poison profile too cold to test the error path"
    );
    assert!(
        mixed_sessions > 0,
        "no session mixed degraded and surviving queries — partial failure untested"
    );
    assert!(
        all_retried_sessions > 0,
        "no faulted session was fully absorbed by retries"
    );
}
