//! The telemetry layer's zero-cost-when-disabled contract, checked at
//! engine level:
//!
//! * **Observational inertness** — arming telemetry changes nothing the
//!   engine computes: query results, I/O counters, and the simulated
//!   clock are bit-identical with telemetry on vs off, across all three
//!   optimizers and thread counts.
//! * **Trace determinism** — the same seed, workload, and configuration
//!   drains a byte-identical JSONL trace from two independent engines,
//!   and the thread count is unobservable in the trace (scheduling
//!   accidents like steals are metrics-only, never traced).
//! * **Default off** — an unarmed engine exposes no metrics, no trace,
//!   and no profiles; every hook is a no-op.
//! * **Provenance** — cached answers carry the right provenance label
//!   through `explain_last()`: exact hits, subsumption rollups, and
//!   delta-patched entries after a streaming append.

use starshare::{EngineConfig, OptimizerKind, Outcome, Provenance, TelemetryConfig};
use starshare_testkit::{generate_session, harness_spec};

const OPTIMIZERS: [OptimizerKind; 3] =
    [OptimizerKind::Tplo, OptimizerKind::Etplg, OptimizerKind::Gg];
const THREADS: [usize; 2] = [1, 4];

fn engine(optimizer: OptimizerKind, threads: usize, telemetry: Option<u64>) -> starshare::Engine {
    let mut cfg = EngineConfig::paper().optimizer(optimizer).threads(threads);
    if let Some(seed) = telemetry {
        cfg = cfg.telemetry(TelemetryConfig::enabled(seed));
    }
    cfg.build_paper(harness_spec())
}

fn session_exprs(seed: u64) -> Vec<String> {
    generate_session(&starshare::paper_schema(harness_spec().d_leaf), seed).exprs
}

fn run(e: &mut starshare::Engine, exprs: &[String]) -> Outcome {
    let texts: Vec<&str> = exprs.iter().map(String::as_str).collect();
    e.mdx_many(&texts).expect("batch must run")
}

fn assert_same_observables(on: &Outcome, off: &Outcome, label: &str) {
    assert_eq!(on.report.io, off.report.io, "{label}: I/O counters moved");
    assert_eq!(on.report.sim, off.report.sim, "{label}: sim clock moved");
    assert_eq!(
        on.report.critical, off.report.critical,
        "{label}: critical path moved"
    );
    assert_eq!(on.outcomes.len(), off.outcomes.len(), "{label}");
    for (xi, (a, b)) in on.outcomes.iter().zip(&off.outcomes).enumerate() {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                for (qi, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
                    match (x, y) {
                        (Ok(x), Ok(y)) => assert_eq!(
                            x.rows, y.rows,
                            "{label}: expression {xi} query {qi} rows moved"
                        ),
                        _ => panic!("{label}: expression {xi} query {qi} Ok/Err flip"),
                    }
                }
            }
            (Err(a), Err(b)) => assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "{label}: expression {xi} error kind flipped"
            ),
            _ => panic!("{label}: expression {xi} outcome flipped Ok/Err"),
        }
    }
}

/// Telemetry on vs off across the optimizer × thread matrix: results,
/// counters, and the simulated clock must be bit-identical — and the
/// armed run must actually produce profiles where the bare one has none.
#[test]
fn results_and_clock_are_identical_on_vs_off() {
    let exprs = session_exprs(41);
    for optimizer in OPTIMIZERS {
        for threads in THREADS {
            let label = format!("{optimizer:?} × {threads} threads");
            let mut bare = engine(optimizer, threads, None);
            let mut armed = engine(optimizer, threads, Some(7));
            let off = run(&mut bare, &exprs);
            let on = run(&mut armed, &exprs);
            assert_same_observables(&on, &off, &label);
            assert!(off.profiles.is_empty(), "{label}: unarmed run profiled");
            let n_queries: usize = on
                .outcomes
                .iter()
                .flatten()
                .map(|oc| oc.results.len())
                .sum();
            assert_eq!(on.profiles.len(), n_queries, "{label}: profile count");
            assert_eq!(armed.explain_last(), on.profiles, "{label}: explain_last");
        }
    }
}

/// The same seed, workload, and configuration must drain byte-identical
/// traces from two independently built engines.
#[test]
fn same_seed_drains_a_byte_identical_trace() {
    let exprs = session_exprs(42);
    let drain = || {
        let mut e = engine(OptimizerKind::Gg, 1, Some(99));
        run(&mut e, &exprs);
        e.drain_trace().expect("armed engine must trace")
    };
    let (a, b) = (drain(), drain());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed + workload must trace identically");
    assert!(a.contains("\"window.close\""));
    assert!(a.contains("\"opt.plan\""));
}

/// On the partitioned executor path, the thread count is unobservable in
/// the trace: morsel boundaries and merge shape depend only on data and
/// plan, and scheduling accidents (steals, worker identity) are confined
/// to metrics. (`threads = 1` takes the sequential executor, a different
/// path with no morsel spans, so the invariance is scoped to ≥ 2.)
#[test]
fn trace_is_thread_invariant_on_the_partitioned_path() {
    const PARTITIONED: [usize; 2] = [2, 4];
    let exprs = session_exprs(43);
    let traces: Vec<String> = PARTITIONED
        .iter()
        .map(|&threads| {
            let mut e = engine(OptimizerKind::Tplo, threads, Some(5));
            run(&mut e, &exprs);
            e.drain_trace().expect("armed engine must trace")
        })
        .collect();
    assert_eq!(
        traces[0], traces[1],
        "trace must not depend on the thread count"
    );
    assert!(traces[0].contains("\"exec.morsel\""));
    // The deterministic metrics agree too; only scheduling tallies may
    // differ across thread counts.
    let snap = |threads: usize| {
        let mut e = engine(OptimizerKind::Tplo, threads, Some(5));
        run(&mut e, &exprs);
        e.metrics().expect("armed engine must snapshot")
    };
    let (a, b) = (snap(PARTITIONED[0]), snap(PARTITIONED[1]));
    let (ra, rb) = (*a.registry(), *b.registry());
    assert_eq!(ra.sim_nanos, rb.sim_nanos);
    assert_eq!(ra.seq_faults, rb.seq_faults);
    assert_eq!(ra.random_faults, rb.random_faults);
    assert_eq!(ra.queries, rb.queries);
    assert_eq!(ra.classes, rb.classes);
    assert_eq!(ra.morsels, rb.morsels);
}

/// The default configuration is off: no snapshot, no trace, no profiles.
#[test]
fn telemetry_is_off_by_default() {
    let mut e = EngineConfig::paper().build_paper(harness_spec());
    let out = run(&mut e, &session_exprs(44));
    assert!(out.profiles.is_empty());
    assert!(e.metrics().is_none());
    assert!(e.drain_trace().is_none());
    assert!(e.explain_last().is_empty());
    assert!(!e.telemetry().enabled());
}

/// Cache provenance flows into profiles: a warm replay reports exact
/// hits, a coarser probe after a finer one reports a subsumption rollup
/// (with nonzero rollup time), and a replay across a delta-patched append
/// reports delta-patched entries.
#[test]
fn profiles_carry_cache_provenance() {
    let mut e = EngineConfig::paper()
        .optimizer(OptimizerKind::Tplo)
        .result_cache(true)
        .telemetry(TelemetryConfig::enabled(3))
        .build_paper(harness_spec());

    // Paper Q1, then its drill-up (the same pair the cache differential
    // uses to force the subsumption path).
    let exprs = vec![starshare::paper_queries::paper_query_text(1).to_string()];
    const COARSE: &str = "{A''.A1} on COLUMNS \
         {B''.B1} on ROWS \
         {C''.C1} on PAGES \
         CONTEXT ABCD FILTER (D.DD1);";

    // Cold: everything executes.
    let cold = run(&mut e, &exprs);
    assert!(cold
        .profiles
        .iter()
        .all(|p| matches!(p.provenance, Provenance::Direct | Provenance::WindowShared)));

    // Warm: the same expressions hit exactly, with zero engine work.
    let warm = run(&mut e, &exprs);
    assert!(!warm.profiles.is_empty());
    for p in &warm.profiles {
        assert_eq!(p.provenance, Provenance::ExactHit);
        assert_eq!(p.total().as_nanos(), 0, "exact hits do no engine work");
    }

    // Coarser: answered by rolling up the finer cached entry.
    let coarse = run(&mut e, &[COARSE.to_string()]);
    assert!(
        coarse
            .profiles
            .iter()
            .any(|p| p.provenance == Provenance::SubsumptionRollup && p.rollup.as_nanos() > 0),
        "coarse probe must roll up from the finer entry: {:?}",
        coarse.profiles
    );

    // Append, then replay: SUM entries survive by delta patching and say so.
    let n_dims = starshare::paper_schema(harness_spec().d_leaf).n_dims();
    e.append_facts(&[(vec![0u32; n_dims], 1.0)])
        .expect("append must apply");
    let patched = run(&mut e, &exprs);
    assert!(
        patched
            .profiles
            .iter()
            .any(|p| p.provenance == Provenance::DeltaPatched),
        "replay across the append must serve delta-patched entries: {:?}",
        patched.profiles
    );
}
