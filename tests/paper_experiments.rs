//! Scaled-down versions of the paper's seven experiments, asserting the
//! qualitative claims its evaluation section makes. The full-scale numbers
//! live in EXPERIMENTS.md; these tests pin the *shapes* so they cannot
//! silently regress.

use starshare::paper_queries::{bind_paper_query, bind_paper_test};
use starshare::{
    Engine, GlobalPlan, GroupByQuery, JoinMethod, OptimizerKind, PaperCubeSpec, PlanClass,
    QueryPlan, SimTime,
};

const SCALE_ROWS: u64 = 60_000;
const SCALE_D: u32 = 552; // ≈ 3% of the paper's 18432, multiple of 24

fn engine() -> Engine {
    Engine::paper(PaperCubeSpec {
        base_rows: SCALE_ROWS,
        d_leaf: SCALE_D,
        seed: 19980601,
        with_indexes: true,
    })
}

fn forced(t: starshare::TableId, plans: Vec<(GroupByQuery, JoinMethod)>) -> GlobalPlan {
    GlobalPlan {
        classes: vec![PlanClass {
            table: t,
            plans: plans
                .into_iter()
                .map(|(query, method)| QueryPlan { query, method })
                .collect(),
        }],
        estimated_cost: SimTime::ZERO,
    }
}

/// Shared-vs-separate sweep for a fixed operator setup; returns
/// `(separate, shared)` totals per k.
fn sweep(
    e: &mut Engine,
    table: &str,
    plans: &[(GroupByQuery, JoinMethod)],
) -> Vec<(SimTime, SimTime)> {
    let t = e.cube().catalog.find_by_name(table).unwrap();
    (1..=plans.len())
        .map(|k| {
            let subset: Vec<_> = plans[..k].iter().map(|(q, m)| (t, q.clone(), *m)).collect();
            let (_, sep) = e.execute_separately(&subset).unwrap();
            e.flush();
            let shared = e.execute_plan(&forced(t, plans[..k].to_vec())).unwrap();
            (sep.sim, shared.total.sim)
        })
        .collect()
}

#[test]
fn test1_shared_scan_beats_separate_and_gap_grows() {
    let mut e = engine();
    let plans: Vec<_> = [1, 2, 3, 4]
        .iter()
        .map(|&n| {
            (
                bind_paper_query(&e.cube().schema, n).unwrap(),
                JoinMethod::Hash,
            )
        })
        .collect();
    let points = sweep(&mut e, "ABCD", &plans);
    assert_eq!(points[0].0, points[0].1, "k=1: no sharing possible");
    for (k, (sep, sh)) in points.iter().enumerate().skip(1) {
        assert!(sh < sep, "k={}: shared {sh} !< separate {sep}", k + 1);
    }
    // Figure 10's signature: separate grows ~linearly, shared stays nearly
    // flat — at k=4 the separate total is at least 2.5× the shared one.
    let (sep4, sh4) = points[3];
    assert!(
        sep4.as_secs_f64() > 2.5 * sh4.as_secs_f64(),
        "k=4: {sep4} vs {sh4}"
    );
}

#[test]
fn test2_shared_index_join_saves_probing() {
    let mut e = engine();
    let plans: Vec<_> = [5, 6, 7, 8]
        .iter()
        .map(|&n| {
            (
                bind_paper_query(&e.cube().schema, n).unwrap(),
                JoinMethod::Index,
            )
        })
        .collect();
    let points = sweep(&mut e, "A'B'C'D", &plans);
    for (k, (sep, sh)) in points.iter().enumerate().skip(1) {
        assert!(sh <= sep, "k={}: shared {sh} > separate {sep}", k + 1);
    }
    // The gap must widen as queries join the shared probe.
    let gap = |p: &(SimTime, SimTime)| p.0.as_secs_f64() - p.1.as_secs_f64();
    assert!(gap(&points[3]) > gap(&points[1]));
}

#[test]
fn test3_index_queries_ride_the_scan_almost_free() {
    let mut e = engine();
    let schema = e.cube().schema.clone();
    let t = e.cube().catalog.find_by_name("A'B'C'D").unwrap();
    let q3 = bind_paper_query(&schema, 3).unwrap();
    let idx: Vec<_> = [5, 6, 7]
        .iter()
        .map(|&n| (bind_paper_query(&schema, n).unwrap(), JoinMethod::Index))
        .collect();
    e.flush();
    let alone = e
        .execute_plan(&forced(t, vec![(q3.clone(), JoinMethod::Hash)]))
        .unwrap()
        .total
        .sim;
    let mut all = vec![(q3, JoinMethod::Hash)];
    all.extend(idx.clone());
    e.flush();
    let hybrid = e.execute_plan(&forced(t, all)).unwrap().total.sim;
    // The three index queries separately:
    let sep: Vec<_> = idx.iter().map(|(q, m)| (t, q.clone(), *m)).collect();
    let (_, idx_alone) = e.execute_separately(&sep).unwrap();
    let added = hybrid.saturating_sub(alone);
    assert!(
        added.as_secs_f64() < 0.5 * idx_alone.sim.as_secs_f64(),
        "riding the scan ({added}) must be far cheaper than standalone ({})",
        idx_alone.sim
    );
}

#[test]
fn test4_gg_rebasing_beats_etplg_beats_tplo() {
    let mut e = engine();
    let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
    let tplo = e.optimize(&queries, OptimizerKind::Tplo).unwrap();
    let etplg = e.optimize(&queries, OptimizerKind::Etplg).unwrap();
    let gg = e.optimize(&queries, OptimizerKind::Gg).unwrap();
    let opt = e.optimize(&queries, OptimizerKind::Optimal).unwrap();
    // The paper's Test 4 structure: TPLO's local optima land on three
    // different views; GG consolidates onto A'B'C'D.
    assert_eq!(tplo.classes.len(), 3, "{}", tplo.explain(e.cube()));
    assert_eq!(gg.classes.len(), 1, "{}", gg.explain(e.cube()));
    assert_eq!(
        e.cube().catalog.table(gg.classes[0].table).name(),
        "A'B'C'D"
    );
    assert!(opt.estimated_cost <= gg.estimated_cost);
    assert!(gg.estimated_cost < etplg.estimated_cost);
    assert!(etplg.estimated_cost < tplo.estimated_cost);
    // Measured execution agrees with the ranking.
    e.flush();
    let m_tplo = e.execute_plan(&tplo).unwrap().total.sim;
    e.flush();
    let m_gg = e.execute_plan(&gg).unwrap().total.sim;
    assert!(m_gg < m_tplo, "measured: GG {m_gg} !< TPLO {m_tplo}");
}

#[test]
fn test6_selective_workload_ties_all_algorithms() {
    let e = engine();
    let queries = bind_paper_test(&e.cube().schema, 6).unwrap();
    let costs: Vec<SimTime> = OptimizerKind::ALL
        .iter()
        .map(|k| e.optimize(&queries, *k).unwrap().estimated_cost)
        .collect();
    assert!(
        costs.windows(2).all(|w| w[0] == w[1]),
        "very selective workloads leave nothing for global optimization: {costs:?}"
    );
    // And the plans are all single shared-index classes.
    for k in OptimizerKind::ALL {
        let p = e.optimize(&queries, k).unwrap();
        assert_eq!(p.classes.len(), 1, "{k}");
        assert!(
            p.classes[0]
                .plans
                .iter()
                .all(|q| q.method == JoinMethod::Index),
            "{k}"
        );
    }
}

#[test]
fn tests4_to_7_cost_ordering_holds() {
    let e = engine();
    for test in 4..=7 {
        let queries = bind_paper_test(&e.cube().schema, test).unwrap();
        let t = e
            .optimize(&queries, OptimizerKind::Tplo)
            .unwrap()
            .estimated_cost;
        let g = e
            .optimize(&queries, OptimizerKind::Gg)
            .unwrap()
            .estimated_cost;
        let o = e
            .optimize(&queries, OptimizerKind::Optimal)
            .unwrap()
            .estimated_cost;
        assert!(o <= g && g <= t, "test {test}: {o} / {g} / {t}");
        // GG is within 5% of optimal on every paper workload.
        assert!(
            g.as_secs_f64() <= o.as_secs_f64() * 1.05,
            "test {test}: GG {g} vs optimal {o}"
        );
    }
}

#[test]
fn estimates_track_measurements_for_scan_plans() {
    // The §5.1 cost model and the executor count the same work, so for
    // hash (scan) plans — where cardinality estimates are exact — the
    // estimate must land within 10% of the measurement.
    let mut e = engine();
    let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
    let gg = e.optimize(&queries, OptimizerKind::Gg).unwrap();
    e.flush();
    let measured = e.execute_plan(&gg).unwrap().total.sim;
    let est = gg.estimated_cost.as_secs_f64();
    let got = measured.as_secs_f64();
    assert!(
        (est - got).abs() / got < 0.10,
        "estimate {est} vs measured {got}"
    );
}
