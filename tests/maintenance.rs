//! End-to-end incremental maintenance: append facts through the engine,
//! keep querying, and verify every answer against brute force over the
//! grown base — across views, indexes, statistics, and snapshots.

use starshare::paper_queries::paper_query_text;
use starshare::{
    load_cube, reference_eval, save_cube, Engine, EngineConfig, HardwareModel, PaperCubeSpec,
};
use starshare_prng::Prng;

/// Salt separating this suite's append-row draws from every other seeded
/// stream in the repo (reusing bare small seeds across streams is how
/// seed-sensitive flakes are born).
const MAINT_SALT: u64 = 0x3a1e_7e57_5eed_u64;

fn spec() -> PaperCubeSpec {
    PaperCubeSpec {
        base_rows: 3_000,
        d_leaf: 24,
        seed: 42,
        with_indexes: true,
    }
}

fn engine() -> Engine {
    EngineConfig::paper().build_paper(spec())
}

fn random_rows(e: &Engine, n: usize, seed: u64) -> Vec<(Vec<u32>, f64)> {
    let schema = &e.cube().schema;
    let mut rng = Prng::seed_from_u64(seed ^ MAINT_SALT);
    (0..n)
        .map(|_| {
            let keys: Vec<u32> = (0..schema.n_dims())
                .map(|d| rng.gen_range(0..schema.dim(d).cardinality(0)))
                .collect();
            (keys, rng.gen_range(0.0..100.0))
        })
        .collect()
}

#[test]
fn queries_track_appends_exactly() {
    let mut e = engine();
    let mut last_epoch = e.cube().epoch;
    for round in 0..3u64 {
        let rows = random_rows(&e, 500, round);
        let out = e.append_facts(&rows).unwrap();
        assert_eq!(out.appended, 500);
        assert!(out.epoch > last_epoch, "every append must move the epoch");
        last_epoch = out.epoch;
        for n in [1, 2, 5, 7] {
            let out = e.mdx(paper_query_text(n)).unwrap();
            let base = e.cube().catalog.base_table().unwrap();
            let q = &out.expr(0).bound.queries[0];
            let expect = reference_eval(e.cube(), base, q);
            assert!(
                out.result(0).approx_eq(&expect, 1e-9),
                "round {round} Q{n} diverged after append"
            );
        }
    }
    let base = e.cube().catalog.base_table().unwrap();
    assert_eq!(e.cube().catalog.table(base).n_rows(), 3_000 + 3 * 500);
}

/// The same tracking property with the result cache on: patched entries
/// must answer within the float tolerance of a from-scratch reference
/// (these measures are *not* quantized, so ULP drift is allowed here; the
/// bit-exact gate lives in the testkit's `maintenance` differential).
#[test]
fn cached_queries_track_appends_within_tolerance() {
    let mut e = EngineConfig::paper().result_cache(true).build_paper(spec());
    for round in 10..13u64 {
        let rows = random_rows(&e, 300, round);
        e.append_facts(&rows).unwrap();
        for n in [1, 2] {
            let out = e.mdx(paper_query_text(n)).unwrap();
            let base = e.cube().catalog.base_table().unwrap();
            let q = &out.expr(0).bound.queries[0];
            let expect = reference_eval(e.cube(), base, q);
            assert!(
                out.result(0).approx_eq(&expect, 1e-9),
                "round {round} Q{n} diverged on the cached engine"
            );
        }
    }
    assert!(
        e.cache_stats().patched > 0,
        "the cached rounds must exercise delta patching"
    );
}

#[test]
fn appended_cube_round_trips_through_snapshot() {
    let mut e = engine();
    e.append_facts(&random_rows(&e, 400, 9)).unwrap();
    let path = std::env::temp_dir().join(format!("starshare-maint-{}.ss", std::process::id()));
    save_cube(e.cube(), &path).unwrap();
    let loaded = load_cube(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut e2 = EngineConfig::paper().build(loaded, HardwareModel::paper_1998());
    let out1 = e.mdx(paper_query_text(3)).unwrap();
    let out2 = e2.mdx(paper_query_text(3)).unwrap();
    assert!(out1.result(0).approx_eq(out2.result(0), 1e-12));
}

#[test]
fn append_then_plan_uses_grown_sizes() {
    // After a large append, the views grow; the optimizer's cost estimates
    // must see the new sizes (they read the catalog, not a cache).
    let mut e = engine();
    let before = e
        .optimize(
            &[starshare::paper_queries::bind_paper_query(&e.cube().schema, 1).unwrap()],
            starshare::OptimizerKind::Gg,
        )
        .unwrap()
        .estimated_cost;
    e.append_facts(&random_rows(&e, 3_000, 1)).unwrap();
    let after = e
        .optimize(
            &[starshare::paper_queries::bind_paper_query(&e.cube().schema, 1).unwrap()],
            starshare::OptimizerKind::Gg,
        )
        .unwrap()
        .estimated_cost;
    assert!(after > before, "doubling the data must raise the estimate");
}

#[test]
fn failed_append_mutates_nothing() {
    let mut e = engine();
    let epoch = e.cube().epoch;
    let base = e.cube().catalog.base_table().unwrap();
    let rows_before = e.cube().catalog.table(base).n_rows();
    let reference = e.mdx(paper_query_text(1)).unwrap();
    // One good row followed by a bad one (wrong arity): all-or-nothing.
    let bad = vec![(vec![0, 0, 0, 0], 1.0), (vec![0, 0], 2.0)];
    assert!(e.append_facts(&bad).is_err());
    assert_eq!(
        e.cube().epoch,
        epoch,
        "failed append must not move the epoch"
    );
    assert_eq!(e.cube().catalog.table(base).n_rows(), rows_before);
    let again = e.mdx(paper_query_text(1)).unwrap();
    assert!(reference.result(0).approx_eq(again.result(0), 0.0));
}
