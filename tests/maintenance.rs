//! End-to-end incremental maintenance: append facts through the engine,
//! keep querying, and verify every answer against brute force over the
//! grown base — across views, indexes, statistics, and snapshots.

use starshare::paper_queries::paper_query_text;
use starshare::{load_cube, reference_eval, save_cube, Engine, HardwareModel, PaperCubeSpec};
use starshare_prng::Prng;

fn engine() -> Engine {
    Engine::paper(PaperCubeSpec {
        base_rows: 3_000,
        d_leaf: 24,
        seed: 42,
        with_indexes: true,
    })
}

fn random_rows(e: &Engine, n: usize, seed: u64) -> Vec<(Vec<u32>, f64)> {
    let schema = &e.cube().schema;
    let mut rng = Prng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let keys: Vec<u32> = (0..schema.n_dims())
                .map(|d| rng.gen_range(0..schema.dim(d).cardinality(0)))
                .collect();
            (keys, rng.gen_range(0.0..100.0))
        })
        .collect()
}

#[test]
fn queries_track_appends_exactly() {
    let mut e = engine();
    for round in 0..3u64 {
        let rows = random_rows(&e, 500, round);
        let appended = e.append_facts(&rows).unwrap();
        assert_eq!(appended, 500);
        for n in [1, 2, 5, 7] {
            let out = e.mdx(paper_query_text(n)).unwrap();
            let base = e.cube().catalog.base_table().unwrap();
            let q = &out.expr(0).bound.queries[0];
            let expect = reference_eval(e.cube(), base, q);
            assert!(
                out.result(0).approx_eq(&expect, 1e-9),
                "round {round} Q{n} diverged after append"
            );
        }
    }
    let base = e.cube().catalog.base_table().unwrap();
    assert_eq!(e.cube().catalog.table(base).n_rows(), 3_000 + 3 * 500);
}

#[test]
fn appended_cube_round_trips_through_snapshot() {
    let mut e = engine();
    e.append_facts(&random_rows(&e, 400, 9)).unwrap();
    let path = std::env::temp_dir().join(format!("starshare-maint-{}.ss", std::process::id()));
    save_cube(e.cube(), &path).unwrap();
    let loaded = load_cube(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut e2 = Engine::new(loaded, HardwareModel::paper_1998());
    let out1 = e.mdx(paper_query_text(3)).unwrap();
    let out2 = e2.mdx(paper_query_text(3)).unwrap();
    assert!(out1.result(0).approx_eq(out2.result(0), 1e-12));
}

#[test]
fn append_then_plan_uses_grown_sizes() {
    // After a large append, the views grow; the optimizer's cost estimates
    // must see the new sizes (they read the catalog, not a cache).
    let mut e = engine();
    let before = e
        .optimize(
            &[starshare::paper_queries::bind_paper_query(&e.cube().schema, 1).unwrap()],
            starshare::OptimizerKind::Gg,
        )
        .unwrap()
        .estimated_cost;
    e.append_facts(&random_rows(&e, 3_000, 1)).unwrap();
    let after = e
        .optimize(
            &[starshare::paper_queries::bind_paper_query(&e.cube().schema, 1).unwrap()],
            starshare::OptimizerKind::Gg,
        )
        .unwrap()
        .estimated_cost;
    assert!(after > before, "doubling the data must raise the estimate");
}
