//! Property tests for the tiered aggregation kernels.
//!
//! Three schemas whose base-table group-by spaces force each kernel tier
//! (dense flat-array, packed-u64 hash, `Vec<u32>` spill), driven with
//! randomized group-bys and predicates. Every query must
//!
//! * compile to the tier its exact cardinality product predicts,
//! * produce exactly the reference evaluator's answer, and
//! * yield bit-identical rows, `CpuCounters`, and simulated totals when the
//!   same class runs partitioned at threads 1 and 4.

use starshare::{
    execute_classes, hash_star_join, reference_eval, ClassSpec, Cube, CubeBuilder, DimPipeline,
    Dimension, ExecContext, GroupBy, GroupByQuery, KernelTier, LevelRef, MemberPred, StarSchema,
    DENSE_MAX_GROUPS,
};
use starshare_prng::Prng;

/// A base-only cube over `dims`, populated with `rows` random facts.
fn build_cube(dims: Vec<Dimension>, rows: u64, seed: u64) -> Cube {
    CubeBuilder::new(StarSchema::new(dims, "m"))
        .rows(rows)
        .seed(seed)
        .build()
}

/// Cardinality product 32³ = 32768 ≤ [`DENSE_MAX_GROUPS`] at the leaves:
/// even the finest query stays dense.
fn dense_cube() -> Cube {
    build_cube(
        vec![
            Dimension::uniform("A", 2, &[4, 4]),
            Dimension::uniform("B", 2, &[4, 4]),
            Dimension::uniform("C", 2, &[4, 4]),
        ],
        3_000,
        11,
    )
}

/// 120⁴ ≈ 2·10⁸ leaf groups: far past dense, comfortably inside `u64`.
fn packed_cube() -> Cube {
    build_cube(
        vec![
            Dimension::uniform("A", 3, &[5, 8]),
            Dimension::uniform("B", 3, &[5, 8]),
            Dimension::uniform("C", 3, &[5, 8]),
            Dimension::uniform("D", 3, &[5, 8]),
        ],
        3_000,
        13,
    )
}

/// 1024⁷ = 2⁷⁰ leaf groups: the cardinality product overflows `u64`, so
/// the finest queries must spill to `Vec<u32>` keys.
fn spill_cube() -> Cube {
    build_cube(
        (0..7)
            .map(|d| Dimension::uniform(format!("D{d}"), 1, &[32, 32]))
            .collect(),
        2_000,
        17,
    )
}

/// A random query over `cube`'s schema: per dimension a random target level
/// (or All) and, sometimes, a random member predicate.
fn random_query(cube: &Cube, rng: &mut Prng) -> GroupByQuery {
    let schema = &cube.schema;
    let mut levels = Vec::new();
    let mut preds = Vec::new();
    for d in 0..schema.n_dims() {
        let n_levels = schema.dim(d).n_levels();
        levels.push(if rng.gen_bool(0.25) {
            LevelRef::All
        } else {
            LevelRef::Level(rng.gen_range(0u8..n_levels))
        });
        preds.push(if rng.gen_bool(0.5) {
            MemberPred::All
        } else {
            let lvl = rng.gen_range(0u8..n_levels);
            let card = schema.dim(d).cardinality(lvl);
            let n = rng.gen_range(1usize..4);
            MemberPred::members_in(lvl, (0..n).map(|_| rng.gen_range(0u32..card)).collect())
        });
    }
    GroupByQuery::new(GroupBy::new(levels), preds)
}

/// The tier the kernel must pick, from the exact group-by cardinality
/// product ([`GroupBy::exact_combinations`]).
fn expected_tier(cube: &Cube, q: &GroupByQuery) -> KernelTier {
    match q.group_by.exact_combinations(&cube.schema) {
        Some(t) if t <= DENSE_MAX_GROUPS => KernelTier::Dense,
        Some(_) => KernelTier::Packed,
        None => KernelTier::Spill,
    }
}

/// Runs `iters` random queries (plus the finest unfiltered query first)
/// against `cube`, asserting tier selection, reference equality, and
/// thread-count invariance. Returns which tiers were exercised.
fn check_cube(cube: &Cube, headline: KernelTier, seed: u64, iters: usize) {
    let base = cube.catalog.base_table().expect("base table");
    let stored = cube.catalog.table(base).group_by().clone();
    let mut rng = Prng::seed_from_u64(seed);
    let mut seen = Vec::new();

    let finest = GroupByQuery::unfiltered(stored.clone());
    for i in 0..=iters {
        let q = if i == 0 {
            finest.clone()
        } else {
            random_query(cube, &mut rng)
        };

        // Tier selection is exactly what the cardinality product predicts.
        let pipeline = DimPipeline::compile(&cube.schema, &stored, &q).expect("answerable");
        let tier = pipeline.kernel_tier();
        assert_eq!(tier, expected_tier(cube, &q), "{}", q.display(&cube.schema));
        if !seen.contains(&tier) {
            seen.push(tier);
        }

        // Sequential operator matches the reference evaluator.
        let expect = reference_eval(cube, base, &q);
        let mut ctx = ExecContext::paper_1998();
        let (seq, _) = hash_star_join(&mut ctx, cube, base, &q).expect("runs");
        assert!(seq.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));

        // Partitioned execution: threads 1 and 4 agree bit-for-bit on
        // rows, counters, and the simulated clock, and match the
        // reference.
        let spec = ClassSpec {
            table: base,
            hash_queries: vec![q.clone()],
            index_queries: vec![],
        };
        let outs: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let mut ctx = ExecContext::paper_1998();
                execute_classes(&mut ctx, cube, std::slice::from_ref(&spec), threads)
                    .expect("runs")
                    .remove(0)
            })
            .collect();
        assert!(
            outs[0].results[0].approx_eq(&expect, 1e-9),
            "{}",
            q.display(&cube.schema)
        );
        assert_eq!(outs[0].results[0].rows, outs[1].results[0].rows);
        assert_eq!(outs[0].report.sim, outs[1].report.sim);
        assert_eq!(outs[0].report.critical, outs[1].report.critical);
        assert_eq!(outs[0].report.io, outs[1].report.io);
        assert_eq!(outs[0].report.cpu, outs[1].report.cpu);
    }
    assert!(
        seen.contains(&headline),
        "schema never exercised its headline tier {headline:?} (saw {seen:?})"
    );
}

#[test]
fn dense_schema_agrees_with_reference_at_threads_1_and_4() {
    check_cube(&dense_cube(), KernelTier::Dense, 0x4E61_0001, 20);
}

#[test]
fn packed_schema_agrees_with_reference_at_threads_1_and_4() {
    check_cube(&packed_cube(), KernelTier::Packed, 0x4E61_0002, 20);
}

#[test]
fn spill_schema_agrees_with_reference_at_threads_1_and_4() {
    check_cube(&spill_cube(), KernelTier::Spill, 0x4E61_0003, 16);
}

#[test]
fn shared_class_mixing_tiers_matches_reference() {
    // One shared scan feeding queries whose kernels land in different
    // tiers: a coarse (dense) roll-up and the finest (packed) group-by.
    let cube = packed_cube();
    let base = cube.catalog.base_table().expect("base table");
    let stored = cube.catalog.table(base).group_by().clone();
    let coarse = GroupByQuery::unfiltered(GroupBy::new(vec![
        LevelRef::Level(2),
        LevelRef::Level(2),
        LevelRef::All,
        LevelRef::Level(1),
    ]));
    let fine = GroupByQuery::unfiltered(stored.clone());
    let p_coarse = DimPipeline::compile(&cube.schema, &stored, &coarse).unwrap();
    let p_fine = DimPipeline::compile(&cube.schema, &stored, &fine).unwrap();
    assert_eq!(p_coarse.kernel_tier(), KernelTier::Dense);
    assert_eq!(p_fine.kernel_tier(), KernelTier::Packed);

    let spec = ClassSpec {
        table: base,
        hash_queries: vec![coarse.clone(), fine.clone()],
        index_queries: vec![],
    };
    let mut ctx = ExecContext::paper_1998();
    let out = execute_classes(&mut ctx, &cube, std::slice::from_ref(&spec), 4)
        .expect("runs")
        .remove(0);
    for (r, q) in out.results.iter().zip([&coarse, &fine]) {
        let expect = reference_eval(&cube, base, q);
        assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
    }
}
