//! Generator-driven fuzzing of the full pipeline: random *valid* MDX
//! (from `starshare::generate_mdx`) must parse, bind, optimize, execute,
//! and agree with the brute-force reference — across all four optimizers
//! and with a warm or cold buffer pool.

use starshare::{generate_mdx, reference_eval, Engine, OptimizerKind, PaperCubeSpec};
use starshare_prng::Prng;

fn engine() -> Engine {
    Engine::paper(PaperCubeSpec {
        base_rows: 2_500,
        d_leaf: 48,
        seed: 123,
        with_indexes: true,
    })
}

#[test]
fn two_hundred_random_expressions_round_trip() {
    let mut e = engine();
    let schema = e.cube().schema.clone();
    let base = e.cube().catalog.base_table().unwrap();
    let mut rng = Prng::seed_from_u64(0xF0CCAC1A);
    for i in 0..200 {
        let mdx = generate_mdx(&schema, "ABCD", &mut rng);
        let out = e
            .mdx(&mdx)
            .unwrap_or_else(|err| panic!("#{i} {mdx:?}: {err}"));
        for (q, &r) in out.expr(0).bound.queries.iter().zip(&out.results()) {
            let expect = reference_eval(e.cube(), base, q);
            assert!(
                r.approx_eq(&expect, 1e-9),
                "#{i} {mdx:?}: {}",
                q.display(&schema)
            );
        }
    }
}

#[test]
fn optimizers_agree_on_random_expressions() {
    let schema = engine().cube().schema.clone();
    let mut rng = Prng::seed_from_u64(31337);
    for i in 0..20 {
        let mdx = generate_mdx(&schema, "ABCD", &mut rng);
        let mut totals = Vec::new();
        for kind in OptimizerKind::ALL {
            let mut e = engine();
            e.set_optimizer(kind);
            let out = e
                .mdx(&mdx)
                .unwrap_or_else(|err| panic!("#{i} {kind} {mdx:?}: {err}"));
            let grand: f64 = out.results().iter().map(|r| r.grand_total()).sum();
            totals.push(grand);
        }
        for w in totals.windows(2) {
            assert!(
                (w[0] - w[1]).abs() <= 1e-6 * w[0].abs().max(1.0),
                "#{i} {mdx:?}: optimizers disagree: {totals:?}"
            );
        }
    }
}

#[test]
fn warm_pool_never_changes_answers() {
    // Run the same random expression twice without flushing: the second
    // run hits cached pages; results must be bit-identical.
    let mut e = engine();
    let schema = e.cube().schema.clone();
    let mut rng = Prng::seed_from_u64(777);
    for _ in 0..20 {
        let mdx = generate_mdx(&schema, "ABCD", &mut rng);
        let first = e.mdx(&mdx).unwrap();
        let second = e.mdx(&mdx).unwrap();
        for (a, b) in first.results().iter().zip(second.results()) {
            assert_eq!(a.rows, b.rows, "{mdx:?}");
        }
        // And the warm run does no more I/O faults than the cold one.
        assert!(
            second.report.io.seq_faults + second.report.io.random_faults
                <= first.report.io.seq_faults + first.report.io.random_faults,
            "{mdx:?}"
        );
    }
}
