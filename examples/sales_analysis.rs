//! The paper's §2 motivating scenario: a sales cube with named members, and
//! the NEST expression from the OLE DB for OLAP specification that asks six
//! related group-by queries at once.
//!
//! ```sh
//! cargo run --release --example sales_analysis
//! ```

use starshare::{
    CubeBuilder, Dimension, Engine, HardwareModel, LevelDef, OptimizerKind, StarSchema,
};

fn named(names: &[&str]) -> Option<Vec<String>> {
    Some(names.iter().map(|s| s.to_string()).collect())
}

/// Store hierarchy: State → Region → Country (leaf first), with the paper's
/// region names.
fn store_dimension() -> Dimension {
    let states: Vec<String> = (1..=24).map(|i| format!("State{i:02}")).collect();
    Dimension::new(
        "Store",
        vec![
            LevelDef {
                name: "State".into(),
                cardinality: 24,
                member_names: Some(states),
            },
            LevelDef {
                name: "Region".into(),
                cardinality: 6,
                member_names: named(&[
                    "USA_North",
                    "USA_South",
                    "Japan_East",
                    "Japan_West",
                    "Mex_North",
                    "Mex_South",
                ]),
            },
            LevelDef {
                name: "Country".into(),
                cardinality: 3,
                member_names: named(&["USA", "Japan", "Mexico"]),
            },
        ],
    )
}

/// Time hierarchy: Month → Quarter → Year.
fn time_dimension() -> Dimension {
    Dimension::new(
        "Time",
        vec![
            LevelDef {
                name: "Month".into(),
                cardinality: 12,
                member_names: named(&[
                    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
                    "Dec",
                ]),
            },
            LevelDef {
                name: "Quarter".into(),
                cardinality: 4,
                member_names: named(&["Qtr1", "Qtr2", "Qtr3", "Qtr4"]),
            },
            LevelDef {
                name: "Year".into(),
                cardinality: 1,
                member_names: named(&["1991"]),
            },
        ],
    )
}

fn main() {
    let schema = StarSchema::new(
        vec![
            Dimension::new(
                "Rep",
                vec![LevelDef {
                    name: "Rep".into(),
                    cardinality: 4,
                    member_names: named(&["Venkatrao", "Netz", "Smith", "Garcia"]),
                }],
            ),
            store_dimension(),
            time_dimension(),
            Dimension::uniform("Prod", 3, &[10]), // Category → Product
        ],
        "sales",
    );

    println!("building SalesCube (200 000 fact rows + 3 materialized views)…");
    let cube = CubeBuilder::new(schema)
        .rows(200_000)
        .seed(1991)
        .base_name("SalesCube")
        .materialize("RepStore'TimeProd*") // by region, by month
        .materialize("RepStoreTime'Prod*") // by state, by quarter
        .materialize("RepStore''Time'Prod*") // by country, by quarter
        .build();
    let mut engine = Engine::new(cube, HardwareModel::paper_1998());

    // The OLE DB for OLAP example (§2 of the paper): salesmen × (states of
    // USA_North + region USA_South + country Japan) on columns, months of
    // Qtr1/Qtr4 + quarters 2 and 3 on rows. The paper's slicer also names
    // [1991]; MDX forbids a hierarchy on both an axis and the slicer, and
    // this cube holds only year 1991 anyway, so the year filter is elided.
    let mdx = "NEST ({Venkatrao, Netz}, \
                     (USA_North.CHILDREN, USA_South, Japan)) on COLUMNS \
               {Qtr1.CHILDREN, Qtr2, Qtr3, Qtr4.CHILDREN} on ROWS \
               CONTEXT SalesCube \
               FILTER (Prod.All)";
    println!("\nMDX:\n{mdx}\n");

    let outcome = engine.mdx(mdx).expect("valid MDX");
    println!(
        "one expression → {} related group-by queries (store level × time level):",
        outcome.expr(0).bound.queries.len()
    );
    for q in &outcome.expr(0).bound.queries {
        println!("  {}", q.display(&engine.cube().schema));
    }

    println!("\nGlobal Greedy plan:");
    print!("{}", outcome.plan.explain(engine.cube()));

    // Compare against the fully naive strategy the paper's introduction
    // warns about: "a data source can always evaluate the queries one after
    // another" — six independent star joins against the base fact table.
    let base = engine.cube().catalog.base_table().expect("base table");
    let naive_plans: Vec<_> = outcome
        .expr(0)
        .bound
        .queries
        .iter()
        .map(|q| (base, q.clone(), starshare::JoinMethod::Hash))
        .collect();
    let (_, naive) = engine.execute_separately(&naive_plans).expect("runs");
    // And against per-query local optima without sharing (TPLO assignments,
    // each run alone).
    let tplo_plan = engine
        .optimize(&outcome.expr(0).bound.queries, OptimizerKind::Tplo)
        .expect("plans");
    let separate: Vec<_> = tplo_plan
        .assignments()
        .map(|(t, q, m)| (t, q.clone(), m))
        .collect();
    let (_, local) = engine.execute_separately(&separate).expect("runs");
    println!(
        "\nsimulated 1998 time:\n  {:>8.3}s  six separate star joins on the fact table\n  \
         {:>8.3}s  six separate local-optimal plans (materialized views, no sharing)\n  \
         {:>8.3}s  Global Greedy shared plan  ({:.1}× vs naive)",
        naive.sim.as_secs_f64(),
        local.sim.as_secs_f64(),
        outcome.report.sim.as_secs_f64(),
        naive.sim.as_secs_f64() / outcome.report.sim.as_secs_f64().max(1e-9),
    );

    // The client-side view: all six queries assembled into one pivot grid,
    // exactly what an OLE DB for OLAP consumer would display.
    let schema = engine.cube().schema.clone();
    if let Some(grid) = starshare::pivot(&schema, &outcome.expr(0).bound, &outcome.results()) {
        println!("\npivot grid (six queries, one display):");
        print!("{}", starshare::render_pivot(&schema, &grid));
    }
}
