//! Concurrent dashboards: several tenants refresh their dashboard panels
//! from their own threads at once. The server pools whatever is in flight
//! into optimization windows, so one base-table pass can feed panels of
//! *different* tenants — and each tenant still gets exactly the bits a
//! solo run would have produced, priced as if it ran alone.
//!
//! ```sh
//! cargo run --release --example concurrent_dashboard
//! ```

use std::time::Duration;

use starshare::{Engine, PaperCubeSpec, Serve};

fn main() {
    println!("building paper cube at 5% scale…");
    // `serve()` batches by the engine's configured window policy: close
    // after 16 expressions, 64 KiB of MDX, or 2 ms — whichever trips
    // first.
    let server = Engine::paper(PaperCubeSpec::scaled(0.05)).serve();

    // Each tenant's dashboard: a few panels, each one MDX expression.
    // Different tenants ask overlapping questions — exactly the situation
    // where cross-session sharing pays.
    let dashboards: &[(&str, &[&str])] = &[
        (
            "sales-team",
            &[
                "{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD;",
                "{A''.A1, A''.A2, A''.A3} on COLUMNS CONTEXT ABCD;",
            ],
        ),
        (
            "finance",
            &[
                "{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS CONTEXT ABCD;",
                "{C''.C1, C''.C2} on COLUMNS CONTEXT ABCD FILTER (D.DD1);",
            ],
        ),
        (
            "ops",
            &[
                "{B''.B1.CHILDREN} on COLUMNS {C''.C1} on PAGES CONTEXT ABCD;",
                "{A''.A1, A''.A2, A''.A3} on COLUMNS CONTEXT ABCD;",
            ],
        ),
    ];

    // Refresh all dashboards concurrently, one thread per tenant.
    std::thread::scope(|scope| {
        let handles: Vec<_> = dashboards
            .iter()
            .map(|&(tenant, panels)| {
                let session = server.session(tenant);
                scope.spawn(move || {
                    // Back off briefly if the server sheds load.
                    loop {
                        match session.mdx_many(panels) {
                            Ok(reply) => return (tenant, reply),
                            Err(e) if e.is_overloaded() => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(e) => panic!("{tenant}: {e}"),
                        }
                    }
                })
            })
            .collect();

        println!();
        for h in handles {
            let (tenant, reply) = h.join().expect("tenant thread");
            let rows: usize = reply
                .outcomes
                .iter()
                .filter_map(|o| o.as_ref().ok())
                .flat_map(|oc| oc.ok_results())
                .map(|r| r.n_groups())
                .sum();
            println!(
                "{tenant:<12} {} panels, {rows:>4} rows  — window #{}: {} sessions / {} queries \
                 / {} classes ({} cross-session), attributed {}",
                reply.outcomes.len(),
                reply.window.window_id,
                reply.window.n_submissions,
                reply.window.n_queries,
                reply.window.n_classes,
                reply.window.cross_session_classes,
                reply.attributed,
            );
        }
    });

    let stats = server.stats();
    println!(
        "\nserver totals: {} windows, {} submissions, {} expressions \
         ({} shed off the queue, {} off tenant budgets)",
        stats.windows,
        stats.submissions,
        stats.expressions,
        stats.rejected_queue,
        stats.rejected_tenant
    );

    // The engine comes back when serving ends — e.g. for maintenance.
    let engine = server.shutdown();
    println!(
        "engine returned: {} catalog tables",
        engine.cube().catalog.iter().count()
    );
}
