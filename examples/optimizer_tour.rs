//! A tour of the three optimization algorithms on the paper's Test-4
//! workload — watch TPLO, ETPLG and GG make increasingly global decisions,
//! culminating in GG's "Example 2" re-base move.
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use starshare::paper_queries::bind_paper_test;
use starshare::{Engine, OptimizerKind, PaperCubeSpec};

fn main() {
    println!("building cube at 10% of the paper scale…");
    let mut engine = Engine::paper(PaperCubeSpec::scaled(0.1));
    let queries = bind_paper_test(&engine.cube().schema, 4).expect("paper queries bind");

    println!("\nworkload (the paper's Test 4 — Queries 1, 2, 3 of one MDX expression):");
    for q in &queries {
        println!("  {}", q.display(&engine.cube().schema));
    }
    println!();
    println!("materialized group-bys available:");
    for (_, t) in engine.cube().catalog.iter() {
        println!("  {:<12} {:>9} rows", t.name(), t.n_rows());
    }

    for kind in OptimizerKind::ALL {
        let plan = engine.optimize(&queries, kind).expect("plannable");
        engine.flush();
        let exec = engine.execute_plan(&plan).expect("executes");
        println!("\n================ {kind} ================");
        print!("{}", plan.explain(engine.cube()));
        println!(
            "measured: {} simulated / {:?} wall — {} class(es)",
            exec.total.sim,
            exec.total.wall,
            plan.classes.len()
        );
        match kind {
            OptimizerKind::Tplo => println!(
                "TPLO picked each query's locally optimal view; the three views \
                 differ, so nothing is shared."
            ),
            OptimizerKind::Etplg => println!(
                "ETPLG grew a class greedily, but it can never revisit a class's \
                 base table, so Q2 (which Q1's base cannot answer) stays separate."
            ),
            OptimizerKind::Gg => println!(
                "GG re-based the class onto A'B'C'D — individually suboptimal for \
                 every query, globally the cheapest, because one scan now feeds all \
                 three (the paper's Example 2)."
            ),
            OptimizerKind::Optimal => {
                println!("Exhaustive search confirms GG's plan is the global optimum here.")
            }
        }
    }
}
