//! Quickstart: build the paper's test cube, ask an MDX query, inspect the
//! plan and the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use starshare::{Engine, PaperCubeSpec};

fn main() {
    // A 1%-scale instance of the paper's §7.2 database: a 20 000-row fact
    // table ABCD, four 3-level dimensions, four materialized group-bys, and
    // bitmap join indexes on ABCD and A'B'C'D.
    println!("building cube…");
    let mut engine = Engine::paper(PaperCubeSpec::scaled(0.01));

    // Paper Query 1: children of A1 on columns, B1 on rows, C1 on pages,
    // sliced to the D' member DD1.
    let mdx = "{A''.A1.CHILDREN} on COLUMNS \
               {B''.B1} on ROWS \
               {C''.C1} on PAGES \
               CONTEXT ABCD FILTER (D.DD1);";
    println!("MDX: {mdx}\n");

    let outcome = engine.mdx(mdx).expect("valid MDX");

    println!(
        "bound to {} group-by quer(ies):",
        outcome.expr(0).bound.queries.len()
    );
    for q in &outcome.expr(0).bound.queries {
        println!("  {}", q.display(&engine.cube().schema));
    }

    println!("\nglobal plan (Global Greedy):");
    print!("{}", outcome.plan.explain(engine.cube()));

    println!(
        "\nexecution: {} simulated (1998 hardware), {:?} wall on this machine",
        outcome.report.sim, outcome.report.wall
    );
    println!(
        "I/O: {} sequential + {} random page faults, {} pool hits",
        outcome.report.io.seq_faults, outcome.report.io.random_faults, outcome.report.io.hits
    );

    for r in outcome.results() {
        println!("\nresult ({} groups):", r.n_groups());
        print!("{}", r.display(&engine.cube().schema, 10));
    }
}
