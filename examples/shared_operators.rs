//! The three shared star-join operators (§3 of the paper), hands-on:
//! evaluate the same query set separately and with each shared operator,
//! and inspect exactly where the savings come from (page faults, hash
//! probes, bitmap work).
//!
//! ```sh
//! cargo run --release --example shared_operators
//! ```

use starshare::paper_queries::bind_paper_query;
use starshare::{
    shared_hybrid_join, shared_index_join, shared_scan_hash_join, Engine, ExecReport, GroupByQuery,
    JoinMethod, PaperCubeSpec,
};

fn show(label: &str, r: &ExecReport) {
    println!(
        "{label:<28} sim {:>8.3}s | seq {:>6} rand {:>6} hits {:>8} | probes {:>9} preds {:>9} bitmap-tests {:>9}",
        r.sim.as_secs_f64(),
        r.io.seq_faults,
        r.io.random_faults,
        r.io.hits,
        r.cpu.hash_probes,
        r.cpu.predicate_evals,
        r.cpu.bitmap_tests,
    );
}

fn main() {
    println!("building cube at 10% of the paper scale…");
    let mut engine = Engine::paper(PaperCubeSpec::scaled(0.1));
    let schema = engine.cube().schema.clone();
    let q = |n| bind_paper_query(&schema, n).expect("paper query binds");

    // --- §3.1: shared scan hash-based star join -------------------------
    println!("\n§3.1 shared scan hash-based star join — Q1..Q4 on ABCD");
    let abcd = engine.cube().catalog.find_by_name("ABCD").unwrap();
    let queries: Vec<GroupByQuery> = vec![q(1), q(2), q(3), q(4)];
    let sep: Vec<_> = queries
        .iter()
        .map(|x| (abcd, x.clone(), JoinMethod::Hash))
        .collect();
    let (_, separate) = engine.execute_separately(&sep).unwrap();
    show("4 separate scans", &separate);
    engine.flush();
    // Direct operator call — one scan, shared dimension hash tables.
    let mut ctx = starshare::ExecContext::paper_1998();
    let cube = engine.cube();
    let (results, shared) = shared_scan_hash_join(&mut ctx, cube, abcd, &queries).unwrap();
    show("1 shared scan", &shared);
    println!(
        "→ same answers ({} result sets), {:.1}× less simulated time",
        results.len(),
        separate.sim.as_secs_f64() / shared.sim.as_secs_f64()
    );

    // --- §3.2: shared index join ---------------------------------------
    println!("\n§3.2 shared bitmap-index star join — Q5..Q8 on A'B'C'D");
    let view = cube.catalog.find_by_name("A'B'C'D").unwrap();
    let sel_queries: Vec<GroupByQuery> = vec![q(5), q(6), q(7), q(8)];
    let mut sep_total = ExecReport::default();
    for x in &sel_queries {
        let mut c = starshare::ExecContext::paper_1998();
        let (_, r) = shared_index_join(&mut c, cube, view, std::slice::from_ref(x)).unwrap();
        sep_total.merge(&r);
    }
    show("4 separate index joins", &sep_total);
    let mut ctx = starshare::ExecContext::paper_1998();
    let (_, shared_idx) = shared_index_join(&mut ctx, cube, view, &sel_queries).unwrap();
    show("1 shared index join", &shared_idx);
    println!("→ ORed bitmaps probe each base page once instead of once per query");

    // --- §3.3: hash + index sharing one scan ----------------------------
    println!("\n§3.3 shared hybrid scan — Q3 (hash) + Q5..Q7 (index) on A'B'C'D");
    let mut ctx = starshare::ExecContext::paper_1998();
    let (_, hash_alone) =
        shared_hybrid_join(&mut ctx, cube, view, std::slice::from_ref(&q(3)), &[]).unwrap();
    show("Q3 alone (scan)", &hash_alone);
    let mut ctx = starshare::ExecContext::paper_1998();
    let idx = vec![q(5), q(6), q(7)];
    let (_, hybrid) =
        shared_hybrid_join(&mut ctx, cube, view, std::slice::from_ref(&q(3)), &idx).unwrap();
    show("Q3 + 3 index queries", &hybrid);
    println!(
        "→ three extra queries cost {:.3}s on top of the scan they ride",
        hybrid.sim.saturating_sub(hash_alone.sim).as_secs_f64()
    );
}
