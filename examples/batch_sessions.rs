//! Cube snapshots + batched sessions: build the paper cube once, save it,
//! reload it instantly, then run a "three analysts hit the server at once"
//! batch where the optimizer shares work *across* the users' expressions.
//!
//! ```sh
//! cargo run --release --example batch_sessions
//! ```

use std::time::Instant;

use starshare::paper_queries::paper_query_text;
use starshare::{load_cube, save_cube, Engine, HardwareModel, PaperCubeSpec};

fn main() {
    let path = std::env::temp_dir().join("starshare-example-cube.ss");

    // Build once, snapshot.
    let t0 = Instant::now();
    println!("building paper cube at 10% scale…");
    let engine = Engine::paper(PaperCubeSpec::scaled(0.1));
    let build_time = t0.elapsed();
    save_cube(engine.cube(), &path).expect("snapshot writes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "built in {build_time:?}; snapshot = {:.1} MB",
        bytes as f64 / 1e6
    );

    // Reload.
    let t1 = Instant::now();
    let cube = load_cube(&path).expect("snapshot reads");
    println!("reloaded (indexes rebuilt) in {:?}", t1.elapsed());
    let mut engine = Engine::new(cube, HardwareModel::paper_1998());

    // Three analysts submit the paper's Queries 1, 2, 3 — each a separate
    // MDX expression arriving in the same batch window.
    let session = [
        paper_query_text(1),
        paper_query_text(2),
        paper_query_text(3),
    ];
    println!("\nbatch of {} MDX expressions:", session.len());
    let out = engine.mdx_many(&session).expect("batch runs");
    print!("{}", out.plan.explain(engine.cube()));
    println!(
        "batched execution: {} simulated / {:?} wall",
        out.report.sim, out.report.wall
    );

    // Versus serving the users one at a time (cold cache each).
    let mut serial = starshare::ExecReport::default();
    for text in &session {
        engine.flush();
        serial.merge(&engine.mdx(text).expect("runs").report);
    }
    println!(
        "one-at-a-time:     {} simulated — batching is {:.2}× faster",
        serial.sim,
        serial.sim.as_secs_f64() / out.report.sim.as_secs_f64().max(1e-9)
    );

    for (i, outcome) in out.outcomes.iter().enumerate() {
        match outcome {
            Ok(oc) => println!(
                "analyst {}: {} result rows",
                i + 1,
                oc.results
                    .iter()
                    .filter_map(|r| r.as_ref().ok())
                    .map(|r| r.n_groups())
                    .sum::<usize>()
            ),
            Err(e) => println!("analyst {}: failed — {e}", i + 1),
        }
    }
    std::fs::remove_file(&path).ok();
}
