//! Cube snapshots + concurrent sessions: build the paper cube once, save
//! it, reload it instantly, then serve a "three analysts hit the server at
//! once" moment where the coordinator pools the in-flight expressions into
//! one optimization window and shares work *across* the users.
//!
//! ```sh
//! cargo run --release --example batch_sessions
//! ```

use std::time::{Duration, Instant};

use starshare::paper_queries::paper_query_text;
use starshare::{load_cube, save_cube, Engine, HardwareModel, WindowConfig};
use starshare::{OptimizerKind, PaperCubeSpec};

fn main() {
    let path = std::env::temp_dir().join("starshare-example-cube.ss");

    // Build once, snapshot.
    let t0 = Instant::now();
    println!("building paper cube at 10% scale…");
    let engine = Engine::paper(PaperCubeSpec::scaled(0.1));
    let build_time = t0.elapsed();
    save_cube(engine.cube(), &path).expect("snapshot writes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "built in {build_time:?}; snapshot = {:.1} MB",
        bytes as f64 / 1e6
    );

    // Reload.
    let t1 = Instant::now();
    let cube = load_cube(&path).expect("snapshot reads");
    println!("reloaded (indexes rebuilt) in {:?}", t1.elapsed());
    let engine = Engine::new(cube, HardwareModel::paper_1998());

    // Serve it. The window is tuned so the three analysts below land in
    // one window: it closes after 3 expressions (or 50 ms, whichever
    // trips first).
    let server = starshare::Server::start_with(
        engine,
        WindowConfig::default()
            .max_exprs(3)
            .max_wait(Duration::from_millis(50)),
    );

    // Three analysts submit the paper's Queries 1, 2, 3 — each from their
    // own session, in flight at the same time.
    let analysts: Vec<_> = (1..=3)
        .map(|n| {
            let session = server.session(&format!("analyst-{n}"));
            let ticket = session.submit(&[paper_query_text(n)]).expect("admitted");
            (n, ticket)
        })
        .collect();

    println!("\n3 sessions, 3 expressions, one optimization window:");
    let mut window_sim = None;
    for (n, ticket) in analysts {
        let reply = ticket.wait().expect("window answers");
        println!(
            "analyst {n}: {} result rows  (window #{}: {} sessions, {} queries → {} classes, \
             shared-scan ratio {:.2})",
            reply
                .outcomes
                .iter()
                .filter_map(|o| o.as_ref().ok())
                .flat_map(|oc| oc.ok_results())
                .map(|r| r.n_groups())
                .sum::<usize>(),
            reply.window.window_id,
            reply.window.n_submissions,
            reply.window.n_queries,
            reply.window.n_classes,
            reply.window.shared_scan_ratio,
        );
        window_sim = Some(reply.window.sim);
    }

    // Hand the engine back and compare with serving the users one at a
    // time (cold cache each).
    let mut engine = server.shutdown();
    engine.set_optimizer(OptimizerKind::Tplo); // match the window default
    let mut serial = starshare::ExecReport::default();
    for n in 1..=3 {
        engine.flush();
        serial.merge(&engine.mdx(paper_query_text(n)).expect("runs").report);
    }
    let shared = window_sim.expect("at least one reply");
    println!(
        "\nshared window:  {shared} simulated\none-at-a-time:  {} simulated — sharing is {:.2}× faster",
        serial.sim,
        serial.sim.as_secs_f64() / shared.as_secs_f64().max(1e-9)
    );
    std::fs::remove_file(&path).ok();
}
