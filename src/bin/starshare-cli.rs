//! `starshare-cli` — build, snapshot, and interactively query cubes.
//!
//! ```text
//! starshare-cli build [--scale S] [--out FILE]        build the paper cube, save a snapshot
//! starshare-cli query (--cube FILE | --scale S) MDX…  run one MDX expression
//! starshare-cli repl  [--cube FILE | --scale S]       interactive session
//! starshare-cli tables (--cube FILE | --scale S)      list the catalog
//! starshare-cli advise [--scale S] [--views N]        HRU96 view recommendations
//! ```
//!
//! REPL commands: any MDX expression (end with `;`), or
//! `\tables`, `\algo tplo|etplg|gg|optimal`, `\plan` (toggle plan
//! printing), `\flush`, `\quit`.

use std::io::{BufRead, Write};

use starshare::{load_cube, save_cube, Engine, HardwareModel, OptimizerKind, PaperCubeSpec};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with no arguments for usage");
    std::process::exit(1)
}

struct Opts {
    cube_file: Option<String>,
    out: Option<String>,
    scale: f64,
    rest: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        cube_file: None,
        out: None,
        scale: 0.05,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cube" => {
                o.cube_file = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--cube needs a file"))
                        .clone(),
                )
            }
            "--out" => {
                o.out = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--out needs a file"))
                        .clone(),
                )
            }
            "--scale" => {
                o.scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--scale needs a number"))
            }
            other => o.rest.push(other.to_string()),
        }
    }
    o
}

fn make_engine(o: &Opts) -> Engine {
    match &o.cube_file {
        Some(f) => {
            eprintln!("loading cube from {f}…");
            let cube = load_cube(f).unwrap_or_else(|e| fail(&format!("loading {f}: {e}")));
            Engine::new(cube, HardwareModel::paper_1998())
        }
        None => {
            eprintln!("building paper cube at scale {}…", o.scale);
            Engine::paper(PaperCubeSpec::scaled(o.scale))
        }
    }
}

fn print_tables(engine: &Engine) {
    println!(
        "{:<16} {:>10} {:>8}  {:<8} indexes",
        "table", "rows", "pages", "measure"
    );
    for (_, t) in engine.cube().catalog.iter() {
        let idx: Vec<String> = (0..engine.cube().schema.n_dims())
            .filter_map(|d| {
                t.index(d)
                    .map(|ix| engine.cube().schema.dim(d).level(ix.level).name.clone())
            })
            .collect();
        println!(
            "{:<16} {:>10} {:>8}  {:<8} {}",
            t.name(),
            t.n_rows(),
            t.pages(),
            t.measure().to_string(),
            if idx.is_empty() {
                "-".into()
            } else {
                idx.join(",")
            }
        );
    }
}

fn run_mdx(engine: &mut Engine, mdx: &str, show_plan: bool) -> bool {
    match engine.mdx(mdx) {
        Err(e) => {
            eprintln!("error: {e}");
            false
        }
        Ok(out) => {
            if show_plan {
                print!("{}", starshare::explain_tree(engine.cube(), &out.plan));
            }
            let schema = engine.cube().schema.clone();
            match starshare::pivot(&schema, &out.expr(0).bound, &out.results()) {
                Some(grid) => print!("{}", starshare::render_pivot(&schema, &grid)),
                None => {
                    for r in out.results() {
                        println!("-- {}  ({} groups)", r.query.display(&schema), r.n_groups());
                        print!("{}", r.display(&schema, 20));
                    }
                }
            }
            println!(
                "time: {} simulated 1998 / {:?} wall  (seq {} / rand {} faults)",
                out.report.sim,
                out.report.wall,
                out.report.io.seq_faults,
                out.report.io.random_faults
            );
            true
        }
    }
}

fn repl(mut engine: Engine) {
    let stdin = std::io::stdin();
    let mut show_plan = true;
    let mut buf = String::new();
    eprintln!("starshare repl — MDX ending with ';', or \\tables \\algo \\plan \\flush \\quit");
    loop {
        if buf.is_empty() {
            eprint!("mdx> ");
        } else {
            eprint!("...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return; // EOF
        }
        let trimmed = line.trim();
        if buf.is_empty() && trimmed.starts_with('\\') {
            let mut parts = trimmed[1..].split_whitespace();
            match parts.next() {
                Some("quit") | Some("q") => return,
                Some("tables") => print_tables(&engine),
                Some("flush") => {
                    engine.flush();
                    eprintln!("buffer pool flushed");
                }
                Some("plan") => {
                    show_plan = !show_plan;
                    eprintln!("plan printing {}", if show_plan { "on" } else { "off" });
                }
                Some("algo") => match parts.next().map(str::to_ascii_lowercase).as_deref() {
                    Some("tplo") => engine.set_optimizer(OptimizerKind::Tplo),
                    Some("etplg") => engine.set_optimizer(OptimizerKind::Etplg),
                    Some("gg") => engine.set_optimizer(OptimizerKind::Gg),
                    Some("optimal") => engine.set_optimizer(OptimizerKind::Optimal),
                    _ => eprintln!("usage: \\algo tplo|etplg|gg|optimal"),
                },
                _ => eprintln!("unknown command {trimmed}"),
            }
            continue;
        }
        buf.push_str(&line);
        if buf.contains(';') {
            let mdx = std::mem::take(&mut buf);
            // REPL keeps going after a bad expression.
            let _ = run_mdx(&mut engine, &mdx, show_plan);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!(
            "usage:\n  starshare-cli build [--scale S] [--out FILE]\n  \
             starshare-cli query (--cube FILE | --scale S) 'MDX…'\n  \
             starshare-cli repl [--cube FILE | --scale S]\n  \
             starshare-cli tables (--cube FILE | --scale S)"
        );
        std::process::exit(2);
    };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "build" => {
            let engine = make_engine(&o);
            let out = o.out.clone().unwrap_or_else(|| "cube.ss".into());
            save_cube(engine.cube(), &out).unwrap_or_else(|e| fail(&format!("saving {out}: {e}")));
            eprintln!("saved {out}");
            print_tables(&engine);
        }
        "query" => {
            if o.rest.is_empty() {
                fail("query needs an MDX string");
            }
            let mut engine = make_engine(&o);
            let mdx = o.rest.join(" ");
            if !run_mdx(&mut engine, &mdx, true) {
                std::process::exit(1);
            }
        }
        "repl" => repl(make_engine(&o)),
        "tables" => print_tables(&make_engine(&o)),
        "advise" => {
            let spec = starshare::PaperCubeSpec::scaled(o.scale);
            let schema = starshare::paper_schema(spec.d_leaf);
            let n: usize = o.rest.first().and_then(|s| s.parse().ok()).unwrap_or(4);
            println!(
                "HRU96 greedy view selection for the paper schema, {} base rows:",
                spec.base_rows
            );
            let recs = starshare::recommend_views(
                &schema,
                spec.base_rows,
                starshare::AdvisorConfig {
                    max_views: n,
                    row_budget: None,
                },
            );
            println!("{:<14} {:>14} {:>16}", "view", "est rows", "benefit (rows)");
            for r in recs {
                println!(
                    "{:<14} {:>14.0} {:>16.0}",
                    r.group_by.display(&schema),
                    r.est_rows,
                    r.benefit
                );
            }
        }
        other => fail(&format!("unknown command {other}")),
    }
}
