//! # starshare
//!
//! Simultaneous optimization and evaluation of multiple dimensional (MDX)
//! queries — a Rust reproduction of Zhao, Deshpande, Naughton & Shukla,
//! *"Simultaneous Optimization and Evaluation of Multiple Dimensional
//! Queries"*, SIGMOD 1998.
//!
//! This top-level crate re-exports the engine facade from
//! [`starshare_core`] and the concurrent multi-session serving layer from
//! [`starshare_serve`] (the [`serve`] module; [`Serve`], [`Server`],
//! [`Session`]). See the README for a quickstart and DESIGN.md for the
//! system inventory.

pub use starshare_core::*;

pub use starshare_serve as serve;
pub use starshare_serve::{Reply, Serve, Server, ServerStats, Session, Ticket, WindowInfo};
