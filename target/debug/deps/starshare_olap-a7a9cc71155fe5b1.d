/root/repo/target/debug/deps/starshare_olap-a7a9cc71155fe5b1.d: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs

/root/repo/target/debug/deps/starshare_olap-a7a9cc71155fe5b1: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs

crates/olap/src/lib.rs:
crates/olap/src/advisor.rs:
crates/olap/src/catalog.rs:
crates/olap/src/datagen.rs:
crates/olap/src/error.rs:
crates/olap/src/estimate.rs:
crates/olap/src/maintain.rs:
crates/olap/src/persist.rs:
crates/olap/src/query.rs:
crates/olap/src/schema.rs:
crates/olap/src/stats.rs:
