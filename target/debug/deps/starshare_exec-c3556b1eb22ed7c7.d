/root/repo/target/debug/deps/starshare_exec-c3556b1eb22ed7c7.d: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs

/root/repo/target/debug/deps/starshare_exec-c3556b1eb22ed7c7: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs

crates/exec/src/lib.rs:
crates/exec/src/context.rs:
crates/exec/src/error.rs:
crates/exec/src/operators.rs:
crates/exec/src/parallel.rs:
crates/exec/src/plan_io.rs:
crates/exec/src/reference.rs:
crates/exec/src/result.rs:
crates/exec/src/rollup.rs:
