/root/repo/target/debug/deps/table2-a34bd064e92252e7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a34bd064e92252e7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
