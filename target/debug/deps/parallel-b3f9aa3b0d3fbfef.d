/root/repo/target/debug/deps/parallel-b3f9aa3b0d3fbfef.d: crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-b3f9aa3b0d3fbfef.rmeta: crates/bench/src/bin/parallel.rs Cargo.toml

crates/bench/src/bin/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
