/root/repo/target/debug/deps/parallel-4a2a01cc2fdefbe9.d: crates/bench/src/bin/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-4a2a01cc2fdefbe9.rmeta: crates/bench/src/bin/parallel.rs Cargo.toml

crates/bench/src/bin/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
