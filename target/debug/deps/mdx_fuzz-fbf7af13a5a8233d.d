/root/repo/target/debug/deps/mdx_fuzz-fbf7af13a5a8233d.d: tests/mdx_fuzz.rs

/root/repo/target/debug/deps/mdx_fuzz-fbf7af13a5a8233d: tests/mdx_fuzz.rs

tests/mdx_fuzz.rs:
