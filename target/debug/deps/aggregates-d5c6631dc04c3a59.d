/root/repo/target/debug/deps/aggregates-d5c6631dc04c3a59.d: tests/aggregates.rs Cargo.toml

/root/repo/target/debug/deps/libaggregates-d5c6631dc04c3a59.rmeta: tests/aggregates.rs Cargo.toml

tests/aggregates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
