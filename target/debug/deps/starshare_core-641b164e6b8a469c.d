/root/repo/target/debug/deps/starshare_core-641b164e6b8a469c.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_core-641b164e6b8a469c.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
