/root/repo/target/debug/deps/parallel-04c35389f8266f99.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/parallel-04c35389f8266f99: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
