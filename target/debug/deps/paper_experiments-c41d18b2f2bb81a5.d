/root/repo/target/debug/deps/paper_experiments-c41d18b2f2bb81a5.d: tests/paper_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_experiments-c41d18b2f2bb81a5.rmeta: tests/paper_experiments.rs Cargo.toml

tests/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
