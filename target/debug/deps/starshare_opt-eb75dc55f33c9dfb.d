/root/repo/target/debug/deps/starshare_opt-eb75dc55f33c9dfb.d: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

/root/repo/target/debug/deps/libstarshare_opt-eb75dc55f33c9dfb.rlib: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

/root/repo/target/debug/deps/libstarshare_opt-eb75dc55f33c9dfb.rmeta: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

crates/opt/src/lib.rs:
crates/opt/src/algorithms.rs:
crates/opt/src/cost.rs:
crates/opt/src/error.rs:
crates/opt/src/explain.rs:
crates/opt/src/improve.rs:
crates/opt/src/plan.rs:
