/root/repo/target/debug/deps/maintenance-3a6fc8753b4848bf.d: tests/maintenance.rs Cargo.toml

/root/repo/target/debug/deps/libmaintenance-3a6fc8753b4848bf.rmeta: tests/maintenance.rs Cargo.toml

tests/maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
