/root/repo/target/debug/deps/starshare_core-d85c4de67592fa6d.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

/root/repo/target/debug/deps/libstarshare_core-d85c4de67592fa6d.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

/root/repo/target/debug/deps/libstarshare_core-d85c4de67592fa6d.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/grid.rs:
