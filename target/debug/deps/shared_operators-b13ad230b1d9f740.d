/root/repo/target/debug/deps/shared_operators-b13ad230b1d9f740.d: crates/bench/benches/shared_operators.rs

/root/repo/target/debug/deps/shared_operators-b13ad230b1d9f740: crates/bench/benches/shared_operators.rs

crates/bench/benches/shared_operators.rs:
