/root/repo/target/debug/deps/starshare_prng-2f81cf94e6043ea9.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_prng-2f81cf94e6043ea9.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
