/root/repo/target/debug/deps/starshare_prng-e65e881631d3f943.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_prng-e65e881631d3f943.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
