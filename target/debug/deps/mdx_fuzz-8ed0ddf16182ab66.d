/root/repo/target/debug/deps/mdx_fuzz-8ed0ddf16182ab66.d: tests/mdx_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libmdx_fuzz-8ed0ddf16182ab66.rmeta: tests/mdx_fuzz.rs Cargo.toml

tests/mdx_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
