/root/repo/target/debug/deps/starshare_bench-585a3817c2918872.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_bench-585a3817c2918872.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
