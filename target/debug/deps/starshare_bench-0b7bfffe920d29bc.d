/root/repo/target/debug/deps/starshare_bench-0b7bfffe920d29bc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/starshare_bench-0b7bfffe920d29bc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
