/root/repo/target/debug/deps/ablations-f5c54fc0a514d9a8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-f5c54fc0a514d9a8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
