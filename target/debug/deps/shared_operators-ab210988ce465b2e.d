/root/repo/target/debug/deps/shared_operators-ab210988ce465b2e.d: crates/bench/benches/shared_operators.rs Cargo.toml

/root/repo/target/debug/deps/libshared_operators-ab210988ce465b2e.rmeta: crates/bench/benches/shared_operators.rs Cargo.toml

crates/bench/benches/shared_operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
