/root/repo/target/debug/deps/starshare_opt-8aeaf375d75ed2c7.d: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_opt-8aeaf375d75ed2c7.rmeta: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/algorithms.rs:
crates/opt/src/cost.rs:
crates/opt/src/error.rs:
crates/opt/src/explain.rs:
crates/opt/src/improve.rs:
crates/opt/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
