/root/repo/target/debug/deps/starshare-6d5431d41776e512.d: src/lib.rs

/root/repo/target/debug/deps/libstarshare-6d5431d41776e512.rlib: src/lib.rs

/root/repo/target/debug/deps/libstarshare-6d5431d41776e512.rmeta: src/lib.rs

src/lib.rs:
