/root/repo/target/debug/deps/starshare_cli-d25717f5dcb0def9.d: src/bin/starshare-cli.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_cli-d25717f5dcb0def9.rmeta: src/bin/starshare-cli.rs Cargo.toml

src/bin/starshare-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
