/root/repo/target/debug/deps/mdx_binding-a2b0d45404895277.d: tests/mdx_binding.rs

/root/repo/target/debug/deps/mdx_binding-a2b0d45404895277: tests/mdx_binding.rs

tests/mdx_binding.rs:
