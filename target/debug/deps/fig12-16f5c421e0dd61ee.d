/root/repo/target/debug/deps/fig12-16f5c421e0dd61ee.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-16f5c421e0dd61ee: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
