/root/repo/target/debug/deps/ablations-2db5f2748a9d70dd.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2db5f2748a9d70dd.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
