/root/repo/target/debug/deps/starshare_mdx-83efaae1049ca6d4.d: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

/root/repo/target/debug/deps/starshare_mdx-83efaae1049ca6d4: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

crates/mdx/src/lib.rs:
crates/mdx/src/ast.rs:
crates/mdx/src/binder.rs:
crates/mdx/src/generate.rs:
crates/mdx/src/lexer.rs:
crates/mdx/src/paper_queries.rs:
crates/mdx/src/parser.rs:
