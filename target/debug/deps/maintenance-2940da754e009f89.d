/root/repo/target/debug/deps/maintenance-2940da754e009f89.d: tests/maintenance.rs

/root/repo/target/debug/deps/maintenance-2940da754e009f89: tests/maintenance.rs

tests/maintenance.rs:
