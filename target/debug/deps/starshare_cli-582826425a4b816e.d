/root/repo/target/debug/deps/starshare_cli-582826425a4b816e.d: src/bin/starshare-cli.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_cli-582826425a4b816e.rmeta: src/bin/starshare-cli.rs Cargo.toml

src/bin/starshare-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
