/root/repo/target/debug/deps/optimizer_invariants-a8d5df993f3693c1.d: tests/optimizer_invariants.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_invariants-a8d5df993f3693c1.rmeta: tests/optimizer_invariants.rs Cargo.toml

tests/optimizer_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
