/root/repo/target/debug/deps/ablations-4839e45d3aa488da.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-4839e45d3aa488da: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
