/root/repo/target/debug/deps/starshare_mdx-fd7d32a7b1fd4cff.d: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_mdx-fd7d32a7b1fd4cff.rmeta: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs Cargo.toml

crates/mdx/src/lib.rs:
crates/mdx/src/ast.rs:
crates/mdx/src/binder.rs:
crates/mdx/src/generate.rs:
crates/mdx/src/lexer.rs:
crates/mdx/src/paper_queries.rs:
crates/mdx/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
