/root/repo/target/debug/deps/parallel-6322ce2804cdc95e.d: crates/bench/src/bin/parallel.rs

/root/repo/target/debug/deps/parallel-6322ce2804cdc95e: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
