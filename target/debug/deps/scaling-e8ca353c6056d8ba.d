/root/repo/target/debug/deps/scaling-e8ca353c6056d8ba.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-e8ca353c6056d8ba: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
