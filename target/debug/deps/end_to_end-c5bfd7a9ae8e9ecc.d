/root/repo/target/debug/deps/end_to_end-c5bfd7a9ae8e9ecc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c5bfd7a9ae8e9ecc: tests/end_to_end.rs

tests/end_to_end.rs:
