/root/repo/target/debug/deps/optimizer_invariants-078be62494628bdd.d: tests/optimizer_invariants.rs

/root/repo/target/debug/deps/optimizer_invariants-078be62494628bdd: tests/optimizer_invariants.rs

tests/optimizer_invariants.rs:
