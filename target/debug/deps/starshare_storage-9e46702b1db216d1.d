/root/repo/target/debug/deps/starshare_storage-9e46702b1db216d1.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_storage-9e46702b1db216d1.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/heap.rs:
crates/storage/src/model.rs:
crates/storage/src/page.rs:
crates/storage/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
