/root/repo/target/debug/deps/scaling-51af1dc6274a0234.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-51af1dc6274a0234.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
