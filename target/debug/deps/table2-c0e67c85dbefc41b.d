/root/repo/target/debug/deps/table2-c0e67c85dbefc41b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c0e67c85dbefc41b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
