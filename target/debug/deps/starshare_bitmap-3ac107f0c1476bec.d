/root/repo/target/debug/deps/starshare_bitmap-3ac107f0c1476bec.d: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

/root/repo/target/debug/deps/libstarshare_bitmap-3ac107f0c1476bec.rlib: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

/root/repo/target/debug/deps/libstarshare_bitmap-3ac107f0c1476bec.rmeta: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

crates/bitmap/src/lib.rs:
crates/bitmap/src/bitvec.rs:
crates/bitmap/src/index.rs:
crates/bitmap/src/rle.rs:
