/root/repo/target/debug/deps/mdx_binding-e82466be53aec4dc.d: tests/mdx_binding.rs Cargo.toml

/root/repo/target/debug/deps/libmdx_binding-e82466be53aec4dc.rmeta: tests/mdx_binding.rs Cargo.toml

tests/mdx_binding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
