/root/repo/target/debug/deps/starshare_bench-09c3cacb69d27153.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_bench-09c3cacb69d27153.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
