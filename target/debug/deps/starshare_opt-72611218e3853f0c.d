/root/repo/target/debug/deps/starshare_opt-72611218e3853f0c.d: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

/root/repo/target/debug/deps/starshare_opt-72611218e3853f0c: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

crates/opt/src/lib.rs:
crates/opt/src/algorithms.rs:
crates/opt/src/cost.rs:
crates/opt/src/error.rs:
crates/opt/src/explain.rs:
crates/opt/src/improve.rs:
crates/opt/src/plan.rs:
