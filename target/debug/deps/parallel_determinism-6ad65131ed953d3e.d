/root/repo/target/debug/deps/parallel_determinism-6ad65131ed953d3e.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-6ad65131ed953d3e: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
