/root/repo/target/debug/deps/starshare-f9a50ed162e16449.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare-f9a50ed162e16449.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
