/root/repo/target/debug/deps/starshare_mdx-ec3ca271e9192ac7.d: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_mdx-ec3ca271e9192ac7.rmeta: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs Cargo.toml

crates/mdx/src/lib.rs:
crates/mdx/src/ast.rs:
crates/mdx/src/binder.rs:
crates/mdx/src/generate.rs:
crates/mdx/src/lexer.rs:
crates/mdx/src/paper_queries.rs:
crates/mdx/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
