/root/repo/target/debug/deps/shared_operators-51ca5017cb0ede7d.d: crates/bench/benches/shared_operators.rs

/root/repo/target/debug/deps/shared_operators-51ca5017cb0ede7d: crates/bench/benches/shared_operators.rs

crates/bench/benches/shared_operators.rs:
