/root/repo/target/debug/deps/fig12-236966ea35c0265a.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-236966ea35c0265a: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
