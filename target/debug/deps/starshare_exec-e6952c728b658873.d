/root/repo/target/debug/deps/starshare_exec-e6952c728b658873.d: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_exec-e6952c728b658873.rmeta: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs Cargo.toml

crates/exec/src/lib.rs:
crates/exec/src/context.rs:
crates/exec/src/error.rs:
crates/exec/src/operators.rs:
crates/exec/src/parallel.rs:
crates/exec/src/plan_io.rs:
crates/exec/src/reference.rs:
crates/exec/src/result.rs:
crates/exec/src/rollup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
