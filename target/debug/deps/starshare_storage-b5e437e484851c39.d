/root/repo/target/debug/deps/starshare_storage-b5e437e484851c39.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

/root/repo/target/debug/deps/libstarshare_storage-b5e437e484851c39.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

/root/repo/target/debug/deps/libstarshare_storage-b5e437e484851c39.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/heap.rs:
crates/storage/src/model.rs:
crates/storage/src/page.rs:
crates/storage/src/tuple.rs:
