/root/repo/target/debug/deps/starshare_cli-8412ca654a018a69.d: src/bin/starshare-cli.rs

/root/repo/target/debug/deps/starshare_cli-8412ca654a018a69: src/bin/starshare-cli.rs

src/bin/starshare-cli.rs:
