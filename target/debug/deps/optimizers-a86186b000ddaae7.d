/root/repo/target/debug/deps/optimizers-a86186b000ddaae7.d: crates/bench/benches/optimizers.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizers-a86186b000ddaae7.rmeta: crates/bench/benches/optimizers.rs Cargo.toml

crates/bench/benches/optimizers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
