/root/repo/target/debug/deps/persistence-6f9aa9fc4d66ac7c.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-6f9aa9fc4d66ac7c: tests/persistence.rs

tests/persistence.rs:
