/root/repo/target/debug/deps/starshare_storage-58670fef9e860995.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

/root/repo/target/debug/deps/starshare_storage-58670fef9e860995: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/heap.rs:
crates/storage/src/model.rs:
crates/storage/src/page.rs:
crates/storage/src/tuple.rs:
