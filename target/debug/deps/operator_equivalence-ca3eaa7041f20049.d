/root/repo/target/debug/deps/operator_equivalence-ca3eaa7041f20049.d: tests/operator_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/liboperator_equivalence-ca3eaa7041f20049.rmeta: tests/operator_equivalence.rs Cargo.toml

tests/operator_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
