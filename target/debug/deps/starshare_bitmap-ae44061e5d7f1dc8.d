/root/repo/target/debug/deps/starshare_bitmap-ae44061e5d7f1dc8.d: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_bitmap-ae44061e5d7f1dc8.rmeta: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs Cargo.toml

crates/bitmap/src/lib.rs:
crates/bitmap/src/bitvec.rs:
crates/bitmap/src/index.rs:
crates/bitmap/src/rle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
