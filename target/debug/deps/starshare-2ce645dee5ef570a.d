/root/repo/target/debug/deps/starshare-2ce645dee5ef570a.d: src/lib.rs

/root/repo/target/debug/deps/starshare-2ce645dee5ef570a: src/lib.rs

src/lib.rs:
