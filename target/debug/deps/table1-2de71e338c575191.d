/root/repo/target/debug/deps/table1-2de71e338c575191.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-2de71e338c575191: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
