/root/repo/target/debug/deps/table1-db9acd5cff4899fa.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-db9acd5cff4899fa: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
