/root/repo/target/debug/deps/starshare_prng-875d23601911c8f3.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/starshare_prng-875d23601911c8f3: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
