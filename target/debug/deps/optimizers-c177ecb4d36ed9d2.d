/root/repo/target/debug/deps/optimizers-c177ecb4d36ed9d2.d: crates/bench/benches/optimizers.rs

/root/repo/target/debug/deps/optimizers-c177ecb4d36ed9d2: crates/bench/benches/optimizers.rs

crates/bench/benches/optimizers.rs:
