/root/repo/target/debug/deps/starshare_bench-a4c8a1d9b861ec2c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstarshare_bench-a4c8a1d9b861ec2c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libstarshare_bench-a4c8a1d9b861ec2c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
