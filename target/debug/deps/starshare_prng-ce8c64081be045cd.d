/root/repo/target/debug/deps/starshare_prng-ce8c64081be045cd.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libstarshare_prng-ce8c64081be045cd.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libstarshare_prng-ce8c64081be045cd.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
