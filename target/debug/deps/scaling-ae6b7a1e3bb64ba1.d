/root/repo/target/debug/deps/scaling-ae6b7a1e3bb64ba1.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-ae6b7a1e3bb64ba1: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
