/root/repo/target/debug/deps/fig10-194387d4dc732f23.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-194387d4dc732f23: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
