/root/repo/target/debug/deps/starshare_bitmap-f030ff2e488a84b0.d: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

/root/repo/target/debug/deps/starshare_bitmap-f030ff2e488a84b0: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

crates/bitmap/src/lib.rs:
crates/bitmap/src/bitvec.rs:
crates/bitmap/src/index.rs:
crates/bitmap/src/rle.rs:
