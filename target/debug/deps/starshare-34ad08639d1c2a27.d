/root/repo/target/debug/deps/starshare-34ad08639d1c2a27.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare-34ad08639d1c2a27.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
