/root/repo/target/debug/deps/fig10-b84e753fc5d83c89.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-b84e753fc5d83c89: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
