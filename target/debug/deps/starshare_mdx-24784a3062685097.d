/root/repo/target/debug/deps/starshare_mdx-24784a3062685097.d: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

/root/repo/target/debug/deps/libstarshare_mdx-24784a3062685097.rlib: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

/root/repo/target/debug/deps/libstarshare_mdx-24784a3062685097.rmeta: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

crates/mdx/src/lib.rs:
crates/mdx/src/ast.rs:
crates/mdx/src/binder.rs:
crates/mdx/src/generate.rs:
crates/mdx/src/lexer.rs:
crates/mdx/src/paper_queries.rs:
crates/mdx/src/parser.rs:
