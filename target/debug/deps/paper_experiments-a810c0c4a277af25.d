/root/repo/target/debug/deps/paper_experiments-a810c0c4a277af25.d: tests/paper_experiments.rs

/root/repo/target/debug/deps/paper_experiments-a810c0c4a277af25: tests/paper_experiments.rs

tests/paper_experiments.rs:
