/root/repo/target/debug/deps/aggregates-380190ac9934f363.d: tests/aggregates.rs

/root/repo/target/debug/deps/aggregates-380190ac9934f363: tests/aggregates.rs

tests/aggregates.rs:
