/root/repo/target/debug/deps/starshare_storage-5486b1541d656a8a.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_storage-5486b1541d656a8a.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/heap.rs:
crates/storage/src/model.rs:
crates/storage/src/page.rs:
crates/storage/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
