/root/repo/target/debug/deps/fig11-5a954e52a8274fe7.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-5a954e52a8274fe7: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
