/root/repo/target/debug/deps/starshare_core-d4224a13baa6c057.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

/root/repo/target/debug/deps/starshare_core-d4224a13baa6c057: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/grid.rs:
