/root/repo/target/debug/deps/scaling-b6e88b69aa269806.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-b6e88b69aa269806.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
