/root/repo/target/debug/deps/starshare_olap-a427b7ed56398ce5.d: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_olap-a427b7ed56398ce5.rmeta: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs Cargo.toml

crates/olap/src/lib.rs:
crates/olap/src/advisor.rs:
crates/olap/src/catalog.rs:
crates/olap/src/datagen.rs:
crates/olap/src/error.rs:
crates/olap/src/estimate.rs:
crates/olap/src/maintain.rs:
crates/olap/src/persist.rs:
crates/olap/src/query.rs:
crates/olap/src/schema.rs:
crates/olap/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
