/root/repo/target/debug/deps/fig11-06e67f37228ebf58.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-06e67f37228ebf58: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
