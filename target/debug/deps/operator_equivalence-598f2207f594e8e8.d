/root/repo/target/debug/deps/operator_equivalence-598f2207f594e8e8.d: tests/operator_equivalence.rs

/root/repo/target/debug/deps/operator_equivalence-598f2207f594e8e8: tests/operator_equivalence.rs

tests/operator_equivalence.rs:
