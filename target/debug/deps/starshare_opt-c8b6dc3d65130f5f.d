/root/repo/target/debug/deps/starshare_opt-c8b6dc3d65130f5f.d: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libstarshare_opt-c8b6dc3d65130f5f.rmeta: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/algorithms.rs:
crates/opt/src/cost.rs:
crates/opt/src/error.rs:
crates/opt/src/explain.rs:
crates/opt/src/improve.rs:
crates/opt/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
