/root/repo/target/debug/deps/optimizers-5a92c658af761f0d.d: crates/bench/benches/optimizers.rs

/root/repo/target/debug/deps/optimizers-5a92c658af761f0d: crates/bench/benches/optimizers.rs

crates/bench/benches/optimizers.rs:
