/root/repo/target/debug/deps/starshare_cli-fc05a5902bff55b8.d: src/bin/starshare-cli.rs

/root/repo/target/debug/deps/starshare_cli-fc05a5902bff55b8: src/bin/starshare-cli.rs

src/bin/starshare-cli.rs:
