/root/repo/target/debug/deps/persistence-a5bce17495d7d52b.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-a5bce17495d7d52b.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
