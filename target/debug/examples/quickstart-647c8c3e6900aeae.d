/root/repo/target/debug/examples/quickstart-647c8c3e6900aeae.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-647c8c3e6900aeae: examples/quickstart.rs

examples/quickstart.rs:
