/root/repo/target/debug/examples/batch_sessions-326ed1f65e9291d6.d: examples/batch_sessions.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_sessions-326ed1f65e9291d6.rmeta: examples/batch_sessions.rs Cargo.toml

examples/batch_sessions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
