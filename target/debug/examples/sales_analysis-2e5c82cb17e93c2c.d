/root/repo/target/debug/examples/sales_analysis-2e5c82cb17e93c2c.d: examples/sales_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libsales_analysis-2e5c82cb17e93c2c.rmeta: examples/sales_analysis.rs Cargo.toml

examples/sales_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
