/root/repo/target/debug/examples/optimizer_tour-da307b4a15e0bc2d.d: examples/optimizer_tour.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_tour-da307b4a15e0bc2d.rmeta: examples/optimizer_tour.rs Cargo.toml

examples/optimizer_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
