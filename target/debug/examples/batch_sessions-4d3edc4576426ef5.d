/root/repo/target/debug/examples/batch_sessions-4d3edc4576426ef5.d: examples/batch_sessions.rs

/root/repo/target/debug/examples/batch_sessions-4d3edc4576426ef5: examples/batch_sessions.rs

examples/batch_sessions.rs:
