/root/repo/target/debug/examples/shared_operators-30db4d3a71c4fcd7.d: examples/shared_operators.rs

/root/repo/target/debug/examples/shared_operators-30db4d3a71c4fcd7: examples/shared_operators.rs

examples/shared_operators.rs:
