/root/repo/target/debug/examples/sales_analysis-21af26eb1ed16d70.d: examples/sales_analysis.rs

/root/repo/target/debug/examples/sales_analysis-21af26eb1ed16d70: examples/sales_analysis.rs

examples/sales_analysis.rs:
