/root/repo/target/debug/examples/shared_operators-73bf303acacf62ba.d: examples/shared_operators.rs Cargo.toml

/root/repo/target/debug/examples/libshared_operators-73bf303acacf62ba.rmeta: examples/shared_operators.rs Cargo.toml

examples/shared_operators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
