/root/repo/target/debug/examples/optimizer_tour-1653a56dee87087a.d: examples/optimizer_tour.rs

/root/repo/target/debug/examples/optimizer_tour-1653a56dee87087a: examples/optimizer_tour.rs

examples/optimizer_tour.rs:
