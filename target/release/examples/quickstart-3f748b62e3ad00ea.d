/root/repo/target/release/examples/quickstart-3f748b62e3ad00ea.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3f748b62e3ad00ea: examples/quickstart.rs

examples/quickstart.rs:
