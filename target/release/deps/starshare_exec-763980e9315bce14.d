/root/repo/target/release/deps/starshare_exec-763980e9315bce14.d: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs

/root/repo/target/release/deps/libstarshare_exec-763980e9315bce14.rlib: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs

/root/repo/target/release/deps/libstarshare_exec-763980e9315bce14.rmeta: crates/exec/src/lib.rs crates/exec/src/context.rs crates/exec/src/error.rs crates/exec/src/operators.rs crates/exec/src/parallel.rs crates/exec/src/plan_io.rs crates/exec/src/reference.rs crates/exec/src/result.rs crates/exec/src/rollup.rs

crates/exec/src/lib.rs:
crates/exec/src/context.rs:
crates/exec/src/error.rs:
crates/exec/src/operators.rs:
crates/exec/src/parallel.rs:
crates/exec/src/plan_io.rs:
crates/exec/src/reference.rs:
crates/exec/src/result.rs:
crates/exec/src/rollup.rs:
