/root/repo/target/release/deps/starshare_olap-df2a5da05aaa49a5.d: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs

/root/repo/target/release/deps/libstarshare_olap-df2a5da05aaa49a5.rlib: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs

/root/repo/target/release/deps/libstarshare_olap-df2a5da05aaa49a5.rmeta: crates/olap/src/lib.rs crates/olap/src/advisor.rs crates/olap/src/catalog.rs crates/olap/src/datagen.rs crates/olap/src/error.rs crates/olap/src/estimate.rs crates/olap/src/maintain.rs crates/olap/src/persist.rs crates/olap/src/query.rs crates/olap/src/schema.rs crates/olap/src/stats.rs

crates/olap/src/lib.rs:
crates/olap/src/advisor.rs:
crates/olap/src/catalog.rs:
crates/olap/src/datagen.rs:
crates/olap/src/error.rs:
crates/olap/src/estimate.rs:
crates/olap/src/maintain.rs:
crates/olap/src/persist.rs:
crates/olap/src/query.rs:
crates/olap/src/schema.rs:
crates/olap/src/stats.rs:
