/root/repo/target/release/deps/starshare_storage-1bffae22c1e51fbe.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

/root/repo/target/release/deps/libstarshare_storage-1bffae22c1e51fbe.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

/root/repo/target/release/deps/libstarshare_storage-1bffae22c1e51fbe.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/heap.rs crates/storage/src/model.rs crates/storage/src/page.rs crates/storage/src/tuple.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/heap.rs:
crates/storage/src/model.rs:
crates/storage/src/page.rs:
crates/storage/src/tuple.rs:
