/root/repo/target/release/deps/starshare_bench-c48808c4020b37b5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstarshare_bench-c48808c4020b37b5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libstarshare_bench-c48808c4020b37b5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
