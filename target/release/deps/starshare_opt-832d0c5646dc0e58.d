/root/repo/target/release/deps/starshare_opt-832d0c5646dc0e58.d: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

/root/repo/target/release/deps/libstarshare_opt-832d0c5646dc0e58.rlib: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

/root/repo/target/release/deps/libstarshare_opt-832d0c5646dc0e58.rmeta: crates/opt/src/lib.rs crates/opt/src/algorithms.rs crates/opt/src/cost.rs crates/opt/src/error.rs crates/opt/src/explain.rs crates/opt/src/improve.rs crates/opt/src/plan.rs

crates/opt/src/lib.rs:
crates/opt/src/algorithms.rs:
crates/opt/src/cost.rs:
crates/opt/src/error.rs:
crates/opt/src/explain.rs:
crates/opt/src/improve.rs:
crates/opt/src/plan.rs:
