/root/repo/target/release/deps/starshare_core-0dabaffd5b880850.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

/root/repo/target/release/deps/libstarshare_core-0dabaffd5b880850.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

/root/repo/target/release/deps/libstarshare_core-0dabaffd5b880850.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/grid.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/grid.rs:
