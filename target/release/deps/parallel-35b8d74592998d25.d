/root/repo/target/release/deps/parallel-35b8d74592998d25.d: crates/bench/src/bin/parallel.rs

/root/repo/target/release/deps/parallel-35b8d74592998d25: crates/bench/src/bin/parallel.rs

crates/bench/src/bin/parallel.rs:
