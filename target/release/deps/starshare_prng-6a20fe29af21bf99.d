/root/repo/target/release/deps/starshare_prng-6a20fe29af21bf99.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libstarshare_prng-6a20fe29af21bf99.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libstarshare_prng-6a20fe29af21bf99.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
