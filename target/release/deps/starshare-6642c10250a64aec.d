/root/repo/target/release/deps/starshare-6642c10250a64aec.d: src/lib.rs

/root/repo/target/release/deps/libstarshare-6642c10250a64aec.rlib: src/lib.rs

/root/repo/target/release/deps/libstarshare-6642c10250a64aec.rmeta: src/lib.rs

src/lib.rs:
