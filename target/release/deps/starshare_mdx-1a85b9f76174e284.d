/root/repo/target/release/deps/starshare_mdx-1a85b9f76174e284.d: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

/root/repo/target/release/deps/libstarshare_mdx-1a85b9f76174e284.rlib: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

/root/repo/target/release/deps/libstarshare_mdx-1a85b9f76174e284.rmeta: crates/mdx/src/lib.rs crates/mdx/src/ast.rs crates/mdx/src/binder.rs crates/mdx/src/generate.rs crates/mdx/src/lexer.rs crates/mdx/src/paper_queries.rs crates/mdx/src/parser.rs

crates/mdx/src/lib.rs:
crates/mdx/src/ast.rs:
crates/mdx/src/binder.rs:
crates/mdx/src/generate.rs:
crates/mdx/src/lexer.rs:
crates/mdx/src/paper_queries.rs:
crates/mdx/src/parser.rs:
