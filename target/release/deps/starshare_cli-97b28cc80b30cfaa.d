/root/repo/target/release/deps/starshare_cli-97b28cc80b30cfaa.d: src/bin/starshare-cli.rs

/root/repo/target/release/deps/starshare_cli-97b28cc80b30cfaa: src/bin/starshare-cli.rs

src/bin/starshare-cli.rs:
