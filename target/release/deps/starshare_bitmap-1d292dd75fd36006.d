/root/repo/target/release/deps/starshare_bitmap-1d292dd75fd36006.d: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

/root/repo/target/release/deps/libstarshare_bitmap-1d292dd75fd36006.rlib: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

/root/repo/target/release/deps/libstarshare_bitmap-1d292dd75fd36006.rmeta: crates/bitmap/src/lib.rs crates/bitmap/src/bitvec.rs crates/bitmap/src/index.rs crates/bitmap/src/rle.rs

crates/bitmap/src/lib.rs:
crates/bitmap/src/bitvec.rs:
crates/bitmap/src/index.rs:
crates/bitmap/src/rle.rs:
