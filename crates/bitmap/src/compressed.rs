//! Roaring-style compressed bitmaps.
//!
//! A [`CompressedBitmap`] splits the position space into 64 Ki-bit chunks
//! and stores each chunk in whichever container encodes it smallest,
//! chosen by density at build time:
//!
//! * **Array** — sorted `u16` offsets; wins when the chunk is sparse
//!   (2 bytes per set bit).
//! * **Bitset** — plain `u64` words covering the chunk's span; wins at
//!   medium density (at most 8 KiB, never larger than the plain form).
//! * **Runs** — sorted `(start, last)` inclusive `u16` pairs; wins when
//!   set bits cluster (4 bytes per run).
//!
//! The query-visible operations (`get`, `count_ones_in`, `iter_ones_in`,
//! `and`/`or`/`and_not`) match the plain [`Bitmap`] semantics bit for bit:
//! `iter_ones_in` seeks straight to the containing word/element instead of
//! scanning from zero, so morsel popcount balancing and probe-run
//! coalescing behave identically on either format. [`or_into`]
//! (CompressedBitmap::or_into) decompresses into a plain target and
//! reports the same word charge as [`Bitmap::or_assign`], keeping the
//! simulated CPU clock independent of the storage format.

use crate::bitvec::Bitmap;

/// Bits per chunk (64 Ki).
pub const CHUNK_BITS: u64 = 1 << 16;

/// One chunk's container, chosen by encoded size.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted chunk-local offsets of set bits.
    Array(Vec<u16>),
    /// Plain words covering the chunk's span (≤ 1024 words).
    Bitset(Vec<u64>),
    /// Sorted, disjoint, non-adjacent inclusive runs `(start, last)`.
    Runs(Vec<(u16, u16)>),
}

/// Which container a chunk ended up in (exposed for tests/benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    /// Sparse: sorted offset array.
    Array,
    /// Dense: plain words.
    Bitset,
    /// Clustered: run list.
    Runs,
}

/// A chunked, per-container-compressed bitmap, logically identical to a
/// plain [`Bitmap`] of the same length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedBitmap {
    len: u64,
    chunks: Vec<Container>,
}

impl CompressedBitmap {
    /// An all-zero compressed bitmap of `len` bits.
    pub fn new(len: u64) -> Self {
        CompressedBitmap {
            len,
            chunks: vec![Container::Array(Vec::new()); Self::chunks_for(len)],
        }
    }

    fn chunks_for(len: u64) -> usize {
        len.div_ceil(CHUNK_BITS) as usize
    }

    /// Bits covered by chunk `i` (the last chunk may be short).
    fn chunk_span(&self, i: usize) -> u64 {
        let base = i as u64 * CHUNK_BITS;
        (self.len - base).min(CHUNK_BITS)
    }

    /// Compresses a plain bitmap, choosing each chunk's container by size.
    pub fn from_bitmap(bm: &Bitmap) -> Self {
        let words = bm.words();
        let len = bm.len();
        let n_chunks = Self::chunks_for(len);
        let words_per_chunk = (CHUNK_BITS / 64) as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let base = c as u64 * CHUNK_BITS;
            let span = (len - base).min(CHUNK_BITS);
            let w0 = c * words_per_chunk;
            let w1 = (w0 + span.div_ceil(64) as usize).min(words.len());
            chunks.push(seal(&words[w0..w1], span));
        }
        CompressedBitmap { len, chunks }
    }

    /// Decompresses back to a plain bitmap.
    pub fn to_bitmap(&self) -> Bitmap {
        let mut bm = Bitmap::new(self.len);
        self.or_into(&mut bm);
        bm
    }

    /// Length in bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The container kind chosen for chunk `i`.
    pub fn container_kind(&self, i: usize) -> ContainerKind {
        match &self.chunks[i] {
            Container::Array(_) => ContainerKind::Array,
            Container::Bitset(_) => ContainerKind::Bitset,
            Container::Runs(_) => ContainerKind::Runs,
        }
    }

    /// Stored size in bytes: per-chunk payload (at allocated capacity, so
    /// accounting stays honest) plus a 4-byte header per chunk and a
    /// 16-byte bitmap header.
    pub fn byte_size(&self) -> u64 {
        let payload: u64 = self
            .chunks
            .iter()
            .map(|c| match c {
                Container::Array(v) => v.capacity() as u64 * 2,
                Container::Bitset(w) => w.capacity() as u64 * 8,
                Container::Runs(r) => r.capacity() as u64 * 4,
            })
            .sum();
        16 + self.chunks.len() as u64 * 4 + payload
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| match c {
                Container::Array(v) => v.len() as u64,
                Container::Bitset(w) => w.iter().map(|w| w.count_ones() as u64).sum(),
                Container::Runs(r) => r
                    .iter()
                    .map(|&(s, l)| (l as u64) - (s as u64) + 1)
                    .sum::<u64>(),
            })
            .sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.chunks.iter().all(|c| match c {
            Container::Array(v) => v.is_empty(),
            Container::Bitset(w) => w.iter().all(|&w| w == 0),
            Container::Runs(r) => r.is_empty(),
        })
    }

    /// Reads bit `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit {pos} out of range (len {})", self.len);
        let local = (pos % CHUNK_BITS) as u16;
        match &self.chunks[(pos / CHUNK_BITS) as usize] {
            Container::Array(v) => v.binary_search(&local).is_ok(),
            Container::Bitset(w) => (w[(local / 64) as usize] >> (local % 64)) & 1 == 1,
            Container::Runs(r) => match r.binary_search_by(|&(s, _)| s.cmp(&local)) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => local <= r[i - 1].1,
            },
        }
    }

    /// Extends the bitmap to `new_len` bits; new bits are zero.
    ///
    /// # Panics
    /// Panics if `new_len < len`.
    pub fn grow(&mut self, new_len: u64) {
        assert!(new_len >= self.len, "grow cannot shrink");
        self.len = new_len;
        self.chunks
            .resize(Self::chunks_for(new_len), Container::Array(Vec::new()));
    }

    /// Grows to `new_len` and sets `positions`, which must be sorted
    /// ascending and all `>= self.len()` (append-only, as index maintenance
    /// produces them). Touched chunks are re-sealed once.
    ///
    /// # Panics
    /// Panics if a position is out of order, below the old length, or at or
    /// beyond `new_len`.
    pub fn extend_with(&mut self, new_len: u64, positions: &[u64]) {
        let old_len = self.len;
        self.grow(new_len);
        let mut i = 0;
        let mut last = None;
        while i < positions.len() {
            let p = positions[i];
            assert!(p >= old_len, "extend_with position {p} below old length");
            assert!(p < new_len, "extend_with position {p} out of range");
            assert!(last.is_none_or(|l| l < p), "extend_with not ascending");
            let chunk = (p / CHUNK_BITS) as usize;
            let base = chunk as u64 * CHUNK_BITS;
            let end = base + CHUNK_BITS;
            // Decompress the chunk, set every position that lands in it,
            // then re-seal.
            let span = self.chunk_span(chunk);
            let mut words = vec![0u64; span.div_ceil(64) as usize];
            fill_words(&self.chunks[chunk], &mut words);
            while i < positions.len() && positions[i] < end {
                let p = positions[i];
                assert!(last.is_none_or(|l| l < p), "extend_with not ascending");
                last = Some(p);
                let local = p - base;
                words[(local / 64) as usize] |= 1u64 << (local % 64);
                i += 1;
            }
            self.chunks[chunk] = seal(&words, span);
        }
    }

    /// `self & other` as a new compressed bitmap.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &CompressedBitmap) -> CompressedBitmap {
        self.zip(other, |a, b| *a &= b)
    }

    /// `self | other` as a new compressed bitmap.
    pub fn or(&self, other: &CompressedBitmap) -> CompressedBitmap {
        self.zip(other, |a, b| *a |= b)
    }

    /// `self & !other` as a new compressed bitmap.
    pub fn and_not(&self, other: &CompressedBitmap) -> CompressedBitmap {
        self.zip(other, |a, b| *a &= !b)
    }

    fn zip(&self, other: &CompressedBitmap, f: impl Fn(&mut u64, u64)) -> CompressedBitmap {
        assert_eq!(
            self.len, other.len,
            "bitmap length mismatch: {} vs {}",
            self.len, other.len
        );
        let mut chunks = Vec::with_capacity(self.chunks.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..self.chunks.len() {
            let span = self.chunk_span(i);
            let n_words = span.div_ceil(64) as usize;
            a.clear();
            a.resize(n_words, 0);
            b.clear();
            b.resize(n_words, 0);
            fill_words(&self.chunks[i], &mut a);
            fill_words(&other.chunks[i], &mut b);
            for (x, &y) in a.iter_mut().zip(&b) {
                f(x, y);
            }
            // Bits past the span are zero in both inputs, and `and`/`or`/
            // `and_not` of zeros is zero, so no tail mask is needed.
            chunks.push(seal(&a, span));
        }
        CompressedBitmap {
            len: self.len,
            chunks,
        }
    }

    /// ORs this bitmap into a plain target of the same length, returning
    /// the word count charged — identical to what
    /// [`Bitmap::or_assign`] would return, so the simulated CPU cost of
    /// assembling a query bitmap does not depend on the index format.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn or_into(&self, target: &mut Bitmap) -> u64 {
        assert_eq!(
            self.len,
            target.len(),
            "bitmap length mismatch: {} vs {}",
            self.len,
            target.len()
        );
        let words_per_chunk = (CHUNK_BITS / 64) as usize;
        let words = target.words_mut();
        for (i, chunk) in self.chunks.iter().enumerate() {
            let w0 = i * words_per_chunk;
            or_words(chunk, &mut words[w0..]);
        }
        target.word_count()
    }

    /// Number of set bits in `lo..hi` (`hi` exclusive, clamped to the
    /// length), matching [`Bitmap::count_ones_in`].
    pub fn count_ones_in(&self, lo: u64, hi: u64) -> u64 {
        let hi = hi.min(self.len);
        if lo >= hi {
            return 0;
        }
        let c0 = (lo / CHUNK_BITS) as usize;
        let c1 = ((hi - 1) / CHUNK_BITS) as usize;
        let mut n = 0;
        for c in c0..=c1 {
            let base = c as u64 * CHUNK_BITS;
            let l = lo.saturating_sub(base).min(CHUNK_BITS) as u32;
            let h = (hi - base).min(CHUNK_BITS) as u32;
            n += count_in_container(&self.chunks[c], l, h);
        }
        n
    }

    /// Iterator over set bits, ascending.
    pub fn iter_ones(&self) -> CompressedOnesIter<'_> {
        self.iter_ones_in(0, self.len)
    }

    /// Iterator over set bits in `lo..hi` (ascending, `hi` exclusive,
    /// clamped to the length), matching [`Bitmap::iter_ones_in`]: seeks
    /// straight to the containing chunk and element, so a narrow range of a
    /// wide bitmap costs work proportional to the range.
    pub fn iter_ones_in(&self, lo: u64, hi: u64) -> CompressedOnesIter<'_> {
        let hi = hi.min(self.len);
        if lo >= hi {
            return CompressedOnesIter {
                bm: self,
                chunk_idx: self.chunks.len(),
                state: IterState::Exhausted,
                end: 0,
            };
        }
        let chunk_idx = (lo / CHUNK_BITS) as usize;
        let state = seek_in_container(&self.chunks[chunk_idx], (lo % CHUNK_BITS) as u32);
        CompressedOnesIter {
            bm: self,
            chunk_idx,
            state,
            end: hi,
        }
    }
}

/// Writes a container's bits into zeroed `words` (chunk-local).
fn fill_words(c: &Container, words: &mut [u64]) {
    or_words(c, words)
}

/// ORs a container's bits into `words` (chunk-local).
fn or_words(c: &Container, words: &mut [u64]) {
    match c {
        Container::Array(v) => {
            for &p in v {
                words[(p / 64) as usize] |= 1u64 << (p % 64);
            }
        }
        Container::Bitset(w) => {
            for (dst, &src) in words.iter_mut().zip(w) {
                *dst |= src;
            }
        }
        Container::Runs(r) => {
            for &(s, l) in r {
                set_range(words, s as u32, l as u32);
            }
        }
    }
}

/// Sets bits `s..=l` (chunk-local) in `words` using word masks.
fn set_range(words: &mut [u64], s: u32, l: u32) {
    let (ws, wl) = ((s / 64) as usize, (l / 64) as usize);
    let head = !0u64 << (s % 64);
    let tail = !0u64 >> (63 - l % 64);
    if ws == wl {
        words[ws] |= head & tail;
        return;
    }
    words[ws] |= head;
    for w in &mut words[ws + 1..wl] {
        *w = !0;
    }
    words[wl] |= tail;
}

/// Chooses the smallest container for a chunk given its plain words.
/// `span` is the number of bits the chunk covers.
fn seal(words: &[u64], span: u64) -> Container {
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    if ones == 0 {
        return Container::Array(Vec::new());
    }
    // Count runs: 0→1 transitions, carrying the previous word's top bit.
    let mut runs = 0u64;
    let mut carry = 0u64; // previous word's bit 63, shifted to bit 0
    for &w in words {
        runs += (w & !((w << 1) | carry)).count_ones() as u64;
        carry = w >> 63;
    }
    let array_bytes = ones * 2;
    let run_bytes = runs * 4;
    let bitset_bytes = span.div_ceil(64) * 8;
    if run_bytes <= array_bytes && run_bytes < bitset_bytes {
        let mut v = Vec::with_capacity(runs as usize);
        let mut start: Option<u32> = None;
        let mut prev: u32 = 0;
        for p in iter_word_bits(words) {
            match start {
                Some(_) if p == prev + 1 => prev = p,
                _ => {
                    if let Some(s) = start {
                        v.push((s as u16, prev as u16));
                    }
                    start = Some(p);
                    prev = p;
                }
            }
        }
        if let Some(s) = start {
            v.push((s as u16, prev as u16));
        }
        Container::Runs(v)
    } else if array_bytes < bitset_bytes {
        let mut v = Vec::with_capacity(ones as usize);
        v.extend(iter_word_bits(words).map(|p| p as u16));
        Container::Array(v)
    } else {
        let mut v = Vec::with_capacity(span.div_ceil(64) as usize);
        v.extend_from_slice(words);
        v.resize(span.div_ceil(64) as usize, 0);
        Container::Bitset(v)
    }
}

/// Iterates set-bit offsets of chunk-local words.
fn iter_word_bits(words: &[u64]) -> impl Iterator<Item = u32> + '_ {
    words.iter().enumerate().flat_map(|(i, &w)| {
        let mut w = w;
        std::iter::from_fn(move || {
            if w == 0 {
                return None;
            }
            let b = w.trailing_zeros();
            w &= w - 1;
            Some(i as u32 * 64 + b)
        })
    })
}

/// Set bits of a container in chunk-local `lo..hi` (`hi` exclusive).
fn count_in_container(c: &Container, lo: u32, hi: u32) -> u64 {
    if lo >= hi {
        return 0;
    }
    match c {
        Container::Array(v) => {
            let a = v.partition_point(|&p| (p as u32) < lo);
            let b = v.partition_point(|&p| (p as u32) < hi);
            (b - a) as u64
        }
        Container::Bitset(w) => {
            let last = hi - 1;
            let (wl, wh) = ((lo / 64) as usize, (last / 64) as usize);
            let head = !0u64 << (lo % 64);
            let tail = !0u64 >> (63 - last % 64);
            if wl == wh {
                return (w[wl] & head & tail).count_ones() as u64;
            }
            let mut n = (w[wl] & head).count_ones() as u64;
            for w in &w[wl + 1..wh] {
                n += w.count_ones() as u64;
            }
            n + (w[wh] & tail).count_ones() as u64
        }
        Container::Runs(r) => {
            let mut n = 0;
            let i = r.partition_point(|&(_, l)| (l as u32) < lo);
            for &(s, l) in &r[i..] {
                if s as u32 >= hi {
                    break;
                }
                let a = (s as u32).max(lo);
                let b = (l as u32 + 1).min(hi);
                n += (b - a) as u64;
            }
            n
        }
    }
}

/// Position within the current chunk's container.
#[derive(Debug)]
enum IterState {
    /// Next element index into an Array container.
    Array(usize),
    /// Word index + remaining masked bits of a Bitset container.
    Bitset { word: usize, current: u64 },
    /// Run index + next chunk-local offset to yield in a Runs container.
    Runs { run: usize, next: u32 },
    /// Iteration finished.
    Exhausted,
}

/// Iterator over set-bit positions of a [`CompressedBitmap`], bounded by
/// an exclusive end position.
#[derive(Debug)]
pub struct CompressedOnesIter<'a> {
    bm: &'a CompressedBitmap,
    chunk_idx: usize,
    state: IterState,
    end: u64,
}

/// Entry state for a container starting at chunk-local offset `lo`.
fn seek_in_container(c: &Container, lo: u32) -> IterState {
    match c {
        Container::Array(v) => IterState::Array(v.partition_point(|&p| (p as u32) < lo)),
        Container::Bitset(w) => {
            let word = (lo / 64) as usize;
            let current = w.get(word).copied().unwrap_or(0) & (!0u64 << (lo % 64));
            IterState::Bitset { word, current }
        }
        Container::Runs(r) => {
            let run = r.partition_point(|&(_, l)| (l as u32) < lo);
            let next = r.get(run).map_or(0, |&(s, _)| (s as u32).max(lo));
            IterState::Runs { run, next }
        }
    }
}

impl Iterator for CompressedOnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            let base = self.chunk_idx as u64 * CHUNK_BITS;
            // Yield the next chunk-local offset in the current container,
            // or None when the chunk is exhausted.
            let local = match &mut self.state {
                IterState::Exhausted => return None,
                IterState::Array(i) => {
                    let Container::Array(v) = &self.bm.chunks[self.chunk_idx] else {
                        unreachable!("iterator state desynced from container");
                    };
                    if *i < v.len() {
                        let p = v[*i] as u32;
                        *i += 1;
                        Some(p)
                    } else {
                        None
                    }
                }
                IterState::Bitset { word, current } => {
                    let Container::Bitset(w) = &self.bm.chunks[self.chunk_idx] else {
                        unreachable!("iterator state desynced from container");
                    };
                    loop {
                        if *current != 0 {
                            let b = current.trailing_zeros();
                            *current &= *current - 1;
                            break Some(*word as u32 * 64 + b);
                        }
                        *word += 1;
                        if *word >= w.len() {
                            break None;
                        }
                        *current = w[*word];
                    }
                }
                IterState::Runs { run, next } => {
                    let Container::Runs(r) = &self.bm.chunks[self.chunk_idx] else {
                        unreachable!("iterator state desynced from container");
                    };
                    if *run < r.len() {
                        let p = *next;
                        if p >= r[*run].1 as u32 {
                            *run += 1;
                            *next = r.get(*run).map_or(0, |&(s, _)| s as u32);
                        } else {
                            *next = p + 1;
                        }
                        Some(p)
                    } else {
                        None
                    }
                }
            };
            match local {
                Some(p) => {
                    let pos = base + p as u64;
                    if pos >= self.end {
                        self.state = IterState::Exhausted;
                        return None;
                    }
                    return Some(pos);
                }
                None => {
                    self.chunk_idx += 1;
                    if self.chunk_idx >= self.bm.chunks.len()
                        || self.chunk_idx as u64 * CHUNK_BITS >= self.end
                    {
                        self.state = IterState::Exhausted;
                        return None;
                    }
                    self.state = seek_in_container(&self.bm.chunks[self.chunk_idx], 0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_prng::Prng;

    /// Adversarial densities from the satellite checklist: empty, a single
    /// bit at every seam, alternating bits, dense runs — plus random mixes.
    fn adversarial_cases(len: u64) -> Vec<Vec<u64>> {
        let mut cases = vec![Vec::new()];
        // Single bit at every seam: word seams and chunk seams.
        let mut seams = Vec::new();
        for s in [0, 63, 64, 65, CHUNK_BITS - 1, CHUNK_BITS, CHUNK_BITS + 1] {
            if s < len {
                seams.push(s);
            }
        }
        if len > 0 {
            seams.push(len - 1);
        }
        for &s in &seams {
            cases.push(vec![s]);
        }
        cases.push(seams.clone());
        // Alternating bits over the first stretch.
        cases.push((0..len.min(4096)).step_by(2).collect());
        // Dense runs straddling chunk and word boundaries.
        if len > CHUNK_BITS + 200 {
            cases.push((CHUNK_BITS - 100..CHUNK_BITS + 100).collect());
        }
        cases.push((0..len.min(300)).collect());
        cases
    }

    fn build_pair(len: u64, positions: &[u64]) -> (Bitmap, CompressedBitmap) {
        let bm = Bitmap::from_positions(len, positions);
        let cb = CompressedBitmap::from_bitmap(&bm);
        (bm, cb)
    }

    #[test]
    fn roundtrip_and_counts_match_oracle() {
        for len in [0, 1, 64, 65, CHUNK_BITS, CHUNK_BITS + 1, 3 * CHUNK_BITS / 2] {
            for positions in adversarial_cases(len) {
                let (bm, cb) = build_pair(len, &positions);
                assert_eq!(cb.len(), bm.len());
                assert_eq!(cb.count_ones(), bm.count_ones());
                assert_eq!(cb.is_zero(), bm.is_zero());
                assert_eq!(cb.to_bitmap(), bm, "len {len}");
                assert_eq!(
                    cb.iter_ones().collect::<Vec<_>>(),
                    bm.iter_ones().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn get_matches_oracle_at_seams() {
        let len = 2 * CHUNK_BITS;
        for positions in adversarial_cases(len) {
            let (bm, cb) = build_pair(len, &positions);
            for s in [
                0,
                1,
                63,
                64,
                65,
                CHUNK_BITS - 1,
                CHUNK_BITS,
                CHUNK_BITS + 1,
                len - 1,
            ] {
                assert_eq!(cb.get(s), bm.get(s), "pos {s}");
            }
        }
    }

    #[test]
    fn range_ops_match_oracle_at_seams() {
        let len = 2 * CHUNK_BITS + 100;
        let bounds = [
            0,
            1,
            63,
            64,
            65,
            127,
            128,
            CHUNK_BITS - 1,
            CHUNK_BITS,
            CHUNK_BITS + 1,
            2 * CHUNK_BITS,
            len - 1,
            len,
            len + 999,
        ];
        for positions in adversarial_cases(len) {
            let (bm, cb) = build_pair(len, &positions);
            for &lo in &bounds {
                for &hi in &bounds {
                    assert_eq!(
                        cb.count_ones_in(lo, hi),
                        bm.count_ones_in(lo, hi),
                        "count {lo}..{hi}"
                    );
                    assert_eq!(
                        cb.iter_ones_in(lo, hi).collect::<Vec<_>>(),
                        bm.iter_ones_in(lo, hi).collect::<Vec<_>>(),
                        "iter {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn prop_random_ranges_match_oracle() {
        let mut rng = Prng::seed_from_u64(0xC0DE_0001);
        let len = 3 * CHUNK_BITS;
        for round in 0..24 {
            // Sweep densities from very sparse to dense.
            let n = 1usize << (round % 12);
            let positions: std::collections::BTreeSet<u64> =
                (0..n).map(|_| rng.gen_range(0..len)).collect();
            let positions: Vec<u64> = positions.into_iter().collect();
            let (bm, cb) = build_pair(len, &positions);
            assert_eq!(cb.to_bitmap(), bm);
            for _ in 0..16 {
                let lo = rng.gen_range(0..len);
                let hi = rng.gen_range(0..=len);
                assert_eq!(cb.count_ones_in(lo, hi), bm.count_ones_in(lo, hi));
                assert_eq!(
                    cb.iter_ones_in(lo, hi).collect::<Vec<_>>(),
                    bm.iter_ones_in(lo, hi).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn boolean_ops_match_oracle() {
        let mut rng = Prng::seed_from_u64(0xC0DE_0002);
        let len = CHUNK_BITS + 500;
        for round in 0..16 {
            let n = 1usize << (round % 10);
            let xs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..len)).collect();
            let ys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..len)).collect();
            let (ba, ca) = build_pair(len, &xs);
            let (bb, cb) = build_pair(len, &ys);

            let mut and = ba.clone();
            and.and_assign(&bb);
            assert_eq!(ca.and(&cb).to_bitmap(), and);

            let mut or = ba.clone();
            or.or_assign(&bb);
            assert_eq!(ca.or(&cb).to_bitmap(), or);

            let mut diff = ba.clone();
            diff.and_not_assign(&bb);
            assert_eq!(ca.and_not(&cb).to_bitmap(), diff);
        }
    }

    #[test]
    fn or_into_matches_plain_charge_and_result() {
        let len = CHUNK_BITS + 100;
        let (ba, ca) = build_pair(len, &[0, 63, 64, CHUNK_BITS - 1, CHUNK_BITS, len - 1]);
        let (_, _) = (&ba, &ca);
        let mut plain_target = Bitmap::from_positions(len, &[1, CHUNK_BITS]);
        let mut comp_target = plain_target.clone();
        let plain_words = plain_target.or_assign(&ba);
        let comp_words = ca.or_into(&mut comp_target);
        assert_eq!(comp_target, plain_target, "same bits");
        assert_eq!(comp_words, plain_words, "same simulated CPU charge");
    }

    #[test]
    fn container_choice_follows_density() {
        // Sparse scattered bits → Array.
        let sparse: Vec<u64> = (0..20).map(|i| i * 3001).collect();
        let (_, cb) = build_pair(CHUNK_BITS, &sparse);
        assert_eq!(cb.container_kind(0), ContainerKind::Array);

        // One dense run → Runs.
        let run: Vec<u64> = (1000..21000).collect();
        let (_, cb) = build_pair(CHUNK_BITS, &run);
        assert_eq!(cb.container_kind(0), ContainerKind::Runs);

        // Alternating bits everywhere → Bitset (arrays/runs both bigger).
        let alt: Vec<u64> = (0..CHUNK_BITS).step_by(2).collect();
        let (bm, cb) = build_pair(CHUNK_BITS, &alt);
        assert_eq!(cb.container_kind(0), ContainerKind::Bitset);
        // And the bitset container costs about the plain size, no more
        // than a small header over it.
        assert!(cb.byte_size() <= bm.byte_size() + 32);
    }

    #[test]
    fn compresses_clustered_bitmaps_well() {
        // A clustered member bitmap: 8 runs over a million rows.
        let mut positions = Vec::new();
        for r in 0..8u64 {
            let base = r * 125_000;
            positions.extend(base..base + 2_000);
        }
        let (bm, cb) = build_pair(1_000_000, &positions);
        assert!(
            cb.byte_size() * 4 <= bm.byte_size(),
            "clustered bitmap should compress ≥4×: {} vs {}",
            cb.byte_size(),
            bm.byte_size()
        );
        assert_eq!(cb.to_bitmap(), bm);
    }

    #[test]
    fn extend_with_appends_sorted_tail_positions() {
        let mut rng = Prng::seed_from_u64(0xC0DE_0003);
        for _ in 0..8 {
            let old_len = rng.gen_range(1..2 * CHUNK_BITS);
            let new_len = old_len + rng.gen_range(1..CHUNK_BITS);
            let head: std::collections::BTreeSet<u64> =
                (0..200).map(|_| rng.gen_range(0..old_len)).collect();
            let tail: std::collections::BTreeSet<u64> =
                (0..200).map(|_| rng.gen_range(old_len..new_len)).collect();
            let head: Vec<u64> = head.into_iter().collect();
            let tail: Vec<u64> = tail.into_iter().collect();

            let (_, mut cb) = build_pair(old_len, &head);
            cb.extend_with(new_len, &tail);

            let mut all = head.clone();
            all.extend(&tail);
            let oracle = Bitmap::from_positions(new_len, &all);
            assert_eq!(cb.to_bitmap(), oracle);
            assert_eq!(cb.len(), new_len);
        }
    }

    #[test]
    fn grow_keeps_bits_and_zero_fills() {
        let (_, mut cb) = build_pair(100, &[0, 50, 99]);
        cb.grow(CHUNK_BITS * 2 + 10);
        assert_eq!(cb.len(), CHUNK_BITS * 2 + 10);
        assert_eq!(cb.count_ones(), 3);
        assert!(!cb.get(CHUNK_BITS));
        assert!(cb.get(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        CompressedBitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = CompressedBitmap::new(10);
        let b = CompressedBitmap::new(11);
        let _ = a.and(&b);
    }

    #[test]
    #[should_panic(expected = "not ascending")]
    fn extend_with_rejects_unsorted() {
        let mut cb = CompressedBitmap::new(10);
        cb.extend_with(20, &[15, 12]);
    }
}
