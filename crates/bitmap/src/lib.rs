//! # starshare-bitmap
//!
//! Bitmap substrate for the `starshare` engine: plain bitvectors with the
//! boolean algebra the paper's index-based star join needs (§3.2), and
//! **bitmap join indexes** that map a dimension attribute at any hierarchy
//! level to the positions of matching fact-table tuples.
//!
//! Everything an operator does with a bitmap is counted: word-wise boolean
//! ops return the number of 64-bit words processed and index lookups charge
//! page reads through the buffer pool, so the simulated clock sees bitmap
//! work at the same fidelity it sees scans and probes.

pub mod bitvec;
pub mod compressed;
pub mod index;
pub mod rle;

pub use bitvec::Bitmap;
pub use compressed::{CompressedBitmap, ContainerKind, CHUNK_BITS};
pub use index::{BitmapJoinIndex, IndexFormat, MemberBits};
pub use rle::RleBitmap;
