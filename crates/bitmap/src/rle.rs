//! Run-length encoded bitmaps.
//!
//! [`RleBitmap`] stores a bitmap as sorted, disjoint, non-adjacent runs of
//! set bits. Join-index bitmaps over clustered fact tables are highly
//! run-compressible, so this is the storage format a production deployment
//! would use for the on-disk index; the engine's operators work on the
//! uncompressed [`Bitmap`] form and this module provides lossless
//! conversion plus the size accounting a cost model needs to compare the
//! two representations. (The paper assumes plain bitmaps; RLE is an
//! extension, used by the index-size ablation bench.)

use crate::bitvec::Bitmap;

/// A run of consecutive set bits: positions `start .. start + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First set position.
    pub start: u64,
    /// Number of consecutive set bits (always ≥ 1).
    pub len: u64,
}

/// A run-length encoded bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitmap {
    len: u64,
    runs: Vec<Run>,
}

impl RleBitmap {
    /// Compresses a plain bitmap.
    pub fn from_bitmap(bm: &Bitmap) -> Self {
        let mut runs = Vec::new();
        let mut current: Option<Run> = None;
        for pos in bm.iter_ones() {
            match current.as_mut() {
                Some(r) if r.start + r.len == pos => r.len += 1,
                _ => {
                    if let Some(r) = current.take() {
                        runs.push(r);
                    }
                    current = Some(Run { start: pos, len: 1 });
                }
            }
        }
        if let Some(r) = current {
            runs.push(r);
        }
        RleBitmap {
            len: bm.len(),
            runs,
        }
    }

    /// Decompresses back to a plain bitmap.
    pub fn to_bitmap(&self) -> Bitmap {
        let mut bm = Bitmap::new(self.len);
        for r in &self.runs {
            for p in r.start..r.start + r.len {
                bm.set(p);
            }
        }
        bm
    }

    /// Length in bits of the represented bitmap.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the represented bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Set bits.
    pub fn count_ones(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Stored size: 16 bytes per run (two u64s).
    pub fn byte_size(&self) -> u64 {
        self.runs.len() as u64 * 16
    }

    /// Whether RLE is smaller than the uncompressed form.
    pub fn is_smaller_than_plain(&self) -> bool {
        self.byte_size() < self.len.div_ceil(64) * 8
    }

    /// The runs, sorted and disjoint.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Membership test by binary search over runs.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit {pos} out of range (len {})", self.len);
        match self.runs.binary_search_by(|r| r.start.cmp(&pos)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => {
                let r = self.runs[i - 1];
                pos < r.start + r.len
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_prng::Prng;

    #[test]
    fn dense_bitmap_compresses_to_one_run() {
        let bm = Bitmap::ones(1000);
        let rle = RleBitmap::from_bitmap(&bm);
        assert_eq!(rle.run_count(), 1);
        assert_eq!(rle.count_ones(), 1000);
        assert!(rle.is_smaller_than_plain());
        assert_eq!(rle.to_bitmap(), bm);
    }

    #[test]
    fn alternating_bits_do_not_compress() {
        let positions: Vec<u64> = (0..500).map(|i| i * 2).collect();
        let bm = Bitmap::from_positions(1000, &positions);
        let rle = RleBitmap::from_bitmap(&bm);
        assert_eq!(rle.run_count(), 500);
        assert!(!rle.is_smaller_than_plain());
        assert_eq!(rle.to_bitmap(), bm);
    }

    #[test]
    fn empty_and_zero() {
        let rle = RleBitmap::from_bitmap(&Bitmap::new(0));
        assert!(rle.is_empty());
        assert_eq!(rle.run_count(), 0);
        let rle2 = RleBitmap::from_bitmap(&Bitmap::new(100));
        assert_eq!(rle2.count_ones(), 0);
        assert_eq!(rle2.to_bitmap(), Bitmap::new(100));
    }

    #[test]
    fn get_checks_membership() {
        let bm = Bitmap::from_positions(100, &[3, 4, 5, 50, 99]);
        let rle = RleBitmap::from_bitmap(&bm);
        assert_eq!(rle.run_count(), 3);
        for p in 0..100 {
            assert_eq!(rle.get(p), bm.get(p), "position {p}");
        }
    }

    #[test]
    fn runs_are_sorted_disjoint_nonadjacent() {
        let bm = Bitmap::from_positions(64, &[0, 1, 2, 10, 11, 63]);
        let rle = RleBitmap::from_bitmap(&bm);
        let rs = rle.runs();
        assert_eq!(rs.len(), 3);
        for w in rs.windows(2) {
            assert!(w[0].start + w[0].len < w[1].start);
        }
    }

    #[test]
    fn prop_rle_roundtrip() {
        let mut rng = Prng::seed_from_u64(0x0B17_0005);
        for _ in 0..64 {
            let len = rng.gen_range(0usize..=120);
            let xs: std::collections::BTreeSet<u64> =
                (0..len).map(|_| rng.gen_range(0u64..400)).collect();
            let bm = Bitmap::from_positions(400, &xs.iter().copied().collect::<Vec<_>>());
            let rle = RleBitmap::from_bitmap(&bm);
            assert_eq!(rle.to_bitmap(), bm.clone());
            assert_eq!(rle.count_ones(), bm.count_ones());
            for p in xs {
                assert!(rle.get(p));
            }
        }
    }
}
