//! Bitmap join indexes.
//!
//! A [`BitmapJoinIndex`] is built on one dimension attribute of a stored
//! table, *at a chosen hierarchy level*: for every member of that level it
//! holds a bitmap over the table's tuple positions, with bit `p` set iff
//! tuple `p`'s dimension key rolls up to that member. This is the paper's
//! "join bitmap index built on each attribute A, B, and C of the base table"
//! (§3.2): the index already encodes the fact↔dimension join, so a
//! selection predicate `A' IN (a1, a2)` becomes an OR of two stored bitmaps.
//!
//! The index occupies pages in its own virtual file; [`lookup`] charges
//! those page reads through the buffer pool, so repeated lookups of a hot
//! bitmap hit cache exactly as they would in the real system.
//!
//! [`lookup`]: BitmapJoinIndex::lookup

use std::collections::BTreeMap;

use starshare_storage::{AccessKind, BufferPool, FileId, HeapFile, PageId, PAGE_SIZE};

use crate::bitvec::Bitmap;
use crate::rle::RleBitmap;

/// How member bitmaps are stored on "disk" (page accounting); in memory the
/// operators always work on the uncompressed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexFormat {
    /// One plain bitmap per member: `n_rows / 8` bytes each.
    #[default]
    Plain,
    /// Per member, the smaller of the plain and the run-length encoded
    /// form (16 bytes per run) — what a production deployment would store.
    /// Lowers the index-load I/O for clustered or skewed data.
    Compressed,
}

/// A bitmap join index over one dimension attribute of one table.
#[derive(Debug, Clone)]
pub struct BitmapJoinIndex {
    name: String,
    file_id: FileId,
    n_rows: u64,
    format: IndexFormat,
    /// member id → bitmap of matching tuple positions. BTreeMap keeps
    /// member/page assignment deterministic.
    bitmaps: BTreeMap<u32, Bitmap>,
    /// member id → (first page, page count) inside `file_id`.
    page_ranges: BTreeMap<u32, (PageId, u32)>,
    total_pages: u32,
}

impl BitmapJoinIndex {
    /// Builds a [`IndexFormat::Plain`] index on dimension column `dim` of
    /// `heap`.
    ///
    /// `roll_up` maps the stored dimension key to the member id at the
    /// indexed level (the identity closure indexes the stored level itself).
    /// Building reads the table raw — index construction is load-time work,
    /// not charged to query clocks.
    pub fn build<F>(
        name: impl Into<String>,
        file_id: FileId,
        heap: &HeapFile,
        dim: usize,
        roll_up: F,
    ) -> Self
    where
        F: Fn(u32) -> u32,
    {
        Self::build_with_format(name, file_id, heap, dim, IndexFormat::Plain, roll_up)
    }

    /// Builds an index with an explicit storage format.
    pub fn build_with_format<F>(
        name: impl Into<String>,
        file_id: FileId,
        heap: &HeapFile,
        dim: usize,
        format: IndexFormat,
        roll_up: F,
    ) -> Self
    where
        F: Fn(u32) -> u32,
    {
        let n_rows = heap.n_tuples();
        let mut bitmaps: BTreeMap<u32, Bitmap> = BTreeMap::new();
        let mut keys = vec![0u32; heap.layout().n_dims()];
        for pos in 0..n_rows {
            heap.read_at(pos, &mut keys);
            let member = roll_up(keys[dim]);
            bitmaps
                .entry(member)
                .or_insert_with(|| Bitmap::new(n_rows))
                .set(pos);
        }
        // Lay the bitmaps out on consecutive pages for I/O accounting.
        let mut page_ranges = BTreeMap::new();
        let mut next_page: PageId = 0;
        for (&member, bm) in &bitmaps {
            let bytes = match format {
                IndexFormat::Plain => bm.byte_size(),
                IndexFormat::Compressed => {
                    bm.byte_size().min(RleBitmap::from_bitmap(bm).byte_size())
                }
            };
            let pages = (bytes.div_ceil(PAGE_SIZE as u64)).max(1) as u32;
            page_ranges.insert(member, (next_page, pages));
            next_page += pages;
        }
        BitmapJoinIndex {
            name: name.into(),
            file_id,
            n_rows,
            format,
            bitmaps,
            page_ranges,
            total_pages: next_page,
        }
    }

    /// The storage format.
    pub fn format(&self) -> IndexFormat {
        self.format
    }

    /// Index name, e.g. `"ABCD.A'"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The virtual file holding the index.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Rows of the indexed table (= bits per bitmap).
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Distinct members indexed.
    pub fn n_members(&self) -> usize {
        self.bitmaps.len()
    }

    /// Total pages the index occupies.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Members present in the index, ascending.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.bitmaps.keys().copied()
    }

    /// Fetches the bitmap for `member`, charging its pages as sequential
    /// reads through `pool`. Returns `None` for a member with no rows.
    pub fn lookup(&self, member: u32, pool: &mut BufferPool) -> Option<&Bitmap> {
        let bm = self.bitmaps.get(&member)?;
        let (first, count) = self.page_ranges[&member];
        for p in first..first + count {
            pool.access(self.file_id, p, AccessKind::Sequential);
        }
        Some(bm)
    }

    /// Fault-checked variant of [`lookup`](Self::lookup): each index page
    /// access goes through [`BufferPool::try_access`], so an armed fault
    /// injector can deny the load. Pages read before the denial stay
    /// charged (they really were read); a retry re-touches them as pool
    /// hits, leaving residency — and therefore the answer — unchanged.
    pub fn try_lookup(
        &self,
        member: u32,
        pool: &mut BufferPool,
    ) -> Result<Option<&Bitmap>, starshare_storage::FaultError> {
        let Some(bm) = self.bitmaps.get(&member) else {
            return Ok(None);
        };
        let (first, count) = self.page_ranges[&member];
        for p in first..first + count {
            pool.try_access(self.file_id, p, AccessKind::Sequential)?;
        }
        Ok(Some(bm))
    }

    /// Unaccounted access (tests, planning-time size inspection).
    pub fn peek(&self, member: u32) -> Option<&Bitmap> {
        self.bitmaps.get(&member)
    }

    /// Pages that [`lookup`](Self::lookup) of `member` would touch.
    pub fn lookup_pages(&self, member: u32) -> u32 {
        self.page_ranges.get(&member).map_or(0, |&(_, c)| c)
    }

    /// Incrementally extends the index over rows appended to `heap` since
    /// the index covered `self.n_rows()` rows: grows every member bitmap
    /// and indexes the new tail, then recomputes the page layout.
    ///
    /// # Panics
    /// Panics if the heap has fewer rows than the index already covers.
    pub fn extend<F>(&mut self, heap: &HeapFile, dim: usize, roll_up: F)
    where
        F: Fn(u32) -> u32,
    {
        let new_rows = heap.n_tuples();
        assert!(
            new_rows >= self.n_rows,
            "heap shrank below the indexed row count"
        );
        for bm in self.bitmaps.values_mut() {
            bm.grow(new_rows);
        }
        let mut keys = vec![0u32; heap.layout().n_dims()];
        for pos in self.n_rows..new_rows {
            heap.read_at(pos, &mut keys);
            let member = roll_up(keys[dim]);
            self.bitmaps
                .entry(member)
                .or_insert_with(|| Bitmap::new(new_rows))
                .set(pos);
        }
        self.n_rows = new_rows;
        // Re-lay pages (sizes changed).
        let mut next_page: PageId = 0;
        self.page_ranges.clear();
        for (&member, bm) in &self.bitmaps {
            let bytes = match self.format {
                IndexFormat::Plain => bm.byte_size(),
                IndexFormat::Compressed => {
                    bm.byte_size().min(RleBitmap::from_bitmap(bm).byte_size())
                }
            };
            let pages = (bytes.div_ceil(PAGE_SIZE as u64)).max(1) as u32;
            self.page_ranges.insert(member, (next_page, pages));
            next_page += pages;
        }
        self.total_pages = next_page;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_storage::TupleLayout;

    /// A tiny table: dim0 cycles 0..4, dim1 = pos % 3.
    fn test_heap(n: u64) -> HeapFile {
        HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(2),
            (0..n).map(|i| ([(i % 4) as u32, (i % 3) as u32], i as f64)),
        )
    }

    #[test]
    fn index_positions_are_exact() {
        let heap = test_heap(20);
        let idx = BitmapJoinIndex::build("t.d0", FileId(100), &heap, 0, |k| k);
        assert_eq!(idx.n_members(), 4);
        assert_eq!(idx.n_rows(), 20);
        let bm = idx.peek(1).unwrap();
        let expect: Vec<u64> = (0..20).filter(|p| p % 4 == 1).collect();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn roll_up_groups_members() {
        let heap = test_heap(20);
        // Roll keys 0..4 up to 2 parents: {0,1}→0, {2,3}→1.
        let idx = BitmapJoinIndex::build("t.d0'", FileId(100), &heap, 0, |k| k / 2);
        assert_eq!(idx.n_members(), 2);
        let bm = idx.peek(0).unwrap();
        let expect: Vec<u64> = (0..20).filter(|p| p % 4 <= 1).collect();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
        // Each row appears in exactly one member bitmap.
        let total: u64 = idx
            .members()
            .map(|m| idx.peek(m).unwrap().count_ones())
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn lookup_charges_pages_and_caches() {
        let heap = test_heap(1000);
        let idx = BitmapJoinIndex::build("t.d1", FileId(7), &heap, 1, |k| k);
        let mut pool = BufferPool::new(64);
        let before = pool.stats();
        idx.lookup(0, &mut pool).unwrap();
        let d1 = pool.stats().since(&before);
        assert_eq!(d1.seq_faults as u32, idx.lookup_pages(0));
        assert!(d1.seq_faults >= 1);
        // Second lookup hits the pool.
        let snap = pool.stats();
        idx.lookup(0, &mut pool).unwrap();
        let d2 = pool.stats().since(&snap);
        assert_eq!(d2.seq_faults, 0);
        assert_eq!(d2.hits as u32, idx.lookup_pages(0));
    }

    #[test]
    fn missing_member_returns_none() {
        let heap = test_heap(10);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut pool = BufferPool::new(8);
        assert!(idx.lookup(99, &mut pool).is_none());
        assert_eq!(pool.stats().accesses(), 0);
        assert_eq!(idx.lookup_pages(99), 0);
    }

    #[test]
    fn distinct_members_get_distinct_pages() {
        let heap = test_heap(100);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut pool = BufferPool::new(64);
        idx.lookup(0, &mut pool);
        let snap = pool.stats();
        idx.lookup(1, &mut pool);
        // Different member → different pages → faults, not hits.
        let d = pool.stats().since(&snap);
        assert!(d.seq_faults > 0);
        assert_eq!(d.hits, 0);
        assert_eq!(idx.total_pages(), 4);
    }

    #[test]
    fn or_of_all_members_covers_table() {
        let heap = test_heap(37);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut acc = Bitmap::new(37);
        for m in idx.members().collect::<Vec<_>>() {
            acc.or_assign(idx.peek(m).unwrap());
        }
        assert_eq!(acc.count_ones(), 37);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;
    use starshare_storage::TupleLayout;

    /// Heavily clustered data: dim0 is sorted runs → RLE wins massively.
    fn clustered_heap(n: u64) -> HeapFile {
        HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(1),
            (0..n).map(|i| ([(i / (n / 4)) as u32], 1.0)),
        )
    }

    #[test]
    fn compressed_format_shrinks_clustered_indexes() {
        let heap = clustered_heap(100_000);
        let plain =
            BitmapJoinIndex::build_with_format("p", FileId(1), &heap, 0, IndexFormat::Plain, |k| k);
        let rle = BitmapJoinIndex::build_with_format(
            "c",
            FileId(2),
            &heap,
            0,
            IndexFormat::Compressed,
            |k| k,
        );
        assert_eq!(plain.format(), IndexFormat::Plain);
        assert_eq!(rle.format(), IndexFormat::Compressed);
        assert!(
            rle.total_pages() < plain.total_pages(),
            "rle {} vs plain {}",
            rle.total_pages(),
            plain.total_pages()
        );
        // Same logical content regardless of format.
        for m in plain.members().collect::<Vec<_>>() {
            assert_eq!(plain.peek(m), rle.peek(m));
        }
        // Lookups charge fewer pages.
        let mut pool = BufferPool::new(1024);
        rle.lookup(0, &mut pool).unwrap();
        let rle_faults = pool.stats().seq_faults;
        let mut pool2 = BufferPool::new(1024);
        plain.lookup(0, &mut pool2).unwrap();
        assert!(rle_faults < pool2.stats().seq_faults);
    }

    #[test]
    fn compressed_never_larger_than_plain() {
        // Random-ish data: RLE falls back to the plain size per member.
        let heap = HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(1),
            (0..10_000u64).map(|i| ([(i % 7) as u32], 1.0)),
        );
        let plain =
            BitmapJoinIndex::build_with_format("p", FileId(1), &heap, 0, IndexFormat::Plain, |k| k);
        let rle = BitmapJoinIndex::build_with_format(
            "c",
            FileId(2),
            &heap,
            0,
            IndexFormat::Compressed,
            |k| k,
        );
        assert!(rle.total_pages() <= plain.total_pages());
    }
}
