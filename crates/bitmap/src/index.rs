//! Bitmap join indexes.
//!
//! A [`BitmapJoinIndex`] is built on one dimension attribute of a stored
//! table, *at a chosen hierarchy level*: for every member of that level it
//! holds a bitmap over the table's tuple positions, with bit `p` set iff
//! tuple `p`'s dimension key rolls up to that member. This is the paper's
//! "join bitmap index built on each attribute A, B, and C of the base table"
//! (§3.2): the index already encodes the fact↔dimension join, so a
//! selection predicate `A' IN (a1, a2)` becomes an OR of two stored bitmaps.
//!
//! The index occupies pages in its own virtual file; [`lookup`] charges
//! those page reads through the buffer pool, so repeated lookups of a hot
//! bitmap hit cache exactly as they would in the real system. Under
//! [`IndexFormat::Compressed`] each member is stored as a
//! [`CompressedBitmap`] when that is smaller than the plain form, and both
//! the page layout and the charged I/O shrink accordingly; the
//! [`MemberBits`] handle a lookup returns hides the format from operators
//! and charges identical CPU either way.
//!
//! [`lookup`]: BitmapJoinIndex::lookup

use std::collections::BTreeMap;

use starshare_storage::{AccessKind, BufferPool, FileId, HeapFile, PageId, PAGE_SIZE};

use crate::bitvec::Bitmap;
use crate::compressed::CompressedBitmap;

/// How member bitmaps are stored (page accounting *and* in-memory form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexFormat {
    /// One plain bitmap per member: `n_rows / 8` bytes each.
    #[default]
    Plain,
    /// Per member, the smaller of the plain and the chunked-container
    /// compressed form ([`CompressedBitmap`]) — what a production
    /// deployment would store. Lowers both the resident footprint and the
    /// index-load I/O for clustered or skewed data.
    Compressed,
}

/// One member's stored bitmap, in whichever form the format chose.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MemberSlot {
    Plain(Bitmap),
    Compressed(CompressedBitmap),
}

impl MemberSlot {
    fn byte_size(&self) -> u64 {
        match self {
            MemberSlot::Plain(bm) => bm.byte_size(),
            MemberSlot::Compressed(cb) => cb.byte_size(),
        }
    }
}

/// A borrowed view of one member's bitmap, independent of storage format.
///
/// Operators consume this instead of `&Bitmap` so the simulated CPU charge
/// of assembling a query bitmap ([`or_into`](Self::or_into)) is identical
/// whether the member was stored plain or compressed — only the *I/O*
/// accounting (pages charged by [`BitmapJoinIndex::lookup`]) differs.
#[derive(Debug, Clone, Copy)]
pub enum MemberBits<'a> {
    /// Stored uncompressed.
    Plain(&'a Bitmap),
    /// Stored in chunked-container compressed form.
    Compressed(&'a CompressedBitmap),
}

impl MemberBits<'_> {
    /// Bits in the member bitmap (= rows of the indexed table).
    pub fn len(&self) -> u64 {
        match self {
            MemberBits::Plain(bm) => bm.len(),
            MemberBits::Compressed(cb) => cb.len(),
        }
    }

    /// True if the bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        match self {
            MemberBits::Plain(bm) => bm.count_ones(),
            MemberBits::Compressed(cb) => cb.count_ones(),
        }
    }

    /// Reads bit `pos`.
    pub fn get(&self, pos: u64) -> bool {
        match self {
            MemberBits::Plain(bm) => bm.get(pos),
            MemberBits::Compressed(cb) => cb.get(pos),
        }
    }

    /// ORs this member into a plain accumulator, returning the words to
    /// charge the simulated clock. Both arms report the accumulator's full
    /// word count — exactly what [`Bitmap::or_assign`] reports — so query
    /// CPU counters do not depend on the index storage format.
    pub fn or_into(&self, target: &mut Bitmap) -> u64 {
        match self {
            MemberBits::Plain(bm) => target.or_assign(bm),
            MemberBits::Compressed(cb) => cb.or_into(target),
        }
    }

    /// Materializes a plain copy (tests, persistence checks).
    pub fn to_bitmap(&self) -> Bitmap {
        match self {
            MemberBits::Plain(bm) => (*bm).clone(),
            MemberBits::Compressed(cb) => cb.to_bitmap(),
        }
    }

    /// Set-bit positions, ascending.
    pub fn iter_ones(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            MemberBits::Plain(bm) => Box::new(bm.iter_ones()),
            MemberBits::Compressed(cb) => Box::new(cb.iter_ones()),
        }
    }
}

/// Logical equality: two member views are equal iff they hold the same
/// bits, regardless of storage format.
impl PartialEq for MemberBits<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MemberBits::Plain(a), MemberBits::Plain(b)) => a == b,
            (MemberBits::Compressed(a), MemberBits::Compressed(b)) => a == b,
            (a, b) => {
                a.len() == b.len()
                    && a.count_ones() == b.count_ones()
                    && a.to_bitmap() == b.to_bitmap()
            }
        }
    }
}

/// A bitmap join index over one dimension attribute of one table.
#[derive(Debug, Clone)]
pub struct BitmapJoinIndex {
    name: String,
    file_id: FileId,
    n_rows: u64,
    format: IndexFormat,
    /// member id → stored bitmap of matching tuple positions. BTreeMap
    /// keeps member/page assignment deterministic.
    bitmaps: BTreeMap<u32, MemberSlot>,
    /// member id → (first page, page count) inside `file_id`.
    page_ranges: BTreeMap<u32, (PageId, u32)>,
    total_pages: u32,
}

impl BitmapJoinIndex {
    /// Builds a [`IndexFormat::Plain`] index on dimension column `dim` of
    /// `heap`.
    ///
    /// `roll_up` maps the stored dimension key to the member id at the
    /// indexed level (the identity closure indexes the stored level itself).
    /// Building reads the table raw — index construction is load-time work,
    /// not charged to query clocks.
    pub fn build<F>(
        name: impl Into<String>,
        file_id: FileId,
        heap: &HeapFile,
        dim: usize,
        roll_up: F,
    ) -> Self
    where
        F: Fn(u32) -> u32,
    {
        Self::build_with_format(name, file_id, heap, dim, IndexFormat::Plain, roll_up)
    }

    /// Builds an index with an explicit storage format.
    pub fn build_with_format<F>(
        name: impl Into<String>,
        file_id: FileId,
        heap: &HeapFile,
        dim: usize,
        format: IndexFormat,
        roll_up: F,
    ) -> Self
    where
        F: Fn(u32) -> u32,
    {
        let n_rows = heap.n_tuples();
        let mut plain: BTreeMap<u32, Bitmap> = BTreeMap::new();
        let mut keys = vec![0u32; heap.layout().n_dims()];
        for pos in 0..n_rows {
            heap.read_at(pos, &mut keys);
            let member = roll_up(keys[dim]);
            plain
                .entry(member)
                .or_insert_with(|| Bitmap::new(n_rows))
                .set(pos);
        }
        let mut idx = BitmapJoinIndex {
            name: name.into(),
            file_id,
            n_rows,
            format,
            bitmaps: plain
                .into_iter()
                .map(|(m, bm)| (m, MemberSlot::Plain(bm)))
                .collect(),
            page_ranges: BTreeMap::new(),
            total_pages: 0,
        };
        idx.reseal_and_relayout();
        idx
    }

    /// Re-chooses each member's storage form for the index format, shrinks
    /// allocations to fit, and lays the members out on consecutive pages.
    ///
    /// The form choice depends only on the member's bit content and the
    /// bitmap length, so a freshly built index and an incrementally
    /// [`extend`](Self::extend)ed one over the same data produce identical
    /// layouts (and therefore identical charged I/O).
    fn reseal_and_relayout(&mut self) {
        for slot in self.bitmaps.values_mut() {
            match self.format {
                IndexFormat::Plain => {
                    if let MemberSlot::Plain(bm) = slot {
                        bm.shrink_to_fit();
                    }
                }
                IndexFormat::Compressed => match slot {
                    MemberSlot::Plain(bm) => {
                        bm.shrink_to_fit();
                        let cb = CompressedBitmap::from_bitmap(bm);
                        if cb.byte_size() < bm.byte_size() {
                            *slot = MemberSlot::Compressed(cb);
                        }
                    }
                    MemberSlot::Compressed(cb) => {
                        let plain_bytes = cb.len().div_ceil(64) * 8;
                        if cb.byte_size() >= plain_bytes {
                            let mut bm = cb.to_bitmap();
                            bm.shrink_to_fit();
                            *slot = MemberSlot::Plain(bm);
                        }
                    }
                },
            }
        }
        let mut next_page: PageId = 0;
        self.page_ranges.clear();
        for (&member, slot) in &self.bitmaps {
            let pages = (slot.byte_size().div_ceil(PAGE_SIZE as u64)).max(1) as u32;
            self.page_ranges.insert(member, (next_page, pages));
            next_page += pages;
        }
        self.total_pages = next_page;
    }

    /// The storage format.
    pub fn format(&self) -> IndexFormat {
        self.format
    }

    /// Index name, e.g. `"ABCD.A'"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The virtual file holding the index.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Rows of the indexed table (= bits per bitmap).
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Distinct members indexed.
    pub fn n_members(&self) -> usize {
        self.bitmaps.len()
    }

    /// Total pages the index occupies.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Stored bytes across all members (the compressed footprint under
    /// [`IndexFormat::Compressed`]).
    pub fn byte_size(&self) -> u64 {
        self.bitmaps.values().map(|s| s.byte_size()).sum()
    }

    /// Members present in the index, ascending.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.bitmaps.keys().copied()
    }

    /// Members stored in compressed form (0 for plain indexes).
    pub fn compressed_members(&self) -> usize {
        self.bitmaps
            .values()
            .filter(|s| matches!(s, MemberSlot::Compressed(_)))
            .count()
    }

    /// Fetches the bitmap for `member`, charging its pages as sequential
    /// reads through `pool`. Returns `None` for a member with no rows.
    /// Compressed members occupy fewer pages, so the charge shrinks with
    /// the stored size.
    pub fn lookup(&self, member: u32, pool: &mut BufferPool) -> Option<MemberBits<'_>> {
        let slot = self.bitmaps.get(&member)?;
        let (first, count) = self.page_ranges[&member];
        for p in first..first + count {
            pool.access(self.file_id, p, AccessKind::Sequential);
        }
        Some(slot_bits(slot))
    }

    /// Fault-checked variant of [`lookup`](Self::lookup): each index page
    /// access goes through [`BufferPool::try_access`], so an armed fault
    /// injector can deny the load. Pages read before the denial stay
    /// charged (they really were read); a retry re-touches them as pool
    /// hits, leaving residency — and therefore the answer — unchanged.
    pub fn try_lookup(
        &self,
        member: u32,
        pool: &mut BufferPool,
    ) -> Result<Option<MemberBits<'_>>, starshare_storage::FaultError> {
        let Some(slot) = self.bitmaps.get(&member) else {
            return Ok(None);
        };
        let (first, count) = self.page_ranges[&member];
        for p in first..first + count {
            pool.try_access(self.file_id, p, AccessKind::Sequential)?;
        }
        Ok(Some(slot_bits(slot)))
    }

    /// Unaccounted access (tests, planning-time size inspection).
    pub fn peek(&self, member: u32) -> Option<MemberBits<'_>> {
        self.bitmaps.get(&member).map(slot_bits)
    }

    /// Pages that [`lookup`](Self::lookup) of `member` would touch.
    pub fn lookup_pages(&self, member: u32) -> u32 {
        self.page_ranges.get(&member).map_or(0, |&(_, c)| c)
    }

    /// Incrementally extends the index over rows appended to `heap` since
    /// the index covered `self.n_rows()` rows: grows every member bitmap
    /// and indexes the new tail, then re-chooses storage forms and
    /// recomputes the page layout. The result is identical to rebuilding
    /// from scratch.
    ///
    /// # Panics
    /// Panics if the heap has fewer rows than the index already covers.
    pub fn extend<F>(&mut self, heap: &HeapFile, dim: usize, roll_up: F)
    where
        F: Fn(u32) -> u32,
    {
        let new_rows = heap.n_tuples();
        assert!(
            new_rows >= self.n_rows,
            "heap shrank below the indexed row count"
        );
        // Collect the tail's positions per member (ascending by
        // construction), so compressed members can bulk-append.
        let mut tail: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        let mut keys = vec![0u32; heap.layout().n_dims()];
        for pos in self.n_rows..new_rows {
            heap.read_at(pos, &mut keys);
            tail.entry(roll_up(keys[dim])).or_default().push(pos);
        }
        for slot in self.bitmaps.values_mut() {
            if let MemberSlot::Plain(bm) = slot {
                bm.grow(new_rows);
            }
        }
        for (member, positions) in tail {
            match self
                .bitmaps
                .entry(member)
                .or_insert_with(|| MemberSlot::Plain(Bitmap::new(new_rows)))
            {
                MemberSlot::Plain(bm) => {
                    for &p in &positions {
                        bm.set(p);
                    }
                }
                // extend_with grows the bitmap itself (its append-only
                // check needs the pre-growth length).
                MemberSlot::Compressed(cb) => cb.extend_with(new_rows, &positions),
            }
        }
        // Compressed members with no tail rows still need to cover the new
        // length.
        for slot in self.bitmaps.values_mut() {
            if let MemberSlot::Compressed(cb) = slot {
                if cb.len() < new_rows {
                    cb.grow(new_rows);
                }
            }
        }
        self.n_rows = new_rows;
        self.reseal_and_relayout();
    }
}

fn slot_bits(slot: &MemberSlot) -> MemberBits<'_> {
    match slot {
        MemberSlot::Plain(bm) => MemberBits::Plain(bm),
        MemberSlot::Compressed(cb) => MemberBits::Compressed(cb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_storage::TupleLayout;

    /// A tiny table: dim0 cycles 0..4, dim1 = pos % 3.
    fn test_heap(n: u64) -> HeapFile {
        HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(2),
            (0..n).map(|i| ([(i % 4) as u32, (i % 3) as u32], i as f64)),
        )
    }

    #[test]
    fn index_positions_are_exact() {
        let heap = test_heap(20);
        let idx = BitmapJoinIndex::build("t.d0", FileId(100), &heap, 0, |k| k);
        assert_eq!(idx.n_members(), 4);
        assert_eq!(idx.n_rows(), 20);
        let bm = idx.peek(1).unwrap();
        let expect: Vec<u64> = (0..20).filter(|p| p % 4 == 1).collect();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn roll_up_groups_members() {
        let heap = test_heap(20);
        // Roll keys 0..4 up to 2 parents: {0,1}→0, {2,3}→1.
        let idx = BitmapJoinIndex::build("t.d0'", FileId(100), &heap, 0, |k| k / 2);
        assert_eq!(idx.n_members(), 2);
        let bm = idx.peek(0).unwrap();
        let expect: Vec<u64> = (0..20).filter(|p| p % 4 <= 1).collect();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), expect);
        // Each row appears in exactly one member bitmap.
        let total: u64 = idx
            .members()
            .map(|m| idx.peek(m).unwrap().count_ones())
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn lookup_charges_pages_and_caches() {
        let heap = test_heap(1000);
        let idx = BitmapJoinIndex::build("t.d1", FileId(7), &heap, 1, |k| k);
        let mut pool = BufferPool::new(64);
        let before = pool.stats();
        idx.lookup(0, &mut pool).unwrap();
        let d1 = pool.stats().since(&before);
        assert_eq!(d1.seq_faults as u32, idx.lookup_pages(0));
        assert!(d1.seq_faults >= 1);
        // Second lookup hits the pool.
        let snap = pool.stats();
        idx.lookup(0, &mut pool).unwrap();
        let d2 = pool.stats().since(&snap);
        assert_eq!(d2.seq_faults, 0);
        assert_eq!(d2.hits as u32, idx.lookup_pages(0));
    }

    #[test]
    fn missing_member_returns_none() {
        let heap = test_heap(10);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut pool = BufferPool::new(8);
        assert!(idx.lookup(99, &mut pool).is_none());
        assert_eq!(pool.stats().accesses(), 0);
        assert_eq!(idx.lookup_pages(99), 0);
    }

    #[test]
    fn distinct_members_get_distinct_pages() {
        let heap = test_heap(100);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut pool = BufferPool::new(64);
        idx.lookup(0, &mut pool);
        let snap = pool.stats();
        idx.lookup(1, &mut pool);
        // Different member → different pages → faults, not hits.
        let d = pool.stats().since(&snap);
        assert!(d.seq_faults > 0);
        assert_eq!(d.hits, 0);
        assert_eq!(idx.total_pages(), 4);
    }

    #[test]
    fn or_of_all_members_covers_table() {
        let heap = test_heap(37);
        let idx = BitmapJoinIndex::build("t.d0", FileId(1), &heap, 0, |k| k);
        let mut acc = Bitmap::new(37);
        for m in idx.members().collect::<Vec<_>>() {
            idx.peek(m).unwrap().or_into(&mut acc);
        }
        assert_eq!(acc.count_ones(), 37);
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;
    use starshare_storage::TupleLayout;

    /// Heavily clustered data: dim0 is sorted runs → run containers win.
    fn clustered_heap(n: u64) -> HeapFile {
        HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(1),
            (0..n).map(|i| ([(i / (n / 4)) as u32], 1.0)),
        )
    }

    #[test]
    fn compressed_format_shrinks_clustered_indexes() {
        let heap = clustered_heap(100_000);
        let plain =
            BitmapJoinIndex::build_with_format("p", FileId(1), &heap, 0, IndexFormat::Plain, |k| k);
        let comp = BitmapJoinIndex::build_with_format(
            "c",
            FileId(2),
            &heap,
            0,
            IndexFormat::Compressed,
            |k| k,
        );
        assert_eq!(plain.format(), IndexFormat::Plain);
        assert_eq!(comp.format(), IndexFormat::Compressed);
        assert!(
            comp.total_pages() < plain.total_pages(),
            "compressed {} vs plain {}",
            comp.total_pages(),
            plain.total_pages()
        );
        assert_eq!(comp.compressed_members(), comp.n_members());
        assert!(comp.byte_size() < plain.byte_size());
        // Same logical content regardless of format.
        for m in plain.members().collect::<Vec<_>>() {
            assert_eq!(plain.peek(m), comp.peek(m));
        }
        // Lookups charge fewer pages.
        let mut pool = BufferPool::new(1024);
        comp.lookup(0, &mut pool).unwrap();
        let comp_faults = pool.stats().seq_faults;
        let mut pool2 = BufferPool::new(1024);
        plain.lookup(0, &mut pool2).unwrap();
        assert!(comp_faults < pool2.stats().seq_faults);
    }

    #[test]
    fn compressed_never_larger_than_plain() {
        // Fine-interleaved data: compression cannot win, so every member
        // falls back to plain storage and the layout matches.
        let heap = HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(1),
            (0..10_000u64).map(|i| ([(i % 7) as u32], 1.0)),
        );
        let plain =
            BitmapJoinIndex::build_with_format("p", FileId(1), &heap, 0, IndexFormat::Plain, |k| k);
        let comp = BitmapJoinIndex::build_with_format(
            "c",
            FileId(2),
            &heap,
            0,
            IndexFormat::Compressed,
            |k| k,
        );
        assert!(comp.total_pages() <= plain.total_pages());
    }

    #[test]
    fn or_into_charges_identically_across_formats() {
        let heap = clustered_heap(50_000);
        let plain =
            BitmapJoinIndex::build_with_format("p", FileId(1), &heap, 0, IndexFormat::Plain, |k| k);
        let comp = BitmapJoinIndex::build_with_format(
            "c",
            FileId(2),
            &heap,
            0,
            IndexFormat::Compressed,
            |k| k,
        );
        for m in plain.members().collect::<Vec<_>>() {
            let mut acc_p = Bitmap::new(heap.n_tuples());
            let mut acc_c = Bitmap::new(heap.n_tuples());
            let wp = plain.peek(m).unwrap().or_into(&mut acc_p);
            let wc = comp.peek(m).unwrap().or_into(&mut acc_c);
            assert_eq!(wp, wc, "CPU charge must not depend on format");
            assert_eq!(acc_p, acc_c, "bits must not depend on format");
        }
    }

    #[test]
    fn extend_matches_fresh_rebuild_in_both_formats() {
        for format in [IndexFormat::Plain, IndexFormat::Compressed] {
            let full = clustered_heap(80_000);
            // Build over a truncated prefix by re-reading the first rows.
            let prefix = HeapFile::from_rows(
                FileId(0),
                TupleLayout::new(1),
                (0..60_000u64).map(|i| ([(i / 20_000) as u32], 1.0)),
            );
            let mut grown =
                BitmapJoinIndex::build_with_format("x", FileId(1), &prefix, 0, format, |k| k);
            grown.extend(&full, 0, |k| k);
            let fresh = BitmapJoinIndex::build_with_format("x", FileId(1), &full, 0, format, |k| k);
            assert_eq!(grown.n_rows(), fresh.n_rows());
            assert_eq!(grown.n_members(), fresh.n_members());
            assert_eq!(grown.total_pages(), fresh.total_pages(), "{format:?}");
            assert_eq!(grown.byte_size(), fresh.byte_size(), "{format:?}");
            for m in fresh.members().collect::<Vec<_>>() {
                assert_eq!(grown.peek(m), fresh.peek(m), "{format:?} member {m}");
                assert_eq!(grown.lookup_pages(m), fresh.lookup_pages(m));
            }
        }
    }
}
