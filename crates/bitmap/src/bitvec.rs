//! Uncompressed bitvectors.
//!
//! A [`Bitmap`] is a fixed-length vector of bits backed by `u64` words. The
//! boolean combinators return the number of words they touched so callers
//! can charge the simulated CPU clock (`HardwareModel::bitmap_word_ns`).

/// A fixed-length bitvector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    len: u64,
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: u64) -> Self {
        Bitmap {
            len,
            words: vec![0; Self::words_for(len)],
        }
    }

    /// An all-one bitmap of `len` bits.
    pub fn ones(len: u64) -> Self {
        let mut b = Bitmap {
            len,
            words: vec![!0u64; Self::words_for(len)],
        };
        b.mask_tail();
        b
    }

    /// Builds a bitmap of `len` bits with exactly the given positions set.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn from_positions(len: u64, positions: &[u64]) -> Self {
        let mut b = Bitmap::new(len);
        for &p in positions {
            b.set(p);
        }
        b
    }

    fn words_for(len: u64) -> usize {
        len.div_ceil(64) as usize
    }

    fn mask_tail(&mut self) {
        let tail_bits = (self.len % 64) as u32;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Length in bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words backing the bitmap.
    pub fn word_count(&self) -> u64 {
        self.words.len() as u64
    }

    /// Size in bytes actually allocated (used for index I/O and cache
    /// accounting). This reports the backing `Vec`'s *capacity*, not its
    /// length, so accounting stays honest after [`grow`](Self::grow) leaves
    /// reallocation slack; call [`shrink_to_fit`](Self::shrink_to_fit) to
    /// drop the slack before layouts are derived from this number.
    pub fn byte_size(&self) -> u64 {
        self.words.capacity() as u64 * 8
    }

    /// Releases any capacity beyond the words the bitmap needs, so
    /// [`byte_size`](Self::byte_size) reports the minimal allocation.
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// The backing words (for same-crate compressed conversions).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words (for same-crate decompression). Callers must
    /// not set bits at or beyond [`len`](Self::len).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Extends the bitmap to `new_len` bits; new bits are zero.
    ///
    /// # Panics
    /// Panics if `new_len < len`.
    pub fn grow(&mut self, new_len: u64) {
        assert!(new_len >= self.len, "grow cannot shrink");
        self.len = new_len;
        self.words.resize(Self::words_for(new_len), 0);
    }

    /// Sets bit `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn set(&mut self, pos: u64) {
        assert!(pos < self.len, "bit {pos} out of range (len {})", self.len);
        self.words[(pos / 64) as usize] |= 1u64 << (pos % 64);
    }

    /// Clears bit `pos`.
    pub fn clear(&mut self, pos: u64) {
        assert!(pos < self.len, "bit {pos} out of range (len {})", self.len);
        self.words[(pos / 64) as usize] &= !(1u64 << (pos % 64));
    }

    /// Reads bit `pos`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit {pos} out of range (len {})", self.len);
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self &= other`. Returns words processed.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Bitmap) -> u64 {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
        self.word_count()
    }

    /// `self |= other`. Returns words processed.
    pub fn or_assign(&mut self, other: &Bitmap) -> u64 {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.word_count()
    }

    /// `self &= !other`. Returns words processed.
    pub fn and_not_assign(&mut self, other: &Bitmap) -> u64 {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
        self.word_count()
    }

    /// True if `self & other` has any set bit (no allocation).
    pub fn intersects(&self, other: &Bitmap) -> bool {
        self.check_len(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterator over positions of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            end: self.len,
        }
    }

    /// Iterator over set bits in `lo..hi` (ascending, `hi` exclusive).
    ///
    /// Seeks straight to the word containing `lo` instead of scanning from
    /// bit zero, so walking a narrow range of a wide bitmap costs words
    /// proportional to the range, not the whole bitmap. `hi` is clamped to
    /// the bitmap length; an empty or inverted range yields nothing.
    pub fn iter_ones_in(&self, lo: u64, hi: u64) -> OnesIter<'_> {
        let hi = hi.min(self.len);
        if lo >= hi {
            return OnesIter {
                bitmap: self,
                word_idx: self.words.len(),
                current: 0,
                end: 0,
            };
        }
        let word_idx = (lo / 64) as usize;
        let mut current = self.words.get(word_idx).copied().unwrap_or(0);
        if !lo.is_multiple_of(64) {
            current &= !0u64 << (lo % 64);
        }
        OnesIter {
            bitmap: self,
            word_idx,
            current,
            end: hi,
        }
    }

    /// Number of set bits in `lo..hi` (`hi` exclusive, clamped to the
    /// length). Masked popcounts over exactly the words the range touches.
    pub fn count_ones_in(&self, lo: u64, hi: u64) -> u64 {
        let hi = hi.min(self.len);
        if lo >= hi {
            return 0;
        }
        let (wl, wh) = ((lo / 64) as usize, ((hi - 1) / 64) as usize);
        let head_mask = !0u64 << (lo % 64);
        let tail_bits = (hi % 64) as u32;
        let tail_mask = if tail_bits == 0 {
            !0u64
        } else {
            (1u64 << tail_bits) - 1
        };
        if wl == wh {
            return (self.words[wl] & head_mask & tail_mask).count_ones() as u64;
        }
        let mut n = (self.words[wl] & head_mask).count_ones() as u64;
        for w in &self.words[wl + 1..wh] {
            n += w.count_ones() as u64;
        }
        n + (self.words[wh] & tail_mask).count_ones() as u64
    }

    fn check_len(&self, other: &Bitmap) {
        assert_eq!(
            self.len, other.len,
            "bitmap length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Iterator over set-bit positions of a [`Bitmap`], bounded by an
/// exclusive end position (the length for [`Bitmap::iter_ones`], `hi` for
/// [`Bitmap::iter_ones_in`]).
#[derive(Debug)]
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
    end: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                let pos = self.word_idx as u64 * 64 + bit;
                if pos >= self.end {
                    self.current = 0;
                    self.word_idx = self.bitmap.words.len();
                    return None;
                }
                self.current &= self.current - 1; // clear lowest set bit
                return Some(pos);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() || self.word_idx as u64 * 64 >= self.end {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_prng::Prng;
    use std::collections::BTreeSet;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_masks_tail() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.word_count(), 2);
    }

    #[test]
    fn ones_exact_word_boundary() {
        let b = Bitmap::ones(128);
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert!(b.is_zero());
        assert_eq!(b.iter_ones().count(), 0);
        assert_eq!(b.word_count(), 0);
    }

    #[test]
    fn boolean_ops() {
        let a = Bitmap::from_positions(200, &[1, 5, 100, 199]);
        let b = Bitmap::from_positions(200, &[5, 100, 150]);

        let mut and = a.clone();
        let words = and.and_assign(&b);
        assert_eq!(words, 4);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![5, 100]);

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.iter_ones().collect::<Vec<_>>(),
            vec![1, 5, 100, 150, 199]
        );

        let mut diff = a.clone();
        diff.and_not_assign(&b);
        assert_eq!(diff.iter_ones().collect::<Vec<_>>(), vec![1, 199]);

        assert!(a.intersects(&b));
        let c = Bitmap::from_positions(200, &[0, 2]);
        assert!(!c.intersects(&b));
    }

    #[test]
    fn iter_ones_across_words() {
        let positions = vec![0, 63, 64, 127, 128, 191];
        let b = Bitmap::from_positions(192, &positions);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn iter_ones_in_word_seams() {
        let positions = vec![0, 63, 64, 65, 127, 128, 191];
        let b = Bitmap::from_positions(192, &positions);
        // Exact word boundaries.
        assert_eq!(
            b.iter_ones_in(64, 128).collect::<Vec<_>>(),
            vec![64, 65, 127]
        );
        // Mid-word bounds on both ends.
        assert_eq!(b.iter_ones_in(65, 128).collect::<Vec<_>>(), vec![65, 127]);
        assert_eq!(b.iter_ones_in(64, 127).collect::<Vec<_>>(), vec![64, 65]);
        // Range within a single word.
        assert_eq!(b.iter_ones_in(63, 65).collect::<Vec<_>>(), vec![63, 64]);
        assert_eq!(b.iter_ones_in(1, 63).count(), 0);
        // Degenerate and clamped ranges.
        assert_eq!(b.iter_ones_in(64, 64).count(), 0);
        assert_eq!(b.iter_ones_in(128, 64).count(), 0);
        assert_eq!(
            b.iter_ones_in(128, 10_000).collect::<Vec<_>>(),
            vec![128, 191]
        );
        // Full range equals iter_ones.
        assert_eq!(b.iter_ones_in(0, 192).collect::<Vec<_>>(), positions);
    }

    #[test]
    fn count_ones_in_word_seams() {
        let b = Bitmap::from_positions(192, &[0, 63, 64, 65, 127, 128, 191]);
        assert_eq!(b.count_ones_in(0, 192), 7);
        assert_eq!(b.count_ones_in(64, 128), 3);
        assert_eq!(b.count_ones_in(65, 127), 1);
        assert_eq!(b.count_ones_in(63, 65), 2);
        assert_eq!(b.count_ones_in(1, 63), 0);
        assert_eq!(b.count_ones_in(100, 100), 0);
        assert_eq!(b.count_ones_in(150, 10_000), 1);
    }

    #[test]
    fn prop_range_ops_match_filtered_full_scan() {
        let mut rng = Prng::seed_from_u64(0x0B17_0005);
        for _ in 0..64 {
            let xs = random_set(&mut rng, 500, 50);
            let b = Bitmap::from_positions(500, &xs.iter().copied().collect::<Vec<_>>());
            let lo = rng.gen_range(0u64..500);
            let hi = rng.gen_range(0u64..=500);
            let expect: Vec<u64> = b.iter_ones().filter(|p| (lo..hi).contains(p)).collect();
            assert_eq!(b.iter_ones_in(lo, hi).collect::<Vec<_>>(), expect);
            assert_eq!(b.count_ones_in(lo, hi), expect.len() as u64);
        }
    }

    #[test]
    fn byte_size_rounds_to_words() {
        assert_eq!(Bitmap::new(1).byte_size(), 8);
        assert_eq!(Bitmap::new(64).byte_size(), 8);
        assert_eq!(Bitmap::new(65).byte_size(), 16);
    }

    #[test]
    fn byte_size_reports_allocation_and_shrinks() {
        let mut b = Bitmap::new(64);
        // Growing word by word can leave capacity slack; byte_size must
        // report what is actually allocated…
        for len in (128..=64 * 40).step_by(64) {
            b.grow(len);
        }
        assert!(b.byte_size() >= b.word_count() * 8);
        // …and shrink_to_fit restores the minimal allocation.
        b.shrink_to_fit();
        assert_eq!(b.byte_size(), b.word_count() * 8);
    }

    #[test]
    fn iter_ones_in_degenerate_and_boundary_ranges() {
        let b = Bitmap::from_positions(256, &[0, 63, 64, 127, 128, 255]);
        // lo == hi at every word seam yields nothing.
        for s in [0, 1, 63, 64, 65, 127, 128, 255, 256] {
            assert_eq!(b.iter_ones_in(s, s).count(), 0, "lo==hi at {s}");
            assert_eq!(b.count_ones_in(s, s), 0, "count lo==hi at {s}");
        }
        // hi exactly on a word boundary includes the boundary-1 bit and
        // excludes the boundary bit.
        assert_eq!(b.iter_ones_in(0, 64).collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(
            b.iter_ones_in(0, 128).collect::<Vec<_>>(),
            vec![0, 63, 64, 127]
        );
        assert_eq!(b.count_ones_in(64, 128), 2);
        assert_eq!(b.count_ones_in(128, 256), 2);
        // lo on a word boundary starts exactly there.
        assert_eq!(b.iter_ones_in(128, 129).collect::<Vec<_>>(), vec![128]);
    }

    #[test]
    fn full_run_ranges_cover_every_bit() {
        // A fully-set bitmap: every range count equals its width, and
        // iteration yields every position — including when the range spans
        // the whole bitmap (the "full run" case).
        let b = Bitmap::ones(193);
        assert_eq!(b.count_ones_in(0, 193), 193);
        assert_eq!(b.iter_ones_in(0, 193).count(), 193);
        assert_eq!(b.count_ones_in(0, u64::MAX), 193, "hi clamps to len");
        assert_eq!(b.count_ones_in(64, 128), 64);
        assert_eq!(
            b.iter_ones_in(190, 193).collect::<Vec<_>>(),
            vec![190, 191, 192]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(11);
        a.and_assign(&b);
    }

    fn random_set(rng: &mut Prng, bound: u64, max_len: usize) -> BTreeSet<u64> {
        let len = rng.gen_range(0..=max_len);
        (0..len).map(|_| rng.gen_range(0..bound)).collect()
    }

    #[test]
    fn prop_or_is_set_union() {
        let mut rng = Prng::seed_from_u64(0x0B17_0001);
        for _ in 0..64 {
            let xs = random_set(&mut rng, 500, 50);
            let ys = random_set(&mut rng, 500, 50);
            let a = Bitmap::from_positions(500, &xs.iter().copied().collect::<Vec<_>>());
            let b = Bitmap::from_positions(500, &ys.iter().copied().collect::<Vec<_>>());
            let mut o = a.clone();
            o.or_assign(&b);
            let expect: Vec<u64> = xs.union(&ys).copied().collect();
            assert_eq!(o.iter_ones().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn prop_and_is_set_intersection() {
        let mut rng = Prng::seed_from_u64(0x0B17_0002);
        for _ in 0..64 {
            let xs = random_set(&mut rng, 500, 50);
            let ys = random_set(&mut rng, 500, 50);
            let a = Bitmap::from_positions(500, &xs.iter().copied().collect::<Vec<_>>());
            let b = Bitmap::from_positions(500, &ys.iter().copied().collect::<Vec<_>>());
            let mut o = a.clone();
            o.and_assign(&b);
            let expect: Vec<u64> = xs.intersection(&ys).copied().collect();
            assert_eq!(o.iter_ones().collect::<Vec<_>>(), expect);
            assert_eq!(o.count_ones() as usize, xs.intersection(&ys).count());
        }
    }

    #[test]
    fn prop_and_not_is_set_difference() {
        let mut rng = Prng::seed_from_u64(0x0B17_0003);
        for _ in 0..64 {
            let xs = random_set(&mut rng, 500, 50);
            let ys = random_set(&mut rng, 500, 50);
            let a = Bitmap::from_positions(500, &xs.iter().copied().collect::<Vec<_>>());
            let b = Bitmap::from_positions(500, &ys.iter().copied().collect::<Vec<_>>());
            let mut o = a.clone();
            o.and_not_assign(&b);
            let expect: Vec<u64> = xs.difference(&ys).copied().collect();
            assert_eq!(o.iter_ones().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn prop_intersects_matches_and() {
        let mut rng = Prng::seed_from_u64(0x0B17_0004);
        for _ in 0..64 {
            let xs = random_set(&mut rng, 300, 30);
            let ys = random_set(&mut rng, 300, 30);
            let a = Bitmap::from_positions(300, &xs.iter().copied().collect::<Vec<_>>());
            let b = Bitmap::from_positions(300, &ys.iter().copied().collect::<Vec<_>>());
            let mut and = a.clone();
            and.and_assign(&b);
            assert_eq!(a.intersects(&b), !and.is_zero());
        }
    }
}
