//! Edge-case coverage for the bitmap representations: the places where
//! off-by-one bugs live — bit 0, the last bit, and the 64-bit word seams —
//! plus an OR/AND oracle check against a naive set-of-positions model for
//! disjoint, overlapping, and nested operand shapes.

use std::collections::BTreeSet;

use starshare_bitmap::{Bitmap, RleBitmap};
use starshare_prng::Prng;

/// Lengths that stress the word-boundary handling: exactly one word, one
/// bit short of / past a word, several words, and a ragged tail.
const SEAM_LENS: [u64; 6] = [1, 63, 64, 65, 128, 193];

#[test]
fn single_bit_runs_at_every_seam() {
    for &len in &SEAM_LENS {
        for pos in [0, len / 2, len.saturating_sub(1)] {
            let bm = Bitmap::from_positions(len, &[pos]);
            let rle = RleBitmap::from_bitmap(&bm);
            assert_eq!(rle.run_count(), 1, "len {len} pos {pos}");
            assert_eq!(rle.runs()[0].start, pos);
            assert_eq!(rle.runs()[0].len, 1);
            assert_eq!(rle.count_ones(), 1);
            assert_eq!(rle.to_bitmap(), bm);
            for p in 0..len {
                assert_eq!(rle.get(p), p == pos, "len {len} pos {pos} probe {p}");
            }
            assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![pos]);
        }
    }
}

#[test]
fn empty_and_full_bitmaps_at_every_seam() {
    for &len in &SEAM_LENS {
        let empty = Bitmap::new(len);
        assert!(empty.is_zero());
        assert_eq!(empty.count_ones(), 0);
        assert_eq!(RleBitmap::from_bitmap(&empty).run_count(), 0);

        // `ones` must mask the tail word: a full bitmap of ragged length
        // has exactly `len` ones, not a word's worth.
        let full = Bitmap::ones(len);
        assert_eq!(full.count_ones(), len, "tail word not masked at len {len}");
        let rle = RleBitmap::from_bitmap(&full);
        assert_eq!(rle.run_count(), 1);
        assert_eq!(rle.runs()[0].start, 0);
        assert_eq!(rle.runs()[0].len, len);
        assert_eq!(full.iter_ones().count() as u64, len);
        assert!(!full.intersects(&empty));
        assert!(full.intersects(&full));
    }
}

#[test]
fn runs_spanning_word_boundaries_round_trip() {
    // A run that straddles the 64-bit seam must stay one run, and a pair
    // separated by exactly one clear bit at the seam must stay two.
    let straddle = Bitmap::from_positions(130, &[62, 63, 64, 65]);
    let rle = RleBitmap::from_bitmap(&straddle);
    assert_eq!(rle.run_count(), 1);
    assert_eq!(rle.runs()[0].start, 62);
    assert_eq!(rle.runs()[0].len, 4);

    let split = Bitmap::from_positions(130, &[63, 65, 127, 129]);
    let rle = RleBitmap::from_bitmap(&split);
    assert_eq!(rle.run_count(), 4);
    assert_eq!(rle.to_bitmap(), split);
    for p in [63, 64, 65, 126, 127, 128, 129] {
        assert_eq!(rle.get(p), split.get(p), "probe {p}");
    }
}

fn to_set(bm: &Bitmap) -> BTreeSet<u64> {
    bm.iter_ones().collect()
}

fn check_combinators(len: u64, a_pos: &[u64], b_pos: &[u64]) {
    let a = Bitmap::from_positions(len, a_pos);
    let b = Bitmap::from_positions(len, b_pos);
    let sa: BTreeSet<u64> = a_pos.iter().copied().collect();
    let sb: BTreeSet<u64> = b_pos.iter().copied().collect();

    let mut or = a.clone();
    or.or_assign(&b);
    assert_eq!(to_set(&or), &sa | &sb, "OR disagrees with set union");

    let mut and = a.clone();
    and.and_assign(&b);
    assert_eq!(
        to_set(&and),
        &sa & &sb,
        "AND disagrees with set intersection"
    );

    let mut diff = a.clone();
    diff.and_not_assign(&b);
    assert_eq!(
        to_set(&diff),
        &sa - &sb,
        "AND-NOT disagrees with set difference"
    );

    assert_eq!(
        a.intersects(&b),
        !(&sa & &sb).is_empty(),
        "intersects disagrees with set model"
    );
    // OR through RLE and back changes nothing.
    assert_eq!(RleBitmap::from_bitmap(&or).to_bitmap(), or);
}

#[test]
fn or_disjoint_overlapping_nested_match_the_set_oracle() {
    // Disjoint: evens vs odds, including both ends of the range.
    let evens: Vec<u64> = (0..130).step_by(2).collect();
    let odds: Vec<u64> = (1..130).step_by(2).collect();
    check_combinators(130, &evens, &odds);

    // Overlapping: two dense blocks sharing the word-seam region.
    let left: Vec<u64> = (0..80).collect();
    let right: Vec<u64> = (56..130).collect();
    check_combinators(130, &left, &right);

    // Nested: one operand strictly inside the other.
    let outer: Vec<u64> = (10..120).collect();
    let inner: Vec<u64> = (60..70).collect();
    check_combinators(130, &outer, &inner);

    // Degenerate operands.
    check_combinators(130, &[], &[]);
    check_combinators(130, &[0, 129], &[]);
    check_combinators(1, &[0], &[0]);
}

#[test]
fn randomized_combinators_match_the_set_oracle() {
    let mut rng = Prng::seed_from_u64(0x0B17_0E5E);
    for _ in 0..64 {
        let len = rng.gen_range(1u64..300);
        let draw = |rng: &mut Prng| -> Vec<u64> {
            let n = rng.gen_range(0usize..80);
            let set: BTreeSet<u64> = (0..n).map(|_| rng.gen_range(0..len)).collect();
            set.into_iter().collect()
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        check_combinators(len, &a, &b);
    }
}
