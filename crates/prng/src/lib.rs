//! # starshare-prng
//!
//! A tiny, dependency-free, deterministic pseudo-random number generator
//! for data generation, workload sampling, and randomized tests.
//!
//! The engine's experiments must be reproducible bit-for-bit across hosts
//! and across releases, so the generator is vendored rather than pulled
//! from crates.io: [`Prng`] is SplitMix64 (Steele, Lea & Flood 2014) — a
//! 64-bit state, fixed increment, and an output mix — which passes BigCrush
//! and is trivially seedable from a `u64`.
//!
//! The API mirrors the subset of `rand` the codebase needs:
//!
//! ```
//! use starshare_prng::Prng;
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let die = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&die));
//! let unit: f64 = rng.gen_f64();
//! assert!((0.0..1.0).contains(&unit));
//! // Same seed, same stream.
//! assert_eq!(Prng::seed_from_u64(7).next_u64(), Prng::seed_from_u64(7).next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Prng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// A range [`Prng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(99);
        let mut b = Prng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_samples_cover_domain() {
        let mut rng = Prng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(3);
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((400..600).contains(&heads), "{heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..20).collect::<Vec<_>>(),
            "identity is astronomically unlikely"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(5u32..5);
    }
}
