//! The headline differential run: 500 seeded sessions, every optimizer ×
//! thread-count configuration, every answer checked against the
//! row-at-a-time reference, with periodic bit-identical determinism
//! reruns. This is the acceptance gate for the harness itself — if the
//! engine and `reference_eval` ever disagree, this test names the seed,
//! optimizer, and thread count that did it.

use starshare_testkit::{generate_session, harness_spec, Oracle};

const SESSIONS: u64 = 500;
/// Every Nth session also gets a flush-and-rerun determinism check
/// (counters and rows must be bit-identical).
const RERUN_EVERY: u64 = 25;

#[test]
fn five_hundred_sessions_agree_with_the_reference_everywhere() {
    let mut oracle = Oracle::new(harness_spec());
    for seed in 0..SESSIONS {
        let session = generate_session(oracle.schema(), seed);
        if let Err(m) = oracle.check_session(&session, seed % RERUN_EVERY == 0) {
            panic!("differential failure at session seed {seed}: {m}");
        }
    }
    assert_eq!(oracle.stats.sessions, SESSIONS);
    assert!(
        oracle.stats.comparisons >= SESSIONS,
        "at least one comparison per session, got {}",
        oracle.stats.comparisons
    );
    assert!(
        oracle.stats.reruns >= SESSIONS / RERUN_EVERY,
        "determinism reruns should have happened"
    );
    assert!(
        oracle.tiers_seen.len() >= 2,
        "the workload should exercise at least two kernel tiers, saw {:?}",
        oracle.tiers_seen
    );
}
