//! The one-file repro format.
//!
//! A shrunk [`Case`] serializes to a small `key = value` text block (MDX is
//! single-line by construction, so one `expr =` line per expression). No
//! serialization dependency — the format is a dozen known keys, parsed by
//! hand, and round-trips exactly: floats print with `{:?}` (shortest
//! representation that reparses to the same bits).
//!
//! ```text
//! # starshare-testkit repro v1
//! cube_base_rows = 800
//! cube_d_leaf = 24
//! cube_seed = 7
//! cube_with_indexes = true
//! session_seed = 42
//! optimizer = gg
//! threads = 1
//! fault_seed = 3
//! fault_transient = 0.02
//! fault_poison = 0.0005
//! append = 0:3:1:7=12.25 2:0:5:1=0.5
//! expr = {A''.A1.CHILDREN} on Columns CONTEXT ABCD;
//! ```
//!
//! Maintenance cases carry one `append =` line per batch (in application
//! order): each row is `key:key:…=measure`, rows separated by spaces. The
//! measure prints with `{:?}` like the fault rates, so batches round-trip
//! bit-exactly too.

use starshare_core::{FaultPlan, OptimizerKind, PaperCubeSpec};

use crate::shrink::Case;

/// The format's header line.
pub const HEADER: &str = "# starshare-testkit repro v1";

/// Serializes a case to the repro text format.
pub fn format_case(case: &Case) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("cube_base_rows = {}\n", case.spec.base_rows));
    out.push_str(&format!("cube_d_leaf = {}\n", case.spec.d_leaf));
    out.push_str(&format!("cube_seed = {}\n", case.spec.seed));
    out.push_str(&format!("cube_with_indexes = {}\n", case.spec.with_indexes));
    out.push_str(&format!("session_seed = {}\n", case.seed));
    out.push_str(&format!("optimizer = {}\n", optimizer_name(case.optimizer)));
    out.push_str(&format!("threads = {}\n", case.threads));
    out.push_str(&format!("fault_seed = {}\n", case.fault.seed));
    out.push_str(&format!("fault_transient = {:?}\n", case.fault.transient));
    out.push_str(&format!("fault_poison = {:?}\n", case.fault.poison));
    for batch in &case.appends {
        let rows: Vec<String> = batch
            .iter()
            .map(|(key, m)| {
                let keys: Vec<String> = key.iter().map(u32::to_string).collect();
                format!("{}={m:?}", keys.join(":"))
            })
            .collect();
        out.push_str(&format!("append = {}\n", rows.join(" ")));
    }
    for e in &case.exprs {
        debug_assert!(!e.contains('\n'), "generated MDX is single-line");
        out.push_str(&format!("expr = {e}\n"));
    }
    out
}

/// Parses the repro text format back into a case.
pub fn parse_case(text: &str) -> Result<Case, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => return Err(format!("bad header: {other:?} (want {HEADER:?})")),
    }
    let mut spec = PaperCubeSpec {
        base_rows: 0,
        d_leaf: 0,
        seed: 0,
        with_indexes: true,
    };
    let mut case = Case {
        spec,
        seed: 0,
        exprs: Vec::new(),
        optimizer: OptimizerKind::Gg,
        threads: 1,
        fault: FaultPlan::none(),
        appends: Vec::new(),
    };
    for (no, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", no + 2))?;
        let (key, value) = (key.trim(), value.trim());
        let bad = |e: &dyn std::fmt::Display| format!("line {}: {key}: {e}", no + 2);
        match key {
            "cube_base_rows" => spec.base_rows = value.parse().map_err(|e| bad(&e))?,
            "cube_d_leaf" => spec.d_leaf = value.parse().map_err(|e| bad(&e))?,
            "cube_seed" => spec.seed = value.parse().map_err(|e| bad(&e))?,
            "cube_with_indexes" => spec.with_indexes = value.parse().map_err(|e| bad(&e))?,
            "session_seed" => case.seed = value.parse().map_err(|e| bad(&e))?,
            "optimizer" => case.optimizer = parse_optimizer(value).map_err(|e| bad(&e))?,
            "threads" => case.threads = value.parse().map_err(|e| bad(&e))?,
            "fault_seed" => case.fault.seed = value.parse().map_err(|e| bad(&e))?,
            "fault_transient" => case.fault.transient = value.parse().map_err(|e| bad(&e))?,
            "fault_poison" => case.fault.poison = value.parse().map_err(|e| bad(&e))?,
            "append" => case.appends.push(parse_batch(value).map_err(|e| bad(&e))?),
            "expr" => case.exprs.push(value.to_string()),
            other => return Err(format!("line {}: unknown key {other:?}", no + 2)),
        }
    }
    if spec.base_rows == 0 {
        return Err("missing cube_base_rows".into());
    }
    if case.exprs.is_empty() {
        return Err("no expr lines".into());
    }
    case.spec = spec;
    Ok(case)
}

/// Parses one `append =` batch: space-separated `key:key:…=measure` rows
/// (an empty value is a legal empty batch — shrinking can produce one).
fn parse_batch(value: &str) -> Result<Vec<(Vec<u32>, f64)>, String> {
    value
        .split_whitespace()
        .map(|tok| {
            let (keys, m) = tok
                .split_once('=')
                .ok_or_else(|| format!("append row {tok:?}: expected keys=measure"))?;
            let key = keys
                .split(':')
                .map(|k| {
                    k.parse()
                        .map_err(|e| format!("append row {tok:?}: bad key {k:?}: {e}"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            let m: f64 = m
                .parse()
                .map_err(|e| format!("append row {tok:?}: bad measure: {e}"))?;
            Ok((key, m))
        })
        .collect()
}

fn optimizer_name(kind: OptimizerKind) -> &'static str {
    match kind {
        OptimizerKind::Tplo => "tplo",
        OptimizerKind::Etplg => "etplg",
        OptimizerKind::Gg => "gg",
        OptimizerKind::Optimal => "optimal",
    }
}

fn parse_optimizer(s: &str) -> Result<OptimizerKind, String> {
    match s {
        "tplo" => Ok(OptimizerKind::Tplo),
        "etplg" => Ok(OptimizerKind::Etplg),
        "gg" => Ok(OptimizerKind::Gg),
        "optimal" => Ok(OptimizerKind::Optimal),
        other => Err(format!("unknown optimizer {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Case {
        Case {
            spec: PaperCubeSpec {
                base_rows: 800,
                d_leaf: 24,
                seed: 7,
                with_indexes: true,
            },
            seed: 42,
            exprs: vec![
                "{A''.A1.CHILDREN} on Columns CONTEXT ABCD;".to_string(),
                "{B''.B1} on Columns CONTEXT ABCD FILTER (D.DD1);".to_string(),
            ],
            optimizer: OptimizerKind::Etplg,
            threads: 4,
            fault: FaultPlan {
                seed: 3,
                transient: 0.015625,
                poison: 0.0004882812500000001,
            },
            appends: vec![
                vec![(vec![0, 3, 1, 7], 12.25), (vec![2, 0, 5, 1], 0.5)],
                vec![(vec![1, 1, 1, 1], 0.1)],
            ],
        }
    }

    #[test]
    fn repro_round_trips_exactly() {
        let case = sample();
        let text = format_case(&case);
        let back = parse_case(&text).unwrap();
        assert_eq!(back.spec.base_rows, case.spec.base_rows);
        assert_eq!(back.spec.d_leaf, case.spec.d_leaf);
        assert_eq!(back.spec.seed, case.spec.seed);
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.exprs, case.exprs);
        assert_eq!(back.optimizer, case.optimizer);
        assert_eq!(back.threads, case.threads);
        assert_eq!(back.fault, case.fault, "floats must round-trip to the bit");
        assert_eq!(back.appends.len(), case.appends.len());
        for (a, b) in back.appends.iter().zip(&case.appends) {
            assert_eq!(a.len(), b.len());
            for ((ka, ma), (kb, mb)) in a.iter().zip(b) {
                assert_eq!(ka, kb);
                assert_eq!(ma.to_bits(), mb.to_bits(), "measures round-trip to the bit");
            }
        }
        // And the text itself is stable.
        assert_eq!(format_case(&back), text);
    }

    #[test]
    fn parser_rejects_garbage_with_line_numbers() {
        assert!(parse_case("not a repro").is_err());
        let bad = format!("{HEADER}\ncube_base_rows = many\n");
        let e = parse_case(&bad).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let unknown = format!("{HEADER}\nwat = 1\n");
        assert!(parse_case(&unknown).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{HEADER}\n\n# a note\ncube_base_rows = 10\nexpr = {{A.A1}} on Columns CONTEXT ABCD;\n"
        );
        let case = parse_case(&text).unwrap();
        assert_eq!(case.spec.base_rows, 10);
        assert_eq!(case.exprs.len(), 1);
    }
}
