//! # starshare-testkit
//!
//! Deterministic differential-testing and fault-injection harness for the
//! `starshare` engine.
//!
//! The pieces, each its own module:
//!
//! * [`session`] — seeded multi-query MDX workload generation: the same
//!   seed always produces the same session, so any failure is replayable
//!   from a `u64`.
//! * [`oracle`] — the differential oracle: runs each session across
//!   {TPLO, ETPLG, GG} × {1, 4 threads}, compares every answer against the
//!   row-at-a-time [`reference_eval`](starshare_core::reference_eval), and
//!   asserts the determinism contract (reruns are bit-identical, counters
//!   and all).
//! * [`faults`] — the graceful-degradation check: runs a session under a
//!   seeded [`FaultPlan`](starshare_core::FaultPlan) and asserts every
//!   injected fault was either retried to success or surfaced as a
//!   per-query typed error, with all surviving queries bit-identical to
//!   the fault-free twin run.
//! * [`shrink`] — reduces a failing case to a minimal
//!   `(seed, session, fault schedule)` triple.
//! * [`repro`] — the one-file text format a shrunk case round-trips
//!   through.
//! * [`runner`] — replays one case end to end (the core of the `testkit`
//!   binary's `replay` command and the shrinker's predicate).
//! * [`windows`] — the multi-session windowing check: a submission's
//!   results and attributed cost must be bit-identical alone and windowed
//!   with random co-tenants, and one session's injected faults must never
//!   fail a window-mate.
//! * [`cache`] — the result-cache differential check: seeded sessions
//!   replayed on a cached engine (warm exact and subsumption hits, with or
//!   without injected faults, and across an `append_facts` epoch bump)
//!   must stay bit-identical to a cache-less engine.
//! * [`telemetry`] — artifact dumps: replay a minimized case (or one
//!   `windows`-sweep seed) on a telemetry-armed twin engine and write the
//!   drained span trace + metrics snapshot next to the repro.
//! * [`maintenance`] — the streaming-freshness differential: a long-lived
//!   cached engine interleaving MDX with append batches (including
//!   atomically-rejected malformed appends) must answer every round
//!   bit-identically to a fresh engine replaying the append prefix from
//!   scratch; failures shrink as `(spec, session, appends, fault)`
//!   quadruples.
//!
//! The `testkit` binary drives it all:
//!
//! ```text
//! testkit fuzz --count 100 --faults        # sweep seeds, shrink any failure
//! testkit windows --count 50 --faults      # multi-session windowing sweep
//! testkit cache --count 50 --faults        # warm-replay differential sweep
//! testkit maintenance --count 50 --faults  # streaming-freshness sweep
//! testkit replay repro.txt                 # re-run a minimized repro
//! ```

pub mod cache;
pub mod faults;
pub mod maintenance;
pub mod oracle;
pub mod repro;
pub mod runner;
pub mod session;
pub mod shrink;
pub mod storage;
pub mod telemetry;
pub mod windows;

pub use cache::{check_cache_differential, CacheCheck, APPEND_ROWS, CACHE_REPLAYS};
pub use faults::{FaultHarness, FaultedComparison, FaultedQuery};
pub use maintenance::{
    check_maintenance_differential, maintenance_case, MaintenanceCheck, MAINT_APPEND_ROWS,
    MAINT_ROUNDS,
};
pub use oracle::{harness_spec, Mismatch, Oracle, OracleStats, ORACLE_OPTIMIZERS, ORACLE_THREADS};
pub use repro::{format_case, parse_case};
pub use runner::run_case;
pub use session::{generate_session, Session, CUBE_NAME, MAX_EXPRS, MIN_EXPRS};
pub use shrink::{shrink, Case};
pub use storage::StorageProfile;
pub use telemetry::{dump_case_telemetry, dump_window_telemetry, TelemetryArtifacts};
pub use windows::{
    check_fault_isolation, check_windowed_vs_solo, WindowCheck, MAX_SUBMISSIONS, MIN_SUBMISSIONS,
};
