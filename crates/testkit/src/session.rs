//! Seeded multi-query MDX session generation.
//!
//! A *session* models one batch window of a multi-user OLAP server: a few
//! analysts each submit one MDX expression, and the engine optimizes and
//! executes them as one unit ([`Engine::mdx_many`]). The generator is a
//! thin, deterministic wrapper over [`starshare_core::generate_mdx`]:
//! the same `(schema, seed)` pair always yields the same session, which is
//! what makes failures replayable from a one-line repro.
//!
//! [`Engine::mdx_many`]: starshare_core::Engine::mdx_many

use starshare_core::{generate_mdx, StarSchema};
use starshare_prng::Prng;

/// The cube name sessions reference in their `CONTEXT` clause.
pub const CUBE_NAME: &str = "ABCD";

/// Expressions per session, inclusive bounds.
pub const MIN_EXPRS: usize = 1;
pub const MAX_EXPRS: usize = 4;

/// Domain-separation salt so session streams never alias the data
/// generator's or the fault injector's streams at equal seeds.
const SESSION_SALT: u64 = 0x5e55_10f4_2bdc_u64;

/// One generated batch of MDX expressions, replayable from its seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The generator seed this session came from.
    pub seed: u64,
    /// The MDX expressions, in submission order.
    pub exprs: Vec<String>,
}

impl Session {
    /// Borrowed views of the expressions, in the shape
    /// [`Engine::mdx_many`](starshare_core::Engine::mdx_many) takes.
    pub fn texts(&self) -> Vec<&str> {
        self.exprs.iter().map(String::as_str).collect()
    }
}

/// Generates the session for `seed` against `schema`. Every expression
/// parses and binds (a property the MDX generator's own tests pin), so a
/// fault-free run of a generated session must answer every query.
pub fn generate_session(schema: &StarSchema, seed: u64) -> Session {
    let mut rng = Prng::seed_from_u64(seed ^ SESSION_SALT);
    let n = rng.gen_range(MIN_EXPRS..=MAX_EXPRS);
    let exprs = (0..n)
        .map(|_| generate_mdx(schema, CUBE_NAME, &mut rng))
        .collect();
    Session { seed, exprs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_core::paper_schema;

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let schema = paper_schema(24);
        let a = generate_session(&schema, 7);
        let b = generate_session(&schema, 7);
        assert_eq!(a, b);
        let c = generate_session(&schema, 8);
        assert_ne!(a.exprs, c.exprs, "seeds must diverge");
    }

    #[test]
    fn session_sizes_cover_the_range() {
        let schema = paper_schema(24);
        let sizes: Vec<usize> = (0..64)
            .map(|s| generate_session(&schema, s).exprs.len())
            .collect();
        assert!(sizes.iter().all(|&n| (MIN_EXPRS..=MAX_EXPRS).contains(&n)));
        assert!(sizes.contains(&MIN_EXPRS));
        assert!(sizes.contains(&MAX_EXPRS));
    }

    #[test]
    fn every_generated_expression_parses_and_binds() {
        let schema = paper_schema(24);
        for seed in 0..100 {
            let s = generate_session(&schema, seed);
            for text in &s.exprs {
                let expr = starshare_core::parse(text)
                    .unwrap_or_else(|e| panic!("seed {seed} {text:?}: {e}"));
                starshare_core::bind(&schema, &expr)
                    .unwrap_or_else(|e| panic!("seed {seed} {text:?}: {e}"));
            }
        }
    }
}
