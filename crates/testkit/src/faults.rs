//! The fault-injection harness: faulted runs versus their fault-free twin.
//!
//! The property under test is the engine's graceful-degradation contract
//! ([`Engine::mdx_many`] + `starshare_storage::fault`):
//!
//! 1. every injected fault is either retried to success inside the
//!    executor or reported as a per-query typed error
//!    ([`Error::Fault`](starshare_core::Error)) — never a panic, never a
//!    wrong answer;
//! 2. every query that still answers returns rows **bit-identical** to the
//!    fault-free run of the same session (a denied page access charges
//!    nothing, so a successful retry is invisible to both the results and
//!    the simulated clock).
//!
//! Fault injection lives on the engine's own buffer pool, which only the
//! sequential path uses, so the harness pins `threads = 1`.
//!
//! [`Engine::mdx_many`]: starshare_core::Engine::mdx_many

use starshare_core::{
    Engine, EngineConfig, Error, FaultPlan, FaultStats, OptimizerKind, PaperCubeSpec,
};

use crate::session::Session;
use crate::storage::StorageProfile;

/// One query's result rows, as the engine returns them.
type QueryRows = Vec<(Vec<u32>, f64)>;

/// Per-query outcome of a faulted run, aligned with the fault-free run.
#[derive(Debug)]
pub enum FaultedQuery {
    /// The query answered; its rows were bit-identical to the fault-free
    /// run.
    Survived,
    /// The query failed with the typed fault error shown.
    Degraded(String),
}

/// What one faulted session run looked like next to its fault-free twin.
#[derive(Debug)]
pub struct FaultedComparison {
    /// Per-query outcomes, in (expression, binding) order.
    pub queries: Vec<FaultedQuery>,
    /// The injector's tally for the faulted run.
    pub stats: FaultStats,
    /// Contract violations (empty = the degradation contract held).
    pub violations: Vec<String>,
}

impl FaultedComparison {
    /// Queries that degraded (returned a typed error).
    pub fn n_degraded(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| matches!(q, FaultedQuery::Degraded(_)))
            .count()
    }

    /// Queries that survived with bit-identical rows.
    pub fn n_survived(&self) -> usize {
        self.queries.len() - self.n_degraded()
    }

    /// True when the degradation contract held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The harness: a persistent fault-free baseline engine plus a fresh,
/// identically-built engine per faulted run (fresh so each fault schedule
/// starts from a clean injector and cold pool).
pub struct FaultHarness {
    spec: PaperCubeSpec,
    optimizer: OptimizerKind,
    storage: StorageProfile,
    baseline: Engine,
}

impl FaultHarness {
    /// Builds the harness over `spec` with the given optimizer
    /// (`threads = 1`: injection is a sequential-path feature).
    pub fn new(spec: PaperCubeSpec, optimizer: OptimizerKind) -> Self {
        Self::with_storage(spec, optimizer, StorageProfile::Plain)
    }

    /// Like [`new`](Self::new), but both the baseline and every per-fault
    /// fresh engine are built under `storage` — so the degradation
    /// contract (typed errors or bit-identical survivors, retries
    /// invisible) is checked on compressed indexes and compressed,
    /// zone-pruned heaps too.
    pub fn with_storage(
        spec: PaperCubeSpec,
        optimizer: OptimizerKind,
        storage: StorageProfile,
    ) -> Self {
        FaultHarness {
            spec,
            optimizer,
            storage,
            baseline: storage
                .apply(EngineConfig::paper().optimizer(optimizer))
                .build_paper(spec),
        }
    }

    /// The schema sessions should be generated against.
    pub fn schema(&self) -> &starshare_core::StarSchema {
        &self.baseline.cube().schema
    }

    /// Runs `session` fault-free on the baseline engine; panics if the
    /// batch does not fully answer (generated sessions always do).
    fn baseline_rows(&mut self, session: &Session) -> Vec<Vec<QueryRows>> {
        self.baseline.flush();
        let out = self
            .baseline
            .mdx_many(&session.texts())
            .expect("fault-free batch runs");
        out.outcomes
            .iter()
            .map(|o| {
                o.as_ref()
                    .expect("generated expressions bind")
                    .results
                    .iter()
                    .map(|r| r.as_ref().expect("fault-free queries answer").rows.clone())
                    .collect()
            })
            .collect()
    }

    /// Runs `session` under `fault` on a fresh engine and checks the
    /// degradation contract against the fault-free twin.
    pub fn compare(&mut self, session: &Session, fault: FaultPlan) -> FaultedComparison {
        let baseline = self.baseline_rows(session);
        let mut engine = self
            .storage
            .apply(EngineConfig::paper().optimizer(self.optimizer))
            .build_paper(self.spec);
        engine.inject_faults(fault);
        let mut queries = Vec::new();
        let mut violations = Vec::new();
        match engine.mdx_many(&session.texts()) {
            Ok(out) => {
                for (xi, (outcome, base_expr)) in out.outcomes.iter().zip(&baseline).enumerate() {
                    let oc = match outcome {
                        Ok(oc) => oc,
                        Err(e) => {
                            violations.push(format!(
                                "expression {xi}: bind/parse flipped under faults: {e}"
                            ));
                            continue;
                        }
                    };
                    for (qi, (r, base_rows)) in oc.results.iter().zip(base_expr).enumerate() {
                        match r {
                            Ok(r) => {
                                if &r.rows != base_rows {
                                    violations.push(format!(
                                        "expression {xi} query {qi}: surviving rows differ \
                                         from the fault-free run"
                                    ));
                                }
                                queries.push(FaultedQuery::Survived);
                            }
                            Err(e @ Error::Fault(_)) => {
                                queries.push(FaultedQuery::Degraded(e.to_string()));
                            }
                            Err(e) => {
                                violations.push(format!(
                                    "expression {xi} query {qi}: non-fault error under \
                                     injection: {e}"
                                ));
                                queries.push(FaultedQuery::Degraded(e.to_string()));
                            }
                        }
                    }
                }
            }
            Err(e) => violations.push(format!("whole batch failed (no degradation): {e}")),
        }
        let stats = engine
            .clear_faults()
            .expect("injector was armed for this run");
        // Unrecovered faults and per-query errors must agree in spirit: if
        // nothing was ever denied, nothing may have degraded.
        let degraded = queries
            .iter()
            .filter(|q| matches!(q, FaultedQuery::Degraded(_)))
            .count();
        if stats.denials() == 0 && degraded > 0 {
            violations.push(format!(
                "{degraded} queries degraded but the injector denied nothing"
            ));
        }
        FaultedComparison {
            queries,
            stats,
            violations,
        }
    }
}
