//! The differential oracle: one session, many configurations, one answer.
//!
//! The engine's contract is that *how* a batch is evaluated — which
//! optimizer groups the queries, how many worker threads run the classes,
//! which aggregation kernel tier each pipeline compiles to — never changes
//! *what* it answers. The oracle checks that contract the brute-force way:
//!
//! * every configuration's results are compared against
//!   [`reference_eval`], the row-at-a-time scan oracle;
//! * each configuration is run twice (flushed in between) and must
//!   reproduce its own results **bit-identically** along with its
//!   invariant counters (`sim`, `critical`, `io`) — the determinism
//!   contract;
//! * kernel-tier coverage is recorded per plan, so the harness can prove
//!   the sweep exercised more than one tier rather than silently living in
//!   `Dense` the whole time.
//!
//! Cross-configuration results agree to `1e-9` rather than bitwise:
//! sequential and partitioned execution associate their floating-point
//! sums differently, deliberately (see `starshare_exec::parallel`).
//! Bit-identity is asserted where the paths coincide — within one
//! configuration run twice.

use std::collections::BTreeSet;
use std::fmt;

use starshare_core::{
    reference_eval, DimPipeline, Engine, EngineConfig, KernelTier, OptimizerKind, Outcome,
    PaperCubeSpec, QueryResult,
};

use crate::session::Session;
use crate::storage::StorageProfile;

/// The optimizers the oracle sweeps.
pub const ORACLE_OPTIMIZERS: [OptimizerKind; 3] =
    [OptimizerKind::Tplo, OptimizerKind::Etplg, OptimizerKind::Gg];

/// The thread counts the oracle sweeps: 1 is the sequential in-place
/// path, the rest drive the morsel scheduler at widths below, at, and
/// above typical host core counts (16 > the morsel count of most harness
/// classes, so stealing saturates).
pub const ORACLE_THREADS: [usize; 4] = [1, 2, 7, 16];

/// The small-but-real cube the harness runs against: big enough that every
/// paper view exists, finest-level group-bys overflow the dense kernel, and
/// scans span many pages; small enough that a 500-session sweep stays in
/// test-suite territory.
pub fn harness_spec() -> PaperCubeSpec {
    PaperCubeSpec {
        base_rows: 800,
        d_leaf: 24,
        seed: 7,
        with_indexes: true,
    }
}

/// A differential disagreement (or broken invariant), with enough identity
/// to replay it: the session seed plus the configuration that diverged.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Seed of the offending session.
    pub seed: u64,
    /// Optimizer of the diverging configuration.
    pub optimizer: OptimizerKind,
    /// Thread count of the diverging configuration.
    pub threads: usize,
    /// What went wrong, in words.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session seed {}: [{:?} x{}] {}",
            self.seed, self.optimizer, self.threads, self.detail
        )
    }
}

/// Aggregate tallies across a sweep, for the harness's own sanity asserts.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Sessions checked.
    pub sessions: u64,
    /// Individual (query, configuration) comparisons against the
    /// reference.
    pub comparisons: u64,
    /// Determinism double-runs performed.
    pub reruns: u64,
    /// Storage-profile differential checks performed (one engine per
    /// session, round-robined by seed).
    pub storage_checks: u64,
}

/// The differential oracle: a fixed cube, one engine per configuration.
///
/// All engines are built from the **same** [`PaperCubeSpec`]; data
/// generation is deterministic, so they hold identical cubes without the
/// catalog needing to be clonable.
pub struct Oracle {
    /// Source of truth for binding and [`reference_eval`].
    reference: Engine,
    engines: Vec<(OptimizerKind, usize, Engine)>,
    /// The storage axis: engines identical to the plain Gg configuration
    /// except for [`StorageProfile`] (compressed indexes and/or compressed
    /// heaps + zone pruning). Each session checks one of them —
    /// round-robined by seed — against a fresh run of `reference`, and the
    /// rows must match **bitwise**, not just to 1e-9: compression is a
    /// layout change, never a numeric one.
    storage_engines: Vec<(StorageProfile, Engine)>,
    /// Kernel tiers any checked plan compiled to, as `{:?}` names.
    pub tiers_seen: BTreeSet<&'static str>,
    /// Running tallies.
    pub stats: OracleStats,
}

impl Oracle {
    /// Builds the reference engine plus the full default configuration
    /// matrix over `spec`: [`ORACLE_OPTIMIZERS`] × [`ORACLE_THREADS`] at
    /// the default morsel size.
    pub fn new(spec: PaperCubeSpec) -> Self {
        let mut oracle = Self::with_matrix(
            spec,
            &ORACLE_OPTIMIZERS,
            &ORACLE_THREADS,
            starshare_core::DEFAULT_MORSEL_PAGES,
        );
        // The storage axis rides along only in the full default sweep:
        // every non-plain profile at the sequential path plus the full
        // production layout threaded, so pruning runs under the morsel
        // scheduler too.
        oracle.storage_engines = [
            (StorageProfile::CompressedIndex, 1),
            (StorageProfile::CompressedHeap, 1),
            (StorageProfile::Compressed, 1),
            (StorageProfile::Compressed, 4),
        ]
        .into_iter()
        .map(|(profile, threads)| {
            let e = profile
                .apply(EngineConfig::paper().threads(threads))
                .build_paper(spec);
            (profile, e)
        })
        .collect();
        oracle
    }

    /// Builds an oracle over an explicit configuration matrix: every
    /// `optimizers` × `threads` engine, each at `morsel_pages` pages per
    /// morsel. Property tests that sweep the morsel size build one oracle
    /// per size (with a reduced optimizer set, to keep the engine count
    /// honest).
    pub fn with_matrix(
        spec: PaperCubeSpec,
        optimizers: &[OptimizerKind],
        threads: &[usize],
        morsel_pages: u32,
    ) -> Self {
        let engines = optimizers
            .iter()
            .flat_map(|&opt| threads.iter().map(move |&t| (opt, t)))
            .map(|(opt, threads)| {
                let e = EngineConfig::paper()
                    .optimizer(opt)
                    .threads(threads)
                    .morsel_pages(morsel_pages)
                    .build_paper(spec);
                (opt, threads, e)
            })
            .collect();
        Oracle {
            reference: Engine::paper(spec),
            engines,
            storage_engines: Vec::new(),
            tiers_seen: BTreeSet::new(),
            stats: OracleStats::default(),
        }
    }

    /// The schema sessions should be generated against.
    pub fn schema(&self) -> &starshare_core::StarSchema {
        &self.reference.cube().schema
    }

    /// Checks one session across the whole configuration matrix. `rerun`
    /// additionally runs every configuration twice and asserts the second
    /// run reproduces the first bit-for-bit (results *and* invariant
    /// counters).
    pub fn check_session(&mut self, session: &Session, rerun: bool) -> Result<(), Mismatch> {
        let texts = session.texts();
        // Expected answers via the row-at-a-time reference, per expression
        // in binding order.
        let mut expected: Vec<Vec<QueryResult>> = Vec::new();
        {
            let cube = self.reference.cube();
            let base = cube.catalog.base_table().expect("paper cube has a base");
            for text in &texts {
                let expr = parse_ok(text, session.seed)?;
                let bound = starshare_core::bind(&cube.schema, &expr).map_err(|e| Mismatch {
                    seed: session.seed,
                    optimizer: OptimizerKind::Gg,
                    threads: 1,
                    detail: format!("generated expression failed to bind: {e}"),
                })?;
                expected.push(
                    bound
                        .queries
                        .iter()
                        .map(|q| reference_eval(cube, base, q))
                        .collect(),
                );
            }
        }

        for ei in 0..self.engines.len() {
            let (opt, threads) = (self.engines[ei].0, self.engines[ei].2.threads());
            let mismatch = |detail: String| Mismatch {
                seed: session.seed,
                optimizer: opt,
                threads,
                detail,
            };
            let out = {
                let engine = &mut self.engines[ei].2;
                engine.flush();
                engine
                    .mdx_many(&texts)
                    .map_err(|e| mismatch(format!("batch failed fault-free: {e}")))?
            };
            self.record_tiers(&out);
            compare_to_expected(&out, &expected, &mut self.stats.comparisons).map_err(mismatch)?;
            if rerun {
                let engine = &mut self.engines[ei].2;
                engine.flush();
                let again = engine
                    .mdx_many(&texts)
                    .map_err(|e| mismatch(format!("rerun failed: {e}")))?;
                self.stats.reruns += 1;
                assert_bit_identical(&out, &again).map_err(mismatch)?;
            }
        }

        // The storage axis: one profile per session (round-robined by
        // seed), answered bitwise-identically to a fresh run on the plain
        // reference engine. The clocks legitimately differ — compressed
        // scans charge decompression CPU and prune zones — so only the
        // result rows are compared, but they are compared **bitwise**:
        // quarter-unit measures make every sum exact, so a single
        // last-bit wobble means compression changed semantics.
        if !self.storage_engines.is_empty() {
            let si = (session.seed as usize) % self.storage_engines.len();
            let (profile, threads) = (
                self.storage_engines[si].0,
                self.storage_engines[si].1.threads(),
            );
            let mismatch = |detail: String| Mismatch {
                seed: session.seed,
                optimizer: OptimizerKind::Gg,
                threads,
                detail: format!("[storage {profile:?}] {detail}"),
            };
            self.reference.flush();
            let plain_out = self
                .reference
                .mdx_many(&texts)
                .map_err(|e| mismatch(format!("plain twin failed fault-free: {e}")))?;
            let out = {
                let engine = &mut self.storage_engines[si].1;
                engine.flush();
                engine
                    .mdx_many(&texts)
                    .map_err(|e| mismatch(format!("batch failed fault-free: {e}")))?
            };
            compare_to_expected(&out, &expected, &mut self.stats.comparisons).map_err(mismatch)?;
            assert_rows_bit_identical(&plain_out, &out).map_err(mismatch)?;
            self.stats.storage_checks += 1;
        }

        self.stats.sessions += 1;
        Ok(())
    }

    /// Records which kernel tiers the plan's assignments compile to.
    fn record_tiers(&mut self, out: &Outcome) {
        let cube = self.reference.cube();
        for (t, q, _) in out.plan.assignments() {
            let stored = cube.catalog.table(t).group_by();
            if let Ok(p) = DimPipeline::compile(&cube.schema, stored, q) {
                self.tiers_seen.insert(match p.kernel_tier() {
                    KernelTier::Dense => "Dense",
                    KernelTier::Packed => "Packed",
                    KernelTier::Spill => "Spill",
                });
            }
        }
    }
}

fn parse_ok(text: &str, seed: u64) -> Result<starshare_core::MdxExpr, Mismatch> {
    starshare_core::parse(text).map_err(|e| Mismatch {
        seed,
        optimizer: OptimizerKind::Gg,
        threads: 1,
        detail: format!("generated expression failed to parse: {e}"),
    })
}

/// Every query of every expression answered, and matches the reference to
/// 1e-9.
fn compare_to_expected(
    out: &Outcome,
    expected: &[Vec<QueryResult>],
    comparisons: &mut u64,
) -> Result<(), String> {
    if out.outcomes.len() != expected.len() {
        return Err(format!(
            "{} outcomes for {} expressions",
            out.outcomes.len(),
            expected.len()
        ));
    }
    for (xi, (outcome, exp)) in out.outcomes.iter().zip(expected).enumerate() {
        let oc = match outcome {
            Ok(oc) => oc,
            Err(e) => return Err(format!("expression {xi} failed fault-free: {e}")),
        };
        if oc.results.len() != exp.len() {
            return Err(format!(
                "expression {xi}: {} results for {} queries",
                oc.results.len(),
                exp.len()
            ));
        }
        for (qi, (r, want)) in oc.results.iter().zip(exp).enumerate() {
            let r = r
                .as_ref()
                .map_err(|e| format!("expression {xi} query {qi} failed fault-free: {e}"))?;
            *comparisons += 1;
            if r.query != want.query {
                return Err(format!(
                    "expression {xi} query {qi}: result belongs to a different query"
                ));
            }
            if !r.approx_eq(want, 1e-9) {
                return Err(format!(
                    "expression {xi} query {qi}: result disagrees with reference_eval"
                ));
            }
        }
    }
    Ok(())
}

/// Result rows agree bit-for-bit, counters ignored: the comparison that
/// holds **across** storage layouts, where `sim`/`io` legitimately differ
/// (compressed scans charge decompression CPU and skip pruned zones) but
/// answers must not move a single bit.
pub(crate) fn assert_rows_bit_identical(a: &Outcome, b: &Outcome) -> Result<(), String> {
    if a.outcomes.len() != b.outcomes.len() {
        return Err(format!(
            "{} outcomes vs {}",
            a.outcomes.len(),
            b.outcomes.len()
        ));
    }
    for (xi, (oa, ob)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        match (oa, ob) {
            (Ok(ra), Ok(rb)) => {
                if ra.results.len() != rb.results.len() {
                    return Err(format!("expression {xi}: result count differs"));
                }
                for (qi, (qa, qb)) in ra.results.iter().zip(&rb.results).enumerate() {
                    match (qa, qb) {
                        (Ok(qa), Ok(qb)) => {
                            if qa.rows != qb.rows {
                                return Err(format!(
                                    "expression {xi} query {qi}: rows not bit-identical across storage layouts"
                                ));
                            }
                        }
                        _ => return Err(format!("expression {xi} query {qi}: Ok/Err flip")),
                    }
                }
            }
            _ => {
                return Err(format!(
                    "expression {xi}: outcome flip across storage layouts"
                ))
            }
        }
    }
    Ok(())
}

/// Two runs of one configuration must agree bit-for-bit: identical result
/// rows and identical invariant counters.
fn assert_bit_identical(a: &Outcome, b: &Outcome) -> Result<(), String> {
    if a.report.sim != b.report.sim
        || a.report.critical != b.report.critical
        || a.report.io != b.report.io
    {
        return Err(format!(
            "rerun moved the deterministic clock: sim {} vs {}, io {:?} vs {:?}",
            a.report.sim, b.report.sim, a.report.io, b.report.io
        ));
    }
    for (xi, (oa, ob)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        match (oa, ob) {
            (Ok(ra), Ok(rb)) => {
                for (qi, (qa, qb)) in ra.results.iter().zip(&rb.results).enumerate() {
                    match (qa, qb) {
                        (Ok(qa), Ok(qb)) => {
                            if qa.rows != qb.rows {
                                return Err(format!(
                                    "expression {xi} query {qi}: rerun rows not bit-identical"
                                ));
                            }
                        }
                        _ => return Err(format!("expression {xi} query {qi}: Ok/Err flip")),
                    }
                }
            }
            _ => return Err(format!("expression {xi}: outcome flip across reruns")),
        }
    }
    Ok(())
}
