//! Telemetry artifact dumps: replay a failing (or sampled) case on a
//! telemetry-armed twin engine and write the drained trace plus a metrics
//! snapshot next to the repro, so a bug report ships with the span tree
//! that led up to it.
//!
//! Telemetry is deterministic and observably inert (the invariance suite
//! in `tests/telemetry_invariance.rs` pins results, counters, and the sim
//! clock bit-identical on vs off), so the replayed trace is faithful to
//! the failing run: same seed, same spans, same counters — just visible.

use starshare_core::{
    EngineConfig, ExecStrategy, MorselSpec, OptimizerKind, PaperCubeSpec, TelemetryConfig,
};

use crate::shrink::Case;
use crate::windows::generate_window;

/// Where one dump landed, for the caller's log line.
#[derive(Debug, Clone)]
pub struct TelemetryArtifacts {
    /// The drained span trace, one JSON object per line.
    pub trace_path: String,
    /// The metrics registry snapshot, one JSON object.
    pub metrics_path: String,
}

fn write_artifacts(
    engine: &starshare_core::Engine,
    base: &str,
) -> Result<TelemetryArtifacts, String> {
    let trace = engine.drain_trace().unwrap_or_default();
    let metrics = engine
        .metrics()
        .map(|m| m.to_json())
        .unwrap_or_else(|| "{}".to_string());
    let artifacts = TelemetryArtifacts {
        trace_path: format!("{base}.trace.jsonl"),
        metrics_path: format!("{base}.metrics.json"),
    };
    std::fs::write(&artifacts.trace_path, trace)
        .map_err(|e| format!("could not write {}: {e}", artifacts.trace_path))?;
    std::fs::write(&artifacts.metrics_path, metrics + "\n")
        .map_err(|e| format!("could not write {}: {e}", artifacts.metrics_path))?;
    Ok(artifacts)
}

/// Replays `case` on a telemetry-armed twin engine and writes
/// `<base>.trace.jsonl` + `<base>.metrics.json`.
///
/// Maintenance cases (non-empty `appends`) replay as query/append rounds
/// against a cached engine, mirroring the differential's live engine; the
/// interleaved fresh-reference runs are skipped — the trace documents the
/// engine under test, not the oracle. Execution errors are swallowed: a
/// failing case is exactly when the partial trace is worth shipping.
pub fn dump_case_telemetry(case: &Case, base: &str) -> Result<TelemetryArtifacts, String> {
    let cached = !case.appends.is_empty();
    let mut engine = EngineConfig::paper()
        .optimizer(case.optimizer)
        .threads(case.threads)
        .result_cache(cached)
        .telemetry(TelemetryConfig::enabled(case.seed))
        .build_paper(case.spec);
    if !case.fault.is_none() {
        engine.inject_faults(case.fault);
    }
    let texts: Vec<&str> = case.exprs.iter().map(String::as_str).collect();
    let _ = engine.mdx_many(&texts);
    for batch in &case.appends {
        let _ = engine.append_facts(batch);
        let _ = engine.mdx_many(&texts);
    }
    write_artifacts(&engine, base)
}

/// Runs one `windows`-sweep seed on a telemetry-armed engine and writes
/// the same two artifacts. CI uploads these from a fixed seed so every
/// run has a browsable span tree from a known-deterministic workload.
pub fn dump_window_telemetry(
    spec: PaperCubeSpec,
    seed: u64,
    base: &str,
) -> Result<TelemetryArtifacts, String> {
    let submissions = generate_window(spec, seed);
    let mut engine = EngineConfig::paper()
        .optimizer(OptimizerKind::Tplo)
        .telemetry(TelemetryConfig::enabled(seed))
        .build_paper(spec);
    let slices: Vec<&[String]> = submissions.iter().map(Vec::as_slice).collect();
    engine
        .mdx_window(
            &slices,
            OptimizerKind::Tplo,
            ExecStrategy::Morsel(MorselSpec::whole_table()),
        )
        .map_err(|e| format!("window failed: {e}"))?;
    write_artifacts(&engine, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::harness_spec;
    use crate::session::generate_session;
    use starshare_core::{paper_schema, FaultPlan};

    fn tmp_base(tag: &str) -> String {
        let dir = std::env::temp_dir().join("starshare-testkit-telemetry");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(tag).to_string_lossy().into_owned()
    }

    #[test]
    fn case_dump_writes_trace_and_metrics() {
        let session = generate_session(&paper_schema(24), 3);
        let case = Case {
            spec: harness_spec(),
            seed: session.seed,
            exprs: session.exprs,
            optimizer: OptimizerKind::Gg,
            threads: 1,
            fault: FaultPlan::none(),
            appends: Vec::new(),
        };
        let a = dump_case_telemetry(&case, &tmp_base("case")).unwrap();
        let trace = std::fs::read_to_string(&a.trace_path).unwrap();
        assert!(trace.lines().count() > 2, "trace is implausibly short");
        assert!(trace.contains("\"window.close\""));
        let metrics = std::fs::read_to_string(&a.metrics_path).unwrap();
        assert!(metrics.contains("\"queries\""));
    }

    #[test]
    fn maintenance_case_dump_covers_appends() {
        let case = crate::maintenance::maintenance_case(harness_spec(), 2, None);
        let a = dump_case_telemetry(&case, &tmp_base("maint")).unwrap();
        let trace = std::fs::read_to_string(&a.trace_path).unwrap();
        assert!(trace.contains("\"engine.append\""));
        assert!(trace.contains("\"cache.probe\""));
    }

    #[test]
    fn window_dump_is_deterministic() {
        let a = dump_window_telemetry(harness_spec(), 7, &tmp_base("win-a")).unwrap();
        let b = dump_window_telemetry(harness_spec(), 7, &tmp_base("win-b")).unwrap();
        let ta = std::fs::read_to_string(&a.trace_path).unwrap();
        let tb = std::fs::read_to_string(&b.trace_path).unwrap();
        assert_eq!(ta, tb, "same seed must drain a byte-identical trace");
        assert!(ta.contains("\"opt.plan\""));
    }
}
