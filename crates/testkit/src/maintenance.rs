//! The streaming-maintenance freshness differential: sessions interleaved
//! with append batches must answer from delta-patched state exactly as a
//! from-scratch engine would.
//!
//! Each seeded check drives one long-lived *cached* engine through
//! alternating rounds of MDX and `append_facts`, and after every round
//! rebuilds a fresh cache-less engine, replays the append prefix onto it
//! from scratch, and compares every answer bit-for-bit. That closes the
//! loop the cache differential ([`crate::cache`]) leaves open: here the
//! live engine's state is the *accumulated* product of patches across many
//! epochs, not a single append, so any drift a patch introduces compounds
//! where this harness can see it.
//!
//! Each appending round also fires a *faulted* append first — a batch with
//! a malformed row — and asserts it is rejected atomically: no epoch bump,
//! no partial rows, and the next differential still matches. Generated
//! measures are quantized to quarter units (exact binary fractions), so
//! sums are associativity-free and the comparison can demand bit equality.
//!
//! A failure is a [`Case`] whose `appends` are non-empty, which routes
//! [`run_case`](crate::run_case) back through this differential — the
//! shrinker then minimizes the `(spec, session, appends, fault)` quadruple
//! with the same machinery as the pure-query harnesses.

use starshare_core::{
    paper_queries::paper_query_text, paper_schema, EngineConfig, Error, ExecStrategy, FaultPlan,
    MorselSpec, PaperCubeSpec, WindowOutcome,
};
use starshare_prng::Prng;

use crate::cache::{compare, COARSE_PROBE};
use crate::session::generate_session;
use crate::shrink::Case;
use crate::storage::StorageProfile;

/// Append batches per generated maintenance session (rounds of MDX run
/// between them, plus one cold round before the first batch).
pub const MAINT_ROUNDS: usize = 3;

/// Rows per generated append batch.
pub const MAINT_APPEND_ROWS: usize = 24;

/// Salt separating maintenance append draws from every other stream.
const MAINT_SALT: u64 = 0x3a11_7e4a_9ce5_u64;

/// Tallies from one maintenance check, for the harness's sanity asserts.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceCheck {
    /// Expressions replayed each round.
    pub expressions: usize,
    /// Rounds run (append batches + the cold round).
    pub rounds: usize,
    /// Individual live-vs-fresh row comparisons made.
    pub comparisons: u64,
    /// Cache entries delta-patched in place across all appends.
    pub patched: u64,
    /// Cache entries dropped as unpatchable across all appends.
    pub patch_drops: u64,
    /// Malformed appends rejected (one probe per appending round).
    pub rejected_appends: u64,
    /// Queries that degraded with a typed fault (fault checks only).
    pub degraded: usize,
}

/// The expressions a maintenance session replays every round: a generated
/// session plus paper Q1 and its drill-up probe, so every seed holds both
/// patchable (SUM) entries and the subsumption path between appends.
pub fn maintenance_exprs(spec: PaperCubeSpec, seed: u64) -> Vec<String> {
    let mut session = generate_session(&paper_schema(spec.d_leaf), seed);
    session.exprs.push(paper_query_text(1).to_string());
    session.exprs.push(COARSE_PROBE.to_string());
    session.exprs
}

/// Deterministic append batches for `seed`: keys within the leaf
/// cardinalities, measures quantized to quarter units like the
/// generator's, so both engines' sums stay exact.
pub fn maintenance_appends(spec: PaperCubeSpec, seed: u64) -> Vec<Vec<(Vec<u32>, f64)>> {
    let schema = paper_schema(spec.d_leaf);
    let cards: Vec<u32> = (0..schema.n_dims())
        .map(|d| schema.dim(d).cardinality(0))
        .collect();
    (0..MAINT_ROUNDS as u64)
        .map(|round| {
            let mut rng = Prng::seed_from_u64(seed ^ MAINT_SALT ^ (round << 32));
            (0..MAINT_APPEND_ROWS)
                .map(|_| {
                    let key = cards.iter().map(|&c| rng.gen_range(0..c)).collect();
                    (key, rng.gen_range(0u32..400) as f64 * 0.25)
                })
                .collect()
        })
        .collect()
}

/// The fully generated maintenance case for `seed` — what the `testkit`
/// binary's sweep runs and, on failure, hands to the shrinker.
pub fn maintenance_case(spec: PaperCubeSpec, seed: u64, fault: Option<FaultPlan>) -> Case {
    Case {
        spec,
        seed,
        exprs: maintenance_exprs(spec, seed),
        optimizer: starshare_core::OptimizerKind::Tplo,
        threads: 1,
        fault: fault.unwrap_or_else(FaultPlan::none),
        appends: maintenance_appends(spec, seed),
    }
}

/// Checks the freshness differential for `seed`; `fault` arms the live
/// engine's injector (the fresh reference always runs clean).
pub fn check_maintenance_differential(
    spec: PaperCubeSpec,
    seed: u64,
    fault: Option<FaultPlan>,
) -> Result<MaintenanceCheck, String> {
    run_maintenance_core(&maintenance_case(spec, seed, fault))
}

/// [`run_case`](crate::run_case)'s view of a maintenance case: pass/fail
/// with the tallies dropped.
pub(crate) fn run_maintenance_case(case: &Case) -> Result<(), String> {
    run_maintenance_core(case).map(|_| ())
}

fn window(e: &mut starshare_core::Engine, case: &Case) -> Result<WindowOutcome, Error> {
    e.mdx_window(
        &[case.exprs.as_slice()],
        case.optimizer,
        ExecStrategy::Morsel(MorselSpec::whole_table()),
    )
}

fn run_maintenance_core(case: &Case) -> Result<MaintenanceCheck, String> {
    let seed = case.seed;
    let faulted = !case.fault.is_none();
    let mut check = MaintenanceCheck {
        expressions: case.exprs.len(),
        rounds: case.appends.len() + 1,
        ..MaintenanceCheck::default()
    };
    // Both the live engine and every fresh from-scratch reference are
    // built under the seed's storage profile: on compressed layouts each
    // append grows sealed pages and runs `BitmapJoinIndex::extend` on the
    // compressed format, and the freshness differential must still hold to
    // the bit.
    let storage = StorageProfile::from_seed(seed);
    let build = |cached: bool| {
        storage
            .apply(
                EngineConfig::paper()
                    .optimizer(case.optimizer)
                    .threads(case.threads)
                    .result_cache(cached),
            )
            .build_paper(case.spec)
    };

    let mut live = build(true);
    if faulted {
        live.inject_faults(case.fault);
    }
    let n_dims = paper_schema(case.spec.d_leaf).n_dims();

    for round in 0..=case.appends.len() {
        if round > 0 {
            let batch = &case.appends[round - 1];

            // A faulted append first: one malformed row must poison the
            // whole batch atomically — rejected, epoch untouched.
            let epoch_before = live.cube().epoch;
            let poison = vec![
                (vec![0u32; n_dims], 0.25),
                (vec![0u32; n_dims.saturating_sub(1)], 0.25),
            ];
            if live.append_facts(&poison).is_ok() {
                return Err(format!(
                    "seed {seed} round {round}: malformed append was accepted"
                ));
            }
            if live.cube().epoch != epoch_before {
                return Err(format!(
                    "seed {seed} round {round}: rejected append still bumped the epoch"
                ));
            }
            check.rejected_appends += 1;

            // The real batch: every cached entry must be accounted for.
            let filled = live.cached_results() as u64;
            let out = live
                .append_facts(batch)
                .map_err(|e| format!("seed {seed} round {round}: append failed: {e}"))?;
            if out.appended != batch.len() as u64 {
                return Err(format!(
                    "seed {seed} round {round}: appended {} of {} rows",
                    out.appended,
                    batch.len()
                ));
            }
            if out.cache.patched + out.cache.patch_drops + out.cache.invalidations != filled {
                return Err(format!(
                    "seed {seed} round {round}: append accounted for {} + {} + {} of {filled} cached entries",
                    out.cache.patched, out.cache.patch_drops, out.cache.invalidations
                ));
            }
            check.patched += out.cache.patched;
            check.patch_drops += out.cache.patch_drops;
        }

        // The freshness differential: a fresh cache-less engine replays
        // the append prefix from scratch and must agree to the bit.
        let mut reference = build(false);
        for (bi, batch) in case.appends[..round].iter().enumerate() {
            reference.append_facts(batch).map_err(|e| {
                format!("seed {seed} round {round}: reference append {bi} failed: {e}")
            })?;
        }
        let ref_out = window(&mut reference, case)
            .map_err(|e| format!("seed {seed} round {round}: reference run failed: {e}"))?;
        let label = format!("seed {seed} round {round}");
        match window(&mut live, case) {
            Ok(out) => compare(
                out.submission(0),
                ref_out.submission(0),
                faulted,
                &label,
                &mut check.comparisons,
                &mut check.degraded,
            )?,
            Err(e) if faulted && e.is_fault() => check.degraded += case.exprs.len(),
            Err(e) => return Err(format!("{label}: live run failed: {e}")),
        }
    }

    if !faulted && !case.appends.is_empty() && check.patched == 0 {
        return Err(format!(
            "seed {seed}: session held SUM queries across {} appends but none patched",
            case.appends.len()
        ));
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::harness_spec;

    #[test]
    fn maintenance_differential_holds_across_seeds() {
        let (mut patched, mut rejected) = (0u64, 0u64);
        for seed in 0..4 {
            let check = check_maintenance_differential(harness_spec(), seed, None).unwrap();
            assert!(check.comparisons > 0, "seed {seed} compared nothing");
            assert_eq!(check.rounds, MAINT_ROUNDS + 1);
            patched += check.patched;
            rejected += check.rejected_appends;
        }
        assert!(patched > 0, "sweep never delta-patched a live entry");
        assert_eq!(rejected, 4 * MAINT_ROUNDS as u64);
    }

    #[test]
    fn faulted_maintenance_degrades_gracefully_or_matches() {
        for seed in 0..3u64 {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(6151),
                transient: 0.05,
                poison: 0.01,
            };
            check_maintenance_differential(harness_spec(), seed, Some(fault)).unwrap();
        }
    }

    #[test]
    fn appends_route_a_case_through_the_maintenance_differential() {
        let case = maintenance_case(harness_spec(), 2, None);
        assert!(!case.appends.is_empty());
        crate::run_case(&case).unwrap();
    }
}
