//! The result-cache differential check: warm replays must be bit-identical
//! to a cache-less engine, across faults and appends.
//!
//! Three properties of the engine's subsumption result cache
//! (`starshare_exec::ResultCache` behind `EngineConfig::result_cache`) are
//! checked per generated session:
//!
//! 1. **Replay bit-identity** — a seeded session replayed several times on
//!    one cached engine (cold fill, then warm hits — exact and rollup)
//!    answers every query bitwise equal to a cache-less engine's run. A
//!    rollup answer that drifts from the scan by even one ULP fails here.
//! 2. **Fault transparency** — with an injected [`FaultPlan`], a cached
//!    query either still matches the clean cache-less bits or degrades
//!    with the typed fault error; faults must never push a wrong result
//!    *into* the cache (later warm replays re-compare against the clean
//!    reference).
//! 3. **Append freshness** — after `append_facts` lands identical rows on
//!    both engines, every cached entry must be accounted for: delta-patched
//!    to the new epoch in place, or dropped where patching is unsound
//!    (AVG, uncompilable predicates). The next replay must match the
//!    cache-less engine's *post-append* answers, never the pre-append bits
//!    — a patch that drifts by one ULP fails here.

use starshare_core::{
    paper_queries::paper_query_text, paper_schema, EngineConfig, Error, ExecStrategy, FaultPlan,
    MorselSpec, OptimizerKind, PaperCubeSpec, WindowOutcome,
};
use starshare_prng::Prng;

use crate::session::generate_session;
use crate::storage::StorageProfile;

/// Warm replays per session before the append (the first is the cold fill).
pub const CACHE_REPLAYS: usize = 3;

/// A drill-up of paper Q1 (its `A''.A1.CHILDREN` axis collapsed to the
/// parent): appended with Q1 to every generated session so each seed
/// exercises the subsumption (rollup) path, not just exact hits — random
/// sessions almost never contain derivable pairs on their own.
pub(crate) const COARSE_PROBE: &str = "{A''.A1} on COLUMNS \
     {B''.B1} on ROWS \
     {C''.C1} on PAGES \
     CONTEXT ABCD FILTER (D.DD1);";

/// Fact rows appended for the invalidation phase.
pub const APPEND_ROWS: usize = 16;

/// Salt separating the append-row draws from every other stream.
const APPEND_SALT: u64 = 0xcac4_e5ee_d111_u64;

/// Tallies from one cache check, for the harness's sanity asserts.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCheck {
    /// Expressions in the generated session.
    pub expressions: usize,
    /// Individual cached-vs-reference row comparisons made.
    pub comparisons: u64,
    /// Exact cache hits across all replays.
    pub exact_hits: u64,
    /// Subsumption (rollup) hits across all replays.
    pub subsumption_hits: u64,
    /// Entries delta-patched in place by the append.
    pub patched: u64,
    /// Entries dropped because the append could not patch them.
    pub patch_drops: u64,
    /// Queries that degraded with a typed fault (fault checks only).
    pub degraded: usize,
}

/// Both the cached engine and its cache-less reference are built under the
/// seed's [`StorageProfile`], so warm replays, fault transparency, and
/// append freshness (which drives `append_facts` — sealed-page growth and
/// `BitmapJoinIndex::extend` — on compressed layouts) are swept across the
/// storage axis too.
fn engine(spec: PaperCubeSpec, cached: bool, seed: u64) -> starshare_core::Engine {
    StorageProfile::from_seed(seed)
        .apply(
            EngineConfig::paper()
                .optimizer(OptimizerKind::Tplo)
                .result_cache(cached),
        )
        .build_paper(spec)
}

pub(crate) fn run(
    e: &mut starshare_core::Engine,
    exprs: &[String],
) -> Result<WindowOutcome, Error> {
    e.mdx_window(
        &[exprs],
        OptimizerKind::Tplo,
        ExecStrategy::Morsel(MorselSpec::whole_table()),
    )
}

/// Deterministic append batch for `seed`: keys drawn within the leaf
/// cardinalities, measures quantized to quarter units like the generator's
/// (exact binary fractions keep rollup sums bit-stable).
fn append_rows(spec: PaperCubeSpec, seed: u64) -> Vec<(Vec<u32>, f64)> {
    let schema = paper_schema(spec.d_leaf);
    let cards: Vec<u32> = (0..schema.n_dims())
        .map(|d| schema.dim(d).cardinality(0))
        .collect();
    let mut rng = Prng::seed_from_u64(seed ^ APPEND_SALT);
    (0..APPEND_ROWS)
        .map(|_| {
            let key = cards.iter().map(|&c| rng.gen_range(0..c)).collect();
            (key, rng.gen_range(0u32..400) as f64 * 0.25)
        })
        .collect()
}

/// Compares cached expression outcomes against the cache-less reference's.
/// `faulted` relaxes the cached side to "bit-identical or typed fault".
/// (Shared with the `maintenance` differential, which tallies into its own
/// counters.)
pub(crate) fn compare(
    cached: &[starshare_core::Result<starshare_core::ExprOutcome>],
    reference: &[starshare_core::Result<starshare_core::ExprOutcome>],
    faulted: bool,
    label: &str,
    comparisons: &mut u64,
    degraded: &mut usize,
) -> Result<(), String> {
    for (xi, (c, r)) in cached.iter().zip(reference).enumerate() {
        let at = |d: &str| format!("{label} expression {xi}: {d}");
        let (c, r) = match (c, r) {
            (Ok(c), Ok(r)) => (c, r),
            (Err(Error::Fault(_)), _) if faulted => {
                *degraded += 1;
                continue;
            }
            (Err(a), Err(b)) => {
                if std::mem::discriminant(a) != std::mem::discriminant(b) {
                    return Err(at("error kind differs from the cache-less engine"));
                }
                continue;
            }
            (Err(e), Ok(_)) => return Err(at(&format!("cached run failed: {e}"))),
            (Ok(_), Err(e)) => return Err(at(&format!("reference run failed: {e}"))),
        };
        for (qi, (cr, rr)) in c.results.iter().zip(&r.results).enumerate() {
            match (cr, rr) {
                (Ok(cr), Ok(rr)) => {
                    *comparisons += 1;
                    if cr.rows.len() != rr.rows.len()
                        || cr
                            .rows
                            .iter()
                            .zip(&rr.rows)
                            .any(|((ck, cv), (rk, rv))| ck != rk || cv.to_bits() != rv.to_bits())
                    {
                        return Err(at(&format!(
                            "query {qi}: cached rows differ from the cache-less engine"
                        )));
                    }
                }
                (Err(Error::Fault(_)), _) if faulted => *degraded += 1,
                (Err(a), Err(b)) => {
                    if std::mem::discriminant(a) != std::mem::discriminant(b) {
                        return Err(at(&format!("query {qi}: error kind differs")));
                    }
                }
                (Err(e), Ok(_)) => return Err(at(&format!("query {qi}: cached failed: {e}"))),
                (Ok(_), Err(e)) => return Err(at(&format!("query {qi}: reference failed: {e}"))),
            }
        }
    }
    Ok(())
}

/// Checks all three cache properties for `seed`; `fault` arms the cached
/// engine's injector (the reference always runs clean).
pub fn check_cache_differential(
    spec: PaperCubeSpec,
    seed: u64,
    fault: Option<FaultPlan>,
) -> Result<CacheCheck, String> {
    let mut session = generate_session(&paper_schema(spec.d_leaf), seed);
    session.exprs.push(paper_query_text(1).to_string());
    session.exprs.push(COARSE_PROBE.to_string());
    let mut check = CacheCheck {
        expressions: session.exprs.len(),
        ..CacheCheck::default()
    };

    let mut reference = engine(spec, false, seed);
    let pre_ref = run(&mut reference, &session.exprs)
        .map_err(|e| format!("seed {seed}: reference run failed: {e}"))?;

    let mut cached = engine(spec, true, seed);
    if let Some(f) = fault {
        cached.inject_faults(f);
    }
    // Replay 0 submits one window per expression: later expressions can
    // then hit — exactly or by rollup — results the earlier ones just
    // cached (the one-window reference stays valid bit-for-bit because
    // windowed and solo answers are bit-identical under TPLO with
    // whole-table morsels; see `starshare_opt::window`).
    for (xi, expr) in session.exprs.iter().enumerate() {
        let label = format!("seed {seed} replay 0 window {xi}");
        match run(&mut cached, std::slice::from_ref(expr)) {
            Ok(out) => compare(
                out.submission(0),
                &pre_ref.submission(0)[xi..xi + 1],
                fault.is_some(),
                &label,
                &mut check.comparisons,
                &mut check.degraded,
            )?,
            Err(e) if fault.is_some() && e.is_fault() => check.degraded += 1,
            Err(e) => return Err(format!("{label}: cached run failed: {e}")),
        }
    }
    for replay in 1..CACHE_REPLAYS {
        let label = format!("seed {seed} replay {replay}");
        match run(&mut cached, &session.exprs) {
            Ok(out) => compare(
                out.submission(0),
                pre_ref.submission(0),
                fault.is_some(),
                &label,
                &mut check.comparisons,
                &mut check.degraded,
            )?,
            Err(e) if fault.is_some() && e.is_fault() => check.degraded += session.exprs.len(),
            Err(e) => return Err(format!("{label}: cached run failed: {e}")),
        }
    }

    // The append moves the cube's epoch on both engines; every cached
    // entry predates it and must be accounted for — delta-patched to the
    // new epoch or dropped as unpatchable, never silently carried stale.
    let rows = append_rows(spec, seed);
    reference
        .append_facts(&rows)
        .map_err(|e| format!("seed {seed}: reference append failed: {e}"))?;
    let filled = cached.cached_results();
    let out = cached
        .append_facts(&rows)
        .map_err(|e| format!("seed {seed}: cached append failed: {e}"))?;
    if out.cache.patched + out.cache.patch_drops + out.cache.invalidations != filled as u64 {
        return Err(format!(
            "seed {seed}: append accounted for {} + {} + {} of {filled} cached entries",
            out.cache.patched, out.cache.patch_drops, out.cache.invalidations
        ));
    }
    if fault.is_none() && filled > 0 && out.cache.patched == 0 {
        return Err(format!(
            "seed {seed}: cache held {filled} entries (incl. SUM queries) but the append patched none"
        ));
    }

    let post_ref = run(&mut reference, &session.exprs)
        .map_err(|e| format!("seed {seed}: post-append reference failed: {e}"))?;
    let label = format!("seed {seed} post-append");
    match run(&mut cached, &session.exprs) {
        Ok(out) => compare(
            out.submission(0),
            post_ref.submission(0),
            fault.is_some(),
            &label,
            &mut check.comparisons,
            &mut check.degraded,
        )?,
        Err(e) if fault.is_some() && e.is_fault() => check.degraded += session.exprs.len(),
        Err(e) => return Err(format!("{label}: cached run failed: {e}")),
    }

    let stats = cached.cache_stats();
    check.exact_hits = stats.exact_hits;
    check.subsumption_hits = stats.subsumption_hits;
    check.patched = stats.patched;
    check.patch_drops = stats.patch_drops;
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::harness_spec;

    #[test]
    fn warm_replays_match_the_cacheless_engine_across_seeds() {
        let (mut exact, mut rollups, mut patched) = (0u64, 0u64, 0u64);
        for seed in 0..6 {
            let check = check_cache_differential(harness_spec(), seed, None).unwrap();
            assert!(check.comparisons > 0, "seed {seed} compared nothing");
            exact += check.exact_hits;
            rollups += check.subsumption_hits;
            patched += check.patched;
        }
        assert!(exact > 0, "sweep never exact-hit the cache");
        assert!(rollups > 0, "sweep never exercised a subsumption rollup");
        assert!(patched > 0, "sweep never exercised delta patching");
    }

    #[test]
    fn faulted_replays_degrade_gracefully_or_match() {
        let mut degraded = 0usize;
        for seed in 0..6u64 {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(7919),
                transient: 0.05,
                poison: 0.01,
            };
            let check = check_cache_differential(harness_spec(), seed, Some(fault)).unwrap();
            degraded += check.degraded;
        }
        let _ = degraded; // rates are tuned to degrade sometimes, not always
    }
}
