//! The `testkit` binary: differential fuzzing and repro replay.
//!
//! ```text
//! testkit fuzz [--start N] [--count N] [--faults] [--fault-seeds N] [--out PATH]
//! testkit windows [--start N] [--count N] [--faults] [--telemetry-out BASE]
//! testkit cache [--start N] [--count N] [--faults]
//! testkit maintenance [--start N] [--count N] [--faults] [--out PATH]
//! testkit replay PATH
//! ```
//!
//! `fuzz` sweeps session seeds `start..start+count` through the
//! differential oracle (and, with `--faults`, through the fault-injection
//! harness). `windows` sweeps multi-session optimization windows: each
//! seed's submissions must answer bit-identically windowed and alone, and
//! (with `--faults`) one session's faults must never fail a window-mate.
//! `cache` sweeps the result-cache differential: each seed's session is
//! replayed on a cached engine — warm exact and subsumption hits,
//! optionally under injected faults, and across a delta-patched
//! `append_facts` epoch bump — and must stay bit-identical to a cache-less
//! engine throughout. `maintenance` sweeps the streaming-freshness
//! differential: a long-lived cached engine interleaves MDX rounds with
//! append batches (plus an atomically-rejected malformed append per
//! round) and must answer every round bit-identically to a fresh engine
//! replaying the append prefix from scratch. A `fuzz` or `maintenance`
//! failure is shrunk to a minimal case and written to `--out` (default
//! `testkit-repro.txt`) in the repro format; the process exits non-zero.
//! `replay` re-runs such a file and reports pass/fail — the loop a bug
//! report travels through. Every written repro comes with two telemetry
//! sidecars (`<out>.trace.jsonl`, `<out>.metrics.json`) from a
//! telemetry-armed replay of the minimized case, and `windows
//! --telemetry-out BASE` writes the same pair for one sweep seed so CI can
//! upload a span tree from a known-deterministic workload.

use std::process::ExitCode;

use starshare_core::{FaultPlan, OptimizerKind};
use starshare_testkit::{
    check_cache_differential, check_fault_isolation, check_maintenance_differential,
    check_windowed_vs_solo, dump_case_telemetry, dump_window_telemetry, format_case,
    generate_session, harness_spec, maintenance_case, parse_case, run_case, shrink, Case,
    FaultHarness, Oracle, StorageProfile,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => fuzz(&args[1..]),
        Some("windows") => windows(&args[1..]),
        Some("cache") => cache(&args[1..]),
        Some("maintenance") => maintenance(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => {
            eprintln!("usage: testkit fuzz [--start N] [--count N] [--faults] [--fault-seeds N] [--out PATH]");
            eprintln!(
                "       testkit windows [--start N] [--count N] [--faults] [--telemetry-out BASE]"
            );
            eprintln!("       testkit cache [--start N] [--count N] [--faults]");
            eprintln!("       testkit maintenance [--start N] [--count N] [--faults] [--out PATH]");
            eprintln!("       testkit replay PATH");
            ExitCode::from(2)
        }
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fuzz(args: &[String]) -> ExitCode {
    let start: u64 = arg_value(args, "--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let count: u64 = arg_value(args, "--count")
        .map(|v| v.parse().expect("--count takes a number"))
        .unwrap_or(50);
    let fault_seeds: u64 = arg_value(args, "--fault-seeds")
        .map(|v| v.parse().expect("--fault-seeds takes a number"))
        .unwrap_or(2);
    let with_faults = args.iter().any(|a| a == "--faults");
    let out_path = arg_value(args, "--out").unwrap_or_else(|| "testkit-repro.txt".to_string());

    let spec = harness_spec();
    let mut oracle = Oracle::new(spec);
    // One fault harness per storage profile; each session runs on its
    // seed's profile, so the sweep covers compressed indexes and heaps
    // under injection too.
    let mut harnesses = with_faults.then(|| {
        StorageProfile::ALL.map(|p| FaultHarness::with_storage(spec, OptimizerKind::Gg, p))
    });
    let mut degraded_total = 0usize;

    for seed in start..start + count {
        let session = generate_session(oracle.schema(), seed);
        if let Err(m) = oracle.check_session(&session, seed % 16 == 0) {
            eprintln!("differential failure: {m}");
            return shrink_and_write(
                Case {
                    spec,
                    seed,
                    exprs: session.exprs,
                    optimizer: m.optimizer,
                    threads: m.threads,
                    fault: FaultPlan::none(),
                    appends: Vec::new(),
                },
                &out_path,
            );
        }
        if let Some(hs) = &mut harnesses {
            let h = &mut hs[(seed % hs.len() as u64) as usize];
            for k in 0..fault_seeds {
                // Distinct fault stream per (session, k).
                let fault = FaultPlan::seeded(seed.wrapping_mul(1000) + k);
                let cmp = h.compare(&session, fault);
                degraded_total += cmp.n_degraded();
                if !cmp.ok() {
                    eprintln!(
                        "fault-contract failure (session {seed}, fault seed {}):",
                        fault.seed
                    );
                    for v in &cmp.violations {
                        eprintln!("  {v}");
                    }
                    return shrink_and_write(
                        Case {
                            spec,
                            seed,
                            exprs: session.exprs,
                            optimizer: OptimizerKind::Gg,
                            threads: 1,
                            fault,
                            appends: Vec::new(),
                        },
                        &out_path,
                    );
                }
            }
        }
    }
    let s = oracle.stats;
    println!(
        "ok: {} sessions, {} reference comparisons, {} determinism reruns, \
         {} storage-profile checks",
        s.sessions, s.comparisons, s.reruns, s.storage_checks
    );
    println!("kernel tiers exercised: {:?}", oracle.tiers_seen);
    if with_faults {
        println!(
            "fault sweeps: {fault_seeds} per session, {degraded_total} queries degraded gracefully"
        );
    }
    ExitCode::SUCCESS
}

/// The multi-session windowing sweep: windowed-vs-solo bit identity per
/// seed, plus (with `--faults`) cross-session fault isolation.
fn windows(args: &[String]) -> ExitCode {
    let start: u64 = arg_value(args, "--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let count: u64 = arg_value(args, "--count")
        .map(|v| v.parse().expect("--count takes a number"))
        .unwrap_or(25);
    let with_faults = args.iter().any(|a| a == "--faults");
    let telemetry_out = arg_value(args, "--telemetry-out");

    let spec = harness_spec();
    let (mut comparisons, mut cross, mut degraded) = (0u64, 0usize, 0usize);
    for seed in start..start + count {
        match check_windowed_vs_solo(spec, seed) {
            Ok(c) => {
                comparisons += c.comparisons;
                cross += c.cross_submission_classes;
            }
            Err(detail) => {
                eprintln!("windowing failure: {detail}");
                return ExitCode::FAILURE;
            }
        }
        if with_faults {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(7919),
                transient: 0.05,
                poison: 0.01,
            };
            match check_fault_isolation(spec, seed, fault) {
                Ok(c) => degraded += c.degraded,
                Err(detail) => {
                    eprintln!("fault-isolation failure: {detail}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "ok: {count} windows, {comparisons} windowed-vs-solo comparisons, {cross} cross-submission classes"
    );
    if with_faults {
        println!("fault isolation: {degraded} queries degraded, no window-mate harmed");
    }
    if let Some(base) = telemetry_out {
        // One telemetry-armed rerun of the first sweep seed: the artifact
        // CI uploads so every run has a browsable deterministic trace.
        match dump_window_telemetry(spec, start, &base) {
            Ok(a) => println!("telemetry: wrote {} and {}", a.trace_path, a.metrics_path),
            Err(e) => {
                eprintln!("telemetry dump failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The result-cache differential sweep: warm replays (and, with
/// `--faults`, faulted ones) plus an append-invalidation phase per seed,
/// all bit-compared against a cache-less engine.
fn cache(args: &[String]) -> ExitCode {
    let start: u64 = arg_value(args, "--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let count: u64 = arg_value(args, "--count")
        .map(|v| v.parse().expect("--count takes a number"))
        .unwrap_or(25);
    let with_faults = args.iter().any(|a| a == "--faults");

    let spec = harness_spec();
    let (mut comparisons, mut hits, mut rollups) = (0u64, 0u64, 0u64);
    let (mut patched, mut patch_drops, mut degraded) = (0u64, 0u64, 0usize);
    for seed in start..start + count {
        match check_cache_differential(spec, seed, None) {
            Ok(c) => {
                comparisons += c.comparisons;
                hits += c.exact_hits;
                rollups += c.subsumption_hits;
                patched += c.patched;
                patch_drops += c.patch_drops;
            }
            Err(detail) => {
                eprintln!("cache differential failure: {detail}");
                return ExitCode::FAILURE;
            }
        }
        if with_faults {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(7919),
                transient: 0.05,
                poison: 0.01,
            };
            match check_cache_differential(spec, seed, Some(fault)) {
                Ok(c) => degraded += c.degraded,
                Err(detail) => {
                    eprintln!("faulted cache differential failure: {detail}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "ok: {count} sessions, {comparisons} cached-vs-reference comparisons, \
         {hits} exact hits, {rollups} subsumption hits, \
         {patched} entries patched, {patch_drops} dropped as unpatchable"
    );
    if with_faults {
        println!("fault transparency: {degraded} queries degraded, none drifted");
    }
    ExitCode::SUCCESS
}

/// The streaming-freshness sweep: per seed, a long-lived cached engine
/// interleaves MDX rounds with append batches (and per-round malformed
/// appends that must bounce atomically), differentially checked against a
/// fresh from-scratch engine every round. The first failure is shrunk —
/// batches and rows included — and written as a repro.
fn maintenance(args: &[String]) -> ExitCode {
    let start: u64 = arg_value(args, "--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let count: u64 = arg_value(args, "--count")
        .map(|v| v.parse().expect("--count takes a number"))
        .unwrap_or(25);
    let with_faults = args.iter().any(|a| a == "--faults");
    let out_path = arg_value(args, "--out").unwrap_or_else(|| "testkit-repro.txt".to_string());

    let spec = harness_spec();
    let (mut comparisons, mut patched, mut drops) = (0u64, 0u64, 0u64);
    let (mut rejected, mut degraded) = (0u64, 0usize);
    for seed in start..start + count {
        match check_maintenance_differential(spec, seed, None) {
            Ok(c) => {
                comparisons += c.comparisons;
                patched += c.patched;
                drops += c.patch_drops;
                rejected += c.rejected_appends;
            }
            Err(detail) => {
                eprintln!("maintenance differential failure: {detail}");
                return shrink_and_write(maintenance_case(spec, seed, None), &out_path);
            }
        }
        if with_faults {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(7919),
                transient: 0.05,
                poison: 0.01,
            };
            match check_maintenance_differential(spec, seed, Some(fault)) {
                Ok(c) => degraded += c.degraded,
                Err(detail) => {
                    eprintln!("faulted maintenance differential failure: {detail}");
                    return shrink_and_write(maintenance_case(spec, seed, Some(fault)), &out_path);
                }
            }
        }
    }
    println!(
        "ok: {count} maintenance sessions, {comparisons} live-vs-fresh comparisons, \
         {patched} entries patched, {drops} dropped as unpatchable, \
         {rejected} malformed appends bounced"
    );
    if with_faults {
        println!("fault transparency: {degraded} queries degraded, none went stale");
    }
    ExitCode::SUCCESS
}

fn shrink_and_write(case: Case, out_path: &str) -> ExitCode {
    eprintln!("shrinking…");
    let min = shrink(&case, &mut |cand| run_case(cand).is_err());
    // The shrunk case must still fail; if the failure was flaky (it should
    // never be — everything is seeded), fall back to the original.
    let min = if run_case(&min).is_err() { min } else { case };
    let text = format_case(&min);
    eprintln!("--- minimized repro ---\n{text}-----------------------");
    match std::fs::write(out_path, &text) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    // Telemetry sidecars from a traced replay of the minimized case, so
    // the repro ships with the span tree that led up to the failure.
    match dump_case_telemetry(&min, out_path) {
        Ok(a) => eprintln!("telemetry: wrote {} and {}", a.trace_path, a.metrics_path),
        Err(e) => eprintln!("telemetry dump failed: {e}"),
    }
    ExitCode::FAILURE
}

fn replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: testkit replay PATH");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let case = match parse_case(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} expression(s), optimizer {:?}, {} thread(s), fault seed {}…",
        case.exprs.len(),
        case.optimizer,
        case.threads,
        case.fault.seed
    );
    match run_case(&case) {
        Ok(()) => {
            println!("replay PASSED: the engine honours its contract on this case");
            ExitCode::SUCCESS
        }
        Err(detail) => {
            println!("replay FAILED: {detail}");
            ExitCode::FAILURE
        }
    }
}
