//! The storage axis the differential sweeps vary: bitmap-index format ×
//! heap compression.
//!
//! Compression is an accounting-and-layout change, never a semantic one:
//! every profile must answer every session bit-identically to
//! [`Plain`](StorageProfile::Plain) — including under fault injection,
//! across appends (which exercise `BitmapJoinIndex::extend` and sealed-page
//! growth), and at every thread count. The harnesses pick a profile
//! deterministically from the case seed ([`from_seed`](StorageProfile::from_seed)),
//! so a sweep of N seeds covers all profiles and every repro names its
//! profile implicitly through the seed.

use starshare_core::{EngineConfig, IndexFormat};

/// One point on the storage axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageProfile {
    /// Plain member bitmaps, raw heap pages — the historical layout.
    #[default]
    Plain,
    /// Compressed member bitmaps, raw heap pages.
    CompressedIndex,
    /// Plain member bitmaps, compressed heap pages (+ zone-map pruning).
    CompressedHeap,
    /// Both compressed — the production layout.
    Compressed,
}

impl StorageProfile {
    /// Every profile, in sweep order.
    pub const ALL: [StorageProfile; 4] = [
        StorageProfile::Plain,
        StorageProfile::CompressedIndex,
        StorageProfile::CompressedHeap,
        StorageProfile::Compressed,
    ];

    /// The profile a seeded sweep uses for `seed` — a deterministic
    /// round-robin, so consecutive seeds cover all profiles.
    pub fn from_seed(seed: u64) -> Self {
        Self::ALL[(seed % Self::ALL.len() as u64) as usize]
    }

    /// Applies the profile to an engine configuration.
    pub fn apply(self, cfg: EngineConfig) -> EngineConfig {
        match self {
            StorageProfile::Plain => cfg,
            StorageProfile::CompressedIndex => cfg.index_format(IndexFormat::Compressed),
            StorageProfile::CompressedHeap => cfg.compression(true),
            StorageProfile::Compressed => {
                cfg.index_format(IndexFormat::Compressed).compression(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_round_robins_all_profiles() {
        let seen: std::collections::BTreeSet<_> = (0..8u64)
            .map(|s| format!("{:?}", StorageProfile::from_seed(s)))
            .collect();
        assert_eq!(seen.len(), StorageProfile::ALL.len());
    }

    #[test]
    fn apply_sets_the_expected_knobs() {
        let cfg = StorageProfile::Compressed.apply(EngineConfig::paper());
        assert!(cfg.compression);
        assert_eq!(cfg.index_format, IndexFormat::Compressed);
        let cfg = StorageProfile::Plain.apply(EngineConfig::paper());
        assert!(!cfg.compression);
        assert_eq!(cfg.index_format, IndexFormat::Plain);
    }
}
