//! Single-case replay: run one [`Case`] and judge it.
//!
//! This is the common executable core behind `testkit replay` and the
//! shrinker's `still_fails` predicate: build the case's cube and
//! configuration from scratch, run the session (with faults armed if the
//! case has a schedule), and check every per-query outcome — answered
//! queries must match [`reference_eval`] to 1e-9, failed queries must
//! carry the typed fault error and only exist when the injector actually
//! denied something.

use starshare_core::{reference_eval, EngineConfig, Error, QueryResult};

use crate::shrink::Case;
use crate::storage::StorageProfile;

/// Runs `case` once. `Ok(())` means the engine honoured its contract on
/// this case; `Err(detail)` is a human-readable account of the violation
/// (the thing a fuzz run shrinks against).
///
/// Cases carrying append batches are maintenance cases: they replay
/// through the freshness differential instead (see [`crate::maintenance`]),
/// so one repro format and one shrinker serve both harnesses.
pub fn run_case(case: &Case) -> Result<(), String> {
    if !case.appends.is_empty() {
        return crate::maintenance::run_maintenance_case(case);
    }
    // The case's storage profile is a function of its seed (the same
    // rotation every sweep uses), so a shrunk repro replays on the same
    // layout it failed under — shrinking keeps the seed.
    let mut engine = StorageProfile::from_seed(case.seed)
        .apply(
            EngineConfig::paper()
                .optimizer(case.optimizer)
                .threads(case.threads),
        )
        .build_paper(case.spec);

    // Expected answers, from the row-at-a-time reference.
    let mut expected: Vec<Vec<QueryResult>> = Vec::new();
    {
        let cube = engine.cube();
        let base = cube.catalog.base_table().ok_or("cube has no base table")?;
        for (xi, text) in case.exprs.iter().enumerate() {
            let expr = starshare_core::parse(text)
                .map_err(|e| format!("expression {xi} failed to parse: {e}"))?;
            let bound = starshare_core::bind(&cube.schema, &expr)
                .map_err(|e| format!("expression {xi} failed to bind: {e}"))?;
            expected.push(
                bound
                    .queries
                    .iter()
                    .map(|q| reference_eval(cube, base, q))
                    .collect(),
            );
        }
    }

    let faulted = !case.fault.is_none();
    if faulted {
        engine.inject_faults(case.fault);
    }
    let texts: Vec<&str> = case.exprs.iter().map(String::as_str).collect();
    let out = engine
        .mdx_many(&texts)
        .map_err(|e| format!("whole batch failed: {e}"))?;
    let stats = engine.clear_faults();

    let mut degraded = 0usize;
    for (xi, (outcome, exp)) in out.outcomes.iter().zip(&expected).enumerate() {
        let oc = outcome
            .as_ref()
            .map_err(|e| format!("expression {xi} failed: {e}"))?;
        if oc.results.len() != exp.len() {
            return Err(format!(
                "expression {xi}: {} results for {} queries",
                oc.results.len(),
                exp.len()
            ));
        }
        for (qi, (r, want)) in oc.results.iter().zip(exp).enumerate() {
            match r {
                Ok(r) => {
                    if !r.approx_eq(want, 1e-9) {
                        return Err(format!(
                            "expression {xi} query {qi}: answer disagrees with reference_eval"
                        ));
                    }
                }
                Err(e @ Error::Fault(_)) if faulted => {
                    degraded += 1;
                    let _ = e;
                }
                Err(e) => {
                    return Err(format!("expression {xi} query {qi}: unexpected error: {e}"));
                }
            }
        }
    }
    if let Some(stats) = stats {
        if degraded > 0 && stats.denials() == 0 {
            return Err(format!(
                "{degraded} queries degraded but the injector denied nothing"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::harness_spec;
    use crate::session::generate_session;
    use starshare_core::{paper_schema, FaultPlan, OptimizerKind};

    fn base_case(fault: FaultPlan) -> Case {
        let schema = paper_schema(24);
        let session = generate_session(&schema, 11);
        Case {
            spec: harness_spec(),
            seed: session.seed,
            exprs: session.exprs,
            optimizer: OptimizerKind::Gg,
            threads: 1,
            fault,
            appends: Vec::new(),
        }
    }

    #[test]
    fn clean_case_passes() {
        run_case(&base_case(FaultPlan::none())).unwrap();
    }

    #[test]
    fn faulted_case_still_honours_the_contract() {
        run_case(&base_case(FaultPlan::seeded(5))).unwrap();
    }

    #[test]
    fn malformed_expression_is_reported() {
        let mut c = base_case(FaultPlan::none());
        c.exprs = vec!["this is not MDX".to_string()];
        let e = run_case(&c).unwrap_err();
        assert!(e.contains("parse"), "{e}");
    }
}
