//! Automatic shrinking of failing cases.
//!
//! A fuzz failure arrives as a whole session (up to four expressions), a
//! fault schedule, and a configuration. Almost all of that is usually
//! irrelevant. [`shrink`] reduces the case while the caller-supplied
//! predicate keeps failing:
//!
//! 1. **expressions** — greedy one-at-a-time removal to a fixed point
//!    (delta debugging with subset size 1, which is where ddmin ends up
//!    anyway for lists this short);
//! 2. **configuration** — prefer `threads = 1` and the simplest optimizer
//!    that still fails;
//! 3. **fault schedule** — try dropping each fault family (transient,
//!    poison) entirely, then repeatedly halve the surviving rates.
//!
//! Every candidate evaluation replays deterministically from the case
//! alone, so the minimized `(seed, session, fault schedule)` triple *is*
//! the repro.

use starshare_core::{FaultPlan, OptimizerKind, PaperCubeSpec};

use crate::session::Session;

/// A fully replayable failing case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Cube the failure reproduces on.
    pub spec: PaperCubeSpec,
    /// Session-generator seed (kept for provenance even after the
    /// expression list is edited).
    pub seed: u64,
    /// The (possibly shrunk) expressions.
    pub exprs: Vec<String>,
    /// Configuration that failed.
    pub optimizer: OptimizerKind,
    /// Worker threads of the failing configuration.
    pub threads: usize,
    /// Fault schedule ([`FaultPlan::none`] for fault-free differential
    /// failures).
    pub fault: FaultPlan,
}

impl Case {
    /// The case's session view.
    pub fn session(&self) -> Session {
        Session {
            seed: self.seed,
            exprs: self.exprs.clone(),
        }
    }
}

/// How many halvings to attempt per fault rate before giving up.
const RATE_HALVINGS: u32 = 6;

/// Shrinks `case` while `still_fails` keeps returning `true` for the
/// candidate. Returns the smallest failing case found (at worst, `case`
/// itself). `still_fails` is never called with an empty expression list.
pub fn shrink(case: &Case, still_fails: &mut dyn FnMut(&Case) -> bool) -> Case {
    let mut best = case.clone();

    // 1. Expressions: drop one at a time until no single drop still fails.
    let mut progress = true;
    while progress && best.exprs.len() > 1 {
        progress = false;
        for i in (0..best.exprs.len()).rev() {
            if best.exprs.len() == 1 {
                break;
            }
            let mut cand = best.clone();
            cand.exprs.remove(i);
            if still_fails(&cand) {
                best = cand;
                progress = true;
            }
        }
    }

    // 2. Configuration: simplest first.
    if best.threads > 1 {
        let mut cand = best.clone();
        cand.threads = 1;
        if still_fails(&cand) {
            best = cand;
        }
    }
    if best.optimizer != OptimizerKind::Gg {
        let mut cand = best.clone();
        cand.optimizer = OptimizerKind::Gg;
        if still_fails(&cand) {
            best = cand;
        }
    }

    // 3. Fault schedule: drop whole families, then halve what's left.
    for zero in [
        (|p: &mut FaultPlan| p.transient = 0.0) as fn(&mut FaultPlan),
        |p| p.poison = 0.0,
    ] {
        let mut cand = best.clone();
        zero(&mut cand.fault);
        if cand.fault != best.fault && still_fails(&cand) {
            best = cand;
        }
    }
    for halve in [
        (|p: &mut FaultPlan| p.transient /= 2.0) as fn(&mut FaultPlan),
        |p| p.poison /= 2.0,
    ] {
        for _ in 0..RATE_HALVINGS {
            let mut cand = best.clone();
            halve(&mut cand.fault);
            if cand.fault == best.fault || !still_fails(&cand) {
                break;
            }
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(exprs: &[&str]) -> Case {
        Case {
            spec: crate::oracle::harness_spec(),
            seed: 3,
            exprs: exprs.iter().map(|s| s.to_string()).collect(),
            optimizer: OptimizerKind::Tplo,
            threads: 4,
            fault: FaultPlan::seeded(9),
        }
    }

    #[test]
    fn shrink_finds_the_single_guilty_expression() {
        let c = case(&["a", "b", "bad", "d"]);
        let mut trials = 0;
        let min = shrink(&c, &mut |cand| {
            trials += 1;
            assert!(!cand.exprs.is_empty());
            cand.exprs.iter().any(|e| e == "bad")
        });
        assert_eq!(min.exprs, vec!["bad".to_string()]);
        assert_eq!(min.threads, 1, "config shrinks too");
        assert_eq!(min.optimizer, OptimizerKind::Gg);
        assert!(trials > 0);
    }

    #[test]
    fn fault_schedule_shrinks_to_the_needed_family() {
        // Failure only needs poison faults: transient should drop to zero.
        let c = case(&["x"]);
        let min = shrink(&c, &mut |cand| cand.fault.poison > 0.0);
        assert_eq!(min.fault.transient, 0.0);
        assert!(min.fault.poison > 0.0);
        assert!(
            min.fault.poison < c.fault.poison,
            "rate halving should engage"
        );
    }

    #[test]
    fn unshrinkable_case_survives_intact() {
        let c = case(&["only"]);
        let min = shrink(&c, &mut |_| false);
        assert_eq!(min.exprs, c.exprs);
        assert_eq!(min.fault, c.fault);
        assert_eq!(min.threads, c.threads);
    }
}
