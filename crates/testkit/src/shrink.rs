//! Automatic shrinking of failing cases.
//!
//! A fuzz failure arrives as a whole session (up to four expressions), a
//! fault schedule, and a configuration. Almost all of that is usually
//! irrelevant. [`shrink`] reduces the case while the caller-supplied
//! predicate keeps failing:
//!
//! 1. **expressions** — greedy one-at-a-time removal to a fixed point
//!    (delta debugging with subset size 1, which is where ddmin ends up
//!    anyway for lists this short);
//! 2. **append batches** — for maintenance cases, greedy removal of whole
//!    batches to a fixed point, then one reverse pass of row removal per
//!    surviving batch (row lists are long and every trial replays the full
//!    differential, so the row pass is bounded rather than iterated);
//! 3. **configuration** — prefer `threads = 1` and the simplest optimizer
//!    that still fails;
//! 4. **fault schedule** — try dropping each fault family (transient,
//!    poison) entirely, then repeatedly halve the surviving rates.
//!
//! Every candidate evaluation replays deterministically from the case
//! alone, so the minimized `(seed, session, fault schedule)` triple *is*
//! the repro.

use starshare_core::{FaultPlan, OptimizerKind, PaperCubeSpec};

use crate::session::Session;

/// A fully replayable failing case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Cube the failure reproduces on.
    pub spec: PaperCubeSpec,
    /// Session-generator seed (kept for provenance even after the
    /// expression list is edited).
    pub seed: u64,
    /// The (possibly shrunk) expressions.
    pub exprs: Vec<String>,
    /// Configuration that failed.
    pub optimizer: OptimizerKind,
    /// Worker threads of the failing configuration.
    pub threads: usize,
    /// Fault schedule ([`FaultPlan::none`] for fault-free differential
    /// failures).
    pub fault: FaultPlan,
    /// Append batches interleaved with session replays (empty for
    /// pure-query cases): batch `i` lands before replay round `i + 1` in
    /// the maintenance differential, which a non-empty list routes
    /// [`run_case`](crate::run_case) through.
    pub appends: Vec<Vec<(Vec<u32>, f64)>>,
}

impl Case {
    /// The case's session view.
    pub fn session(&self) -> Session {
        Session {
            seed: self.seed,
            exprs: self.exprs.clone(),
        }
    }
}

/// How many halvings to attempt per fault rate before giving up.
const RATE_HALVINGS: u32 = 6;

/// Shrinks `case` while `still_fails` keeps returning `true` for the
/// candidate. Returns the smallest failing case found (at worst, `case`
/// itself). `still_fails` is never called with an empty expression list.
pub fn shrink(case: &Case, still_fails: &mut dyn FnMut(&Case) -> bool) -> Case {
    let mut best = case.clone();

    // 1. Expressions: drop one at a time until no single drop still fails.
    let mut progress = true;
    while progress && best.exprs.len() > 1 {
        progress = false;
        for i in (0..best.exprs.len()).rev() {
            if best.exprs.len() == 1 {
                break;
            }
            let mut cand = best.clone();
            cand.exprs.remove(i);
            if still_fails(&cand) {
                best = cand;
                progress = true;
            }
        }
    }

    // 2. Append batches: whole batches to a fixed point, then one bounded
    // reverse pass of row removal per surviving batch.
    let mut progress = true;
    while progress && !best.appends.is_empty() {
        progress = false;
        for i in (0..best.appends.len()).rev() {
            if i >= best.appends.len() {
                continue;
            }
            let mut cand = best.clone();
            cand.appends.remove(i);
            if still_fails(&cand) {
                best = cand;
                progress = true;
            }
        }
    }
    for b in 0..best.appends.len() {
        let mut i = best.appends[b].len();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.appends[b].remove(i);
            if still_fails(&cand) {
                best = cand;
            }
        }
    }

    // 3. Configuration: simplest first.
    if best.threads > 1 {
        let mut cand = best.clone();
        cand.threads = 1;
        if still_fails(&cand) {
            best = cand;
        }
    }
    if best.optimizer != OptimizerKind::Gg {
        let mut cand = best.clone();
        cand.optimizer = OptimizerKind::Gg;
        if still_fails(&cand) {
            best = cand;
        }
    }

    // 4. Fault schedule: drop whole families, then halve what's left.
    for zero in [
        (|p: &mut FaultPlan| p.transient = 0.0) as fn(&mut FaultPlan),
        |p| p.poison = 0.0,
    ] {
        let mut cand = best.clone();
        zero(&mut cand.fault);
        if cand.fault != best.fault && still_fails(&cand) {
            best = cand;
        }
    }
    for halve in [
        (|p: &mut FaultPlan| p.transient /= 2.0) as fn(&mut FaultPlan),
        |p| p.poison /= 2.0,
    ] {
        for _ in 0..RATE_HALVINGS {
            let mut cand = best.clone();
            halve(&mut cand.fault);
            if cand.fault == best.fault || !still_fails(&cand) {
                break;
            }
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(exprs: &[&str]) -> Case {
        Case {
            spec: crate::oracle::harness_spec(),
            seed: 3,
            exprs: exprs.iter().map(|s| s.to_string()).collect(),
            optimizer: OptimizerKind::Tplo,
            threads: 4,
            fault: FaultPlan::seeded(9),
            appends: Vec::new(),
        }
    }

    #[test]
    fn shrink_finds_the_single_guilty_expression() {
        let c = case(&["a", "b", "bad", "d"]);
        let mut trials = 0;
        let min = shrink(&c, &mut |cand| {
            trials += 1;
            assert!(!cand.exprs.is_empty());
            cand.exprs.iter().any(|e| e == "bad")
        });
        assert_eq!(min.exprs, vec!["bad".to_string()]);
        assert_eq!(min.threads, 1, "config shrinks too");
        assert_eq!(min.optimizer, OptimizerKind::Gg);
        assert!(trials > 0);
    }

    #[test]
    fn fault_schedule_shrinks_to_the_needed_family() {
        // Failure only needs poison faults: transient should drop to zero.
        let c = case(&["x"]);
        let min = shrink(&c, &mut |cand| cand.fault.poison > 0.0);
        assert_eq!(min.fault.transient, 0.0);
        assert!(min.fault.poison > 0.0);
        assert!(
            min.fault.poison < c.fault.poison,
            "rate halving should engage"
        );
    }

    #[test]
    fn append_batches_shrink_to_the_guilty_row() {
        let mut c = case(&["x"]);
        c.appends = vec![
            vec![(vec![0, 0, 0, 0], 1.0), (vec![1, 1, 1, 1], 2.0)],
            vec![(vec![2, 2, 2, 2], 7.25), (vec![3, 3, 3, 3], 4.0)],
            vec![(vec![5, 5, 5, 5], 5.0)],
        ];
        let min = shrink(&c, &mut |cand| {
            cand.appends
                .iter()
                .flatten()
                .any(|(_, m)| m.to_bits() == 7.25f64.to_bits())
        });
        assert_eq!(min.appends, vec![vec![(vec![2, 2, 2, 2], 7.25)]]);
    }

    #[test]
    fn unshrinkable_case_survives_intact() {
        let c = case(&["only"]);
        let min = shrink(&c, &mut |_| false);
        assert_eq!(min.exprs, c.exprs);
        assert_eq!(min.fault, c.fault);
        assert_eq!(min.threads, c.threads);
    }
}
