//! The multi-session windowing check: windowed results must be
//! bit-identical to solo runs, and one session's faults must stay its own.
//!
//! Two properties of [`Engine::mdx_window`] (the serving layer's engine
//! entry point) are checked, both against randomly generated co-tenants:
//!
//! 1. **Differential bit-identity** — for every generated submission, its
//!    per-query result rows *and* its attributed (solo-priced) cost are
//!    bitwise equal whether the submission runs alone or windowed with
//!    random window-mates. This is the serving determinism contract:
//!    TPLO's assignments are co-tenant independent and whole-table morsels
//!    pin float summation order (see `starshare_opt::window`).
//! 2. **Fault isolation** — under an injected fault schedule, a query
//!    either answers bit-identically to the clean solo run or degrades
//!    with the typed fault error; a window-mate of a faulted submission
//!    never fails on its behalf.
//!
//! [`Engine::mdx_window`]: starshare_core::Engine::mdx_window

use starshare_core::{
    EngineConfig, Error, ExecStrategy, FaultPlan, MorselSpec, OptimizerKind, PaperCubeSpec,
    WindowOutcome,
};
use starshare_prng::Prng;

use crate::session::generate_session;
use crate::storage::StorageProfile;

/// Submissions per generated window, inclusive bounds.
pub const MIN_SUBMISSIONS: usize = 2;
pub const MAX_SUBMISSIONS: usize = 4;

/// Salt separating window-composition draws from every other stream.
const WINDOW_SALT: u64 = 0x77d0_3a1c_9e55_u64;

/// Tallies from one windowing check, for the harness's sanity asserts.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowCheck {
    /// Submissions pooled into the window.
    pub submissions: usize,
    /// Queries across the window.
    pub queries: usize,
    /// Classes fed by more than one submission.
    pub cross_submission_classes: usize,
    /// Individual windowed-vs-solo comparisons made.
    pub comparisons: u64,
    /// Queries that degraded with a typed fault (fault checks only).
    pub degraded: usize,
}

fn window_strategy() -> ExecStrategy {
    ExecStrategy::Morsel(MorselSpec::whole_table())
}

/// Every engine in one seed's check — solo twins and the shared window —
/// is built under the seed's [`StorageProfile`], so the windowing
/// bit-identity and fault-isolation contracts are swept across compressed
/// indexes and compressed, zone-pruned heaps too.
fn engine(spec: PaperCubeSpec, seed: u64) -> starshare_core::Engine {
    StorageProfile::from_seed(seed)
        .apply(EngineConfig::paper().optimizer(OptimizerKind::Tplo))
        .build_paper(spec)
}

/// Generates the window composition for `seed`: 2–4 sessions, each from
/// its own derived seed.
pub(crate) fn generate_window(spec: PaperCubeSpec, seed: u64) -> Vec<Vec<String>> {
    let schema = starshare_core::paper_schema(spec.d_leaf);
    let mut rng = Prng::seed_from_u64(seed ^ WINDOW_SALT);
    let n = rng.gen_range(MIN_SUBMISSIONS..=MAX_SUBMISSIONS);
    (0..n)
        .map(|k| generate_session(&schema, seed.wrapping_mul(31).wrapping_add(k as u64)).exprs)
        .collect()
}

fn run_window(
    e: &mut starshare_core::Engine,
    submissions: &[Vec<String>],
) -> Result<WindowOutcome, String> {
    let slices: Vec<&[String]> = submissions.iter().map(Vec::as_slice).collect();
    e.mdx_window(&slices, OptimizerKind::Tplo, window_strategy())
        .map_err(|e| format!("window failed: {e}"))
}

/// Checks property 1 for `seed`: every submission of a generated window is
/// bit-identical (rows and attributed cost) to running it alone.
pub fn check_windowed_vs_solo(spec: PaperCubeSpec, seed: u64) -> Result<WindowCheck, String> {
    let submissions = generate_window(spec, seed);
    let mut e = engine(spec, seed);
    let windowed = run_window(&mut e, &submissions)?;

    let mut check = WindowCheck {
        submissions: submissions.len(),
        queries: windowed.sharing.n_queries,
        cross_submission_classes: windowed.sharing.cross_submission_classes,
        ..WindowCheck::default()
    };

    for (si, sub) in submissions.iter().enumerate() {
        // Fresh engine per solo run: cold pool, same cube bits.
        let mut solo_engine = engine(spec, seed);
        let solo = run_window(&mut solo_engine, std::slice::from_ref(sub))
            .map_err(|e| format!("submission {si} alone: {e}"))?;
        if windowed.attributed[si] != solo.attributed[0] {
            return Err(format!(
                "seed {seed} submission {si}: attributed cost depends on window-mates \
                 ({} windowed vs {} alone)",
                windowed.attributed[si], solo.attributed[0]
            ));
        }
        let w_exprs = windowed.submission(si);
        let s_exprs = solo.submission(0);
        for (xi, (w, s)) in w_exprs.iter().zip(s_exprs).enumerate() {
            let at = |d: &str| format!("seed {seed} submission {si} expression {xi}: {d}");
            match (w, s) {
                (Ok(w), Ok(s)) => {
                    for (qi, (wr, sr)) in w.results.iter().zip(&s.results).enumerate() {
                        let (wr, sr) = match (wr, sr) {
                            (Ok(w), Ok(s)) => (w, s),
                            _ => return Err(at(&format!("query {qi}: Ok/Err flip"))),
                        };
                        check.comparisons += 1;
                        if wr.rows != sr.rows {
                            return Err(at(&format!(
                                "query {qi}: windowed rows differ from solo rows"
                            )));
                        }
                    }
                }
                (Err(a), Err(b)) => {
                    // Parse/bind failures must at least agree in kind.
                    if std::mem::discriminant(a) != std::mem::discriminant(b) {
                        return Err(at("error kind flipped under windowing"));
                    }
                }
                _ => return Err(at("outcome flipped Ok/Err under windowing")),
            }
        }
    }
    Ok(check)
}

/// Checks property 2 for `seed`: under `fault`, a windowed query either
/// answers bit-identically to its clean solo run or carries the typed
/// fault error — window-mates of faulted submissions still answer.
pub fn check_fault_isolation(
    spec: PaperCubeSpec,
    seed: u64,
    fault: FaultPlan,
) -> Result<WindowCheck, String> {
    let submissions = generate_window(spec, seed);

    // Clean solo reference rows per submission.
    let mut clean: Vec<WindowOutcome> = Vec::new();
    for sub in &submissions {
        let mut e = engine(spec, seed);
        clean.push(run_window(&mut e, std::slice::from_ref(sub))?);
    }

    let mut e = engine(spec, seed);
    e.inject_faults(fault);
    let windowed = run_window(&mut e, &submissions)?;
    let stats = e.clear_faults().expect("injector was armed");

    let mut check = WindowCheck {
        submissions: submissions.len(),
        queries: windowed.sharing.n_queries,
        cross_submission_classes: windowed.sharing.cross_submission_classes,
        ..WindowCheck::default()
    };

    for (si, reference) in clean.iter().enumerate() {
        for (xi, (w, s)) in windowed
            .submission(si)
            .iter()
            .zip(reference.submission(0))
            .enumerate()
        {
            let at = |d: &str| format!("seed {seed} submission {si} expression {xi}: {d}");
            let (w, s) = match (w, s) {
                (Ok(w), Ok(s)) => (w, s),
                (Err(Error::Fault(_)), _) => {
                    check.degraded += 1;
                    continue;
                }
                (Err(e), _) => return Err(at(&format!("non-fault failure under faults: {e}"))),
                (Ok(_), Err(e)) => return Err(at(&format!("clean run failed: {e}"))),
            };
            for (qi, (wr, sr)) in w.results.iter().zip(&s.results).enumerate() {
                match wr {
                    Ok(wr) => {
                        let sr = sr
                            .as_ref()
                            .map_err(|e| at(&format!("clean run failed: {e}")))?;
                        check.comparisons += 1;
                        if wr.rows != sr.rows {
                            return Err(at(&format!(
                                "query {qi}: surviving rows differ from the clean run"
                            )));
                        }
                    }
                    Err(Error::Fault(_)) => check.degraded += 1,
                    Err(e) => {
                        return Err(at(&format!("query {qi}: degraded with a non-fault: {e}")))
                    }
                }
            }
        }
    }
    if check.degraded > 0 && stats.denials() == 0 {
        return Err(format!(
            "seed {seed}: {} queries degraded but the injector denied nothing",
            check.degraded
        ));
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::harness_spec;

    #[test]
    fn windowed_matches_solo_across_seeds() {
        let mut cross = 0usize;
        for seed in 0..6 {
            let check = check_windowed_vs_solo(harness_spec(), seed).unwrap();
            assert!(check.comparisons > 0, "seed {seed} compared nothing");
            cross += check.cross_submission_classes;
        }
        // Random sessions overlap often enough that the sweep must have
        // exercised genuine cross-submission sharing somewhere.
        assert!(cross > 0, "sweep never produced a cross-submission class");
    }

    #[test]
    fn faults_stay_inside_their_submission() {
        let mut degraded = 0usize;
        for seed in 0..6u64 {
            let fault = FaultPlan {
                seed: seed.wrapping_mul(7919),
                transient: 0.05,
                poison: 0.01,
            };
            let check = check_fault_isolation(harness_spec(), seed, fault).unwrap();
            degraded += check.degraded;
        }
        let _ = degraded; // rates are tuned to degrade sometimes, not always
    }
}
