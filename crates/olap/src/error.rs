//! The OLAP layer's error type.

use std::fmt;

/// An error from the OLAP data-model layer: group-by parsing, catalog
/// lookups, or incremental maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OlapError(String);

impl OlapError {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> Self {
        OlapError(msg.into())
    }
}

impl fmt::Display for OlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for OlapError {}

impl From<String> for OlapError {
    fn from(msg: String) -> Self {
        OlapError(msg)
    }
}

impl From<&str> for OlapError {
    fn from(msg: &str) -> Self {
        OlapError(msg.to_string())
    }
}
