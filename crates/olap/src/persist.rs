//! Cube snapshots: save a built cube to a file and load it back.
//!
//! Building the paper-scale cube (generate 2 M rows, aggregate four views,
//! build eight bitmap join indexes) takes on the order of a minute;
//! experiment harnesses and the CLI snapshot it once and reload in seconds.
//!
//! Format (`STARSHR1`, little-endian throughout): schema (dimensions,
//! levels, member names), then each stored table's metadata and raw tuple
//! bytes. **Bitmap join indexes are not serialized** — they are rebuilt at
//! load time from the heap (cheap relative to I/O, and it keeps the format
//! independent of the index representation). File ids are preserved so
//! buffer-pool accounting is identical before and after a round trip.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use starshare_storage::{FileId, HeapFile, TupleLayout};

use crate::catalog::{Catalog, Cube, MeasureKind, StoredTable};
use crate::query::{AggFn, GroupBy, LevelRef};
use crate::schema::{Dimension, LevelDef, StarSchema};

const MAGIC: &[u8; 8] = b"STARSHR1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(bad("unreasonable string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid utf-8 in string"))
}

fn agg_code(a: AggFn) -> u8 {
    match a {
        AggFn::Sum => 0,
        AggFn::Count => 1,
        AggFn::Min => 2,
        AggFn::Max => 3,
        AggFn::Avg => 4,
    }
}

fn agg_from(code: u8) -> io::Result<AggFn> {
    Ok(match code {
        0 => AggFn::Sum,
        1 => AggFn::Count,
        2 => AggFn::Min,
        3 => AggFn::Max,
        4 => AggFn::Avg,
        _ => return Err(bad(format!("bad aggregate code {code}"))),
    })
}

/// Saves `cube` to `path`.
pub fn save_cube(cube: &Cube, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;

    // Schema.
    let schema = &cube.schema;
    write_u32(&mut w, schema.n_dims() as u32)?;
    for dim in schema.dimensions() {
        write_str(&mut w, dim.name())?;
        write_u32(&mut w, dim.n_levels() as u32)?;
        for l in 0..dim.n_levels() {
            let def = dim.level(l);
            write_str(&mut w, &def.name)?;
            write_u32(&mut w, def.cardinality)?;
            match &def.member_names {
                None => write_u8(&mut w, 0)?,
                Some(names) => {
                    write_u8(&mut w, 1)?;
                    for n in names {
                        write_str(&mut w, n)?;
                    }
                }
            }
        }
    }
    write_str(&mut w, schema.measure_name())?;
    write_u8(&mut w, cube.stats.is_some() as u8)?;

    // Tables.
    write_u32(&mut w, cube.catalog.n_tables() as u32)?;
    for (_, t) in cube.catalog.iter() {
        write_str(&mut w, t.name())?;
        for d in 0..schema.n_dims() {
            match t.group_by().level(d) {
                LevelRef::Level(l) => write_u8(&mut w, l)?,
                LevelRef::All => write_u8(&mut w, 255)?,
            }
        }
        match t.measure() {
            MeasureKind::Raw => write_u8(&mut w, 255)?,
            MeasureKind::Aggregated(a) => write_u8(&mut w, agg_code(a))?,
        }
        write_u32(&mut w, t.heap().file_id().index())?;
        write_u64(&mut w, t.n_rows())?;
        let mut keys = vec![0u32; schema.n_dims()];
        for pos in 0..t.n_rows() {
            let m = t.heap().read_at(pos, &mut keys);
            for &k in &keys {
                write_u32(&mut w, k)?;
            }
            write_f64(&mut w, m)?;
        }
        // Index metadata: (present, level, file id) per dimension.
        for d in 0..schema.n_dims() {
            match t.index(d) {
                None => write_u8(&mut w, 0)?,
                Some(ix) => {
                    write_u8(&mut w, 1)?;
                    write_u8(&mut w, ix.level)?;
                    write_u32(&mut w, ix.index.file_id().index())?;
                }
            }
        }
    }
    w.flush()
}

/// Loads a cube previously written by [`save_cube`], rebuilding its bitmap
/// join indexes.
pub fn load_cube(path: impl AsRef<Path>) -> io::Result<Cube> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a starshare cube file"));
    }

    // Schema.
    let n_dims = read_u32(&mut r)? as usize;
    if n_dims == 0 || n_dims > 64 {
        return Err(bad("unreasonable dimension count"));
    }
    let mut dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        let name = read_str(&mut r)?;
        let n_levels = read_u32(&mut r)? as usize;
        if n_levels == 0 || n_levels > 32 {
            return Err(bad("unreasonable level count"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let lname = read_str(&mut r)?;
            let cardinality = read_u32(&mut r)?;
            let member_names = match read_u8(&mut r)? {
                0 => None,
                1 => {
                    let mut names = Vec::with_capacity(cardinality as usize);
                    for _ in 0..cardinality {
                        names.push(read_str(&mut r)?);
                    }
                    Some(names)
                }
                other => return Err(bad(format!("bad member-name flag {other}"))),
            };
            levels.push(LevelDef {
                name: lname,
                cardinality,
                member_names,
            });
        }
        dims.push(Dimension::new(name, levels));
    }
    let measure_name = read_str(&mut r)?;
    let schema = StarSchema::new(dims, measure_name);
    let has_stats = read_u8(&mut r)? == 1;

    // Tables.
    let n_tables = read_u32(&mut r)? as usize;
    let mut catalog = Catalog::new();
    let mut max_file = 0u32;
    struct PendingIndex {
        dim: usize,
        level: u8,
        file: FileId,
    }
    let mut pending: Vec<(usize, Vec<PendingIndex>)> = Vec::new();
    for ti in 0..n_tables {
        let name = read_str(&mut r)?;
        let mut levels = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            levels.push(match read_u8(&mut r)? {
                255 => LevelRef::All,
                l => LevelRef::Level(l),
            });
        }
        let measure = match read_u8(&mut r)? {
            255 => MeasureKind::Raw,
            code => MeasureKind::Aggregated(agg_from(code)?),
        };
        let file = FileId(read_u32(&mut r)?);
        max_file = max_file.max(file.index());
        let n_rows = read_u64(&mut r)?;
        let mut heap = HeapFile::new(file, TupleLayout::new(n_dims));
        let mut keys = vec![0u32; n_dims];
        for _ in 0..n_rows {
            for k in keys.iter_mut() {
                *k = read_u32(&mut r)?;
            }
            let m = read_f64(&mut r)?;
            heap.append(&keys, m);
        }
        let table = StoredTable::with_measure(name, GroupBy::new(levels), heap, measure);
        let mut idxs = Vec::new();
        for d in 0..n_dims {
            if read_u8(&mut r)? == 1 {
                let level = read_u8(&mut r)?;
                let file = FileId(read_u32(&mut r)?);
                max_file = max_file.max(file.index());
                idxs.push(PendingIndex {
                    dim: d,
                    level,
                    file,
                });
            }
        }
        catalog.add_table(table);
        pending.push((ti, idxs));
    }
    // Rebuild indexes.
    for (ti, idxs) in pending {
        for p in idxs {
            catalog
                .table_mut(crate::catalog::TableId(ti))
                .build_index(&schema, p.dim, p.level, p.file);
        }
    }
    catalog.ensure_file_watermark(max_file + 1);
    let mut cube = Cube::new(schema, catalog);
    if has_stats {
        cube.collect_stats();
    }
    Ok(cube)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{paper_cube, PaperCubeSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("starshare-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn cube_round_trips_exactly() {
        let cube = paper_cube(PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 31,
            with_indexes: true,
        });
        let path = tmp("roundtrip.ss");
        save_cube(&cube, &path).unwrap();
        let loaded = load_cube(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.schema.n_dims(), cube.schema.n_dims());
        assert_eq!(loaded.catalog.n_tables(), cube.catalog.n_tables());
        for ((_, a), (_, b)) in cube.catalog.iter().zip(loaded.catalog.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.group_by(), b.group_by());
            assert_eq!(a.measure(), b.measure());
            assert_eq!(a.n_rows(), b.n_rows());
            assert_eq!(a.heap().file_id(), b.heap().file_id());
            let mut k1 = vec![0u32; 4];
            let mut k2 = vec![0u32; 4];
            for pos in 0..a.n_rows() {
                let m1 = a.heap().read_at(pos, &mut k1);
                let m2 = b.heap().read_at(pos, &mut k2);
                assert_eq!(k1, k2, "{} row {pos}", a.name());
                assert_eq!(m1.to_bits(), m2.to_bits(), "{} row {pos}", a.name());
            }
            // Indexes rebuilt identically.
            for d in 0..4 {
                match (a.index(d), b.index(d)) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.level, y.level);
                        assert_eq!(x.index.file_id(), y.index.file_id());
                        assert_eq!(x.index.n_members(), y.index.n_members());
                        for m in x.index.members() {
                            assert_eq!(x.index.peek(m), y.index.peek(m));
                        }
                    }
                    _ => panic!("index presence differs on {} dim {d}", a.name()),
                }
            }
        }
    }

    #[test]
    fn loaded_cube_allocates_fresh_file_ids() {
        let cube = paper_cube(PaperCubeSpec {
            base_rows: 100,
            d_leaf: 24,
            seed: 1,
            with_indexes: true,
        });
        let path = tmp("watermark.ss");
        save_cube(&cube, &path).unwrap();
        let mut loaded = load_cube(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let fresh = loaded.catalog.alloc_file_id();
        for (_, t) in loaded.catalog.iter() {
            assert_ne!(t.heap().file_id(), fresh);
            for d in 0..4 {
                if let Some(ix) = t.index(d) {
                    assert_ne!(ix.index.file_id(), fresh);
                }
            }
        }
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage.ss");
        std::fs::write(&path, b"definitely not a cube").unwrap();
        let r = load_cube(&path);
        std::fs::remove_file(&path).ok();
        assert!(r.is_err());
        assert!(load_cube(tmp("missing.ss")).is_err());
    }

    #[test]
    fn preserves_explicit_member_names() {
        use crate::datagen::CubeBuilder;
        use crate::schema::Dimension;
        let schema = StarSchema::new(
            vec![Dimension::new(
                "T",
                vec![
                    LevelDef {
                        name: "Month".into(),
                        cardinality: 4,
                        member_names: Some(
                            ["Jan", "Feb", "Mar", "Apr"]
                                .iter()
                                .map(|s| s.to_string())
                                .collect(),
                        ),
                    },
                    LevelDef {
                        name: "Half".into(),
                        cardinality: 2,
                        member_names: None,
                    },
                ],
            )],
            "m",
        );
        let cube = CubeBuilder::new(schema).rows(50).seed(2).build();
        let path = tmp("names.ss");
        save_cube(&cube, &path).unwrap();
        let loaded = load_cube(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.schema.dim(0).member_name(0, 1), "Feb");
        assert_eq!(loaded.schema.dim(0).member_by_name(0, "Apr"), Some(3));
        assert_eq!(loaded.schema.dim(0).member_name(1, 0), "T1");
    }
}
