//! Incremental maintenance of materialized group-bys.
//!
//! The paper positions itself next to "efficient schemes for creating and
//! maintaining precomputed group-bys"; this module supplies the
//! maintenance half for the append-only OLAP setting: [`append_facts`]
//! adds new rows to the base table and propagates the delta to
//!
//! * every materialized view — by aggregating only the *delta* to each
//!   view's group-by and merging it in (existing groups are updated in
//!   place, new groups appended), which is sound for SUM/COUNT views
//!   always and for MIN/MAX views under insert-only workloads;
//! * every bitmap join index — bitmaps grow and the new tail is indexed;
//! * the optional statistics — histogram counts absorb the delta.
//!
//! Deletions and updates are out of scope (the engine's tables are
//! append-only by design); a deleting workload would need either
//! re-aggregation or the classic summary-delta method with counts.

use std::collections::HashMap;

use crate::catalog::{combine_mode, roll_key, AggState, Cube, MeasureKind};
use crate::error::OlapError;
use crate::query::AggFn;
use crate::stats::CubeStats;

/// Appends `rows` (leaf-level keys + raw measure) to the cube's base table
/// and incrementally maintains every view, index, and statistic.
///
/// Returns the number of rows appended. Fails (without modifying anything)
/// if any key is out of range or the catalog lacks a leaf-level raw base
/// table.
pub fn append_facts(cube: &mut Cube, rows: &[(Vec<u32>, f64)]) -> Result<u64, OlapError> {
    let schema = &cube.schema;
    let n_dims = schema.n_dims();
    // Validate before mutating.
    for (keys, _) in rows {
        if keys.len() != n_dims {
            return Err(OlapError::new(format!(
                "row has {} keys; schema has {n_dims} dimensions",
                keys.len()
            )));
        }
        for (d, &k) in keys.iter().enumerate() {
            if k >= schema.dim(d).cardinality(0) {
                return Err(OlapError::new(format!(
                    "key {k} out of range for dimension {}",
                    schema.dim(d).name()
                )));
            }
        }
    }
    let base_id = cube
        .catalog
        .base_table()
        .ok_or("catalog has no base table")?;
    if cube.catalog.table(base_id).measure() != MeasureKind::Raw {
        return Err("base table must hold raw measures".into());
    }

    // 1. Append to the base heap and extend its indexes.
    {
        let schema = cube.schema.clone();
        let base = cube.catalog.table_mut(base_id);
        for (keys, m) in rows {
            base.heap_mut().append(keys, *m);
        }
        base.extend_indexes(&schema);
    }

    // 2. Delta-maintain every view.
    let view_ids: Vec<_> = cube
        .catalog
        .iter()
        .filter(|(id, _)| *id != base_id)
        .map(|(id, _)| id)
        .collect();
    for vid in view_ids {
        let schema = cube.schema.clone();
        let view = cube.catalog.table_mut(vid);
        let MeasureKind::Aggregated(agg) = view.measure() else {
            return Err(OlapError::new(format!(
                "view {} is not aggregated",
                view.name()
            )));
        };
        if agg == AggFn::Avg {
            return Err("AVG views cannot be maintained (or built)".into());
        }
        let mode = combine_mode(agg, MeasureKind::Raw);
        // Delta-aggregate the new rows to the view's group-by.
        let mut delta: HashMap<Vec<u32>, AggState> = HashMap::new();
        let mut gk = vec![0u32; n_dims];
        for (keys, m) in rows {
            for d in 0..n_dims {
                gk[d] = roll_key(
                    &schema,
                    d,
                    crate::query::LevelRef::Level(0),
                    view.group_by().level(d),
                    keys[d],
                );
            }
            match delta.get_mut(gk.as_slice()) {
                Some(st) => st.fold(mode, *m),
                None => {
                    delta.insert(gk.clone(), AggState::first(mode, *m));
                }
            }
        }
        // Locate existing groups (one pass over the view).
        let mut positions: HashMap<Vec<u32>, u64> = HashMap::with_capacity(delta.len());
        let mut keys = vec![0u32; n_dims];
        for pos in 0..view.n_rows() {
            view.heap().read_at(pos, &mut keys);
            if delta.contains_key(keys.as_slice()) {
                positions.insert(keys.clone(), pos);
            }
        }
        // Merge: update in place or append new groups. The merge of two
        // partial aggregates of the same function is the function itself
        // for SUM/MIN/MAX, and addition for COUNT.
        for (gkey, st) in delta {
            let delta_val = st.value(mode);
            match positions.get(&gkey) {
                Some(&pos) => {
                    let old = view.heap().read_at(pos, &mut keys);
                    let merged = match agg {
                        AggFn::Sum | AggFn::Count => old + delta_val,
                        AggFn::Min => old.min(delta_val),
                        AggFn::Max => old.max(delta_val),
                        AggFn::Avg => unreachable!("rejected above"),
                    };
                    view.heap_mut().update_measure(pos, merged);
                }
                None => view.heap_mut().append(&gkey, delta_val),
            }
        }
        view.extend_indexes(&schema);
    }

    // 3. Statistics absorb the delta.
    if cube.stats.is_some() {
        let base = cube.catalog.table(base_id);
        cube.stats = Some(CubeStats::collect(&cube.schema, base));
    }

    // 4. The data changed: advance the epoch so derived state (result
    // caches, planner snapshots) can detect staleness.
    cube.bump_epoch();
    Ok(rows.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::materialize_agg;
    use crate::datagen::{paper_cube, CubeBuilder, PaperCubeSpec};
    use crate::query::{GroupBy, GroupByQuery, MemberPred};
    use crate::schema::{Dimension, StarSchema};
    use starshare_prng::Prng;

    fn spec() -> PaperCubeSpec {
        PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 20,
            with_indexes: true,
        }
    }

    fn random_rows(schema: &StarSchema, n: usize, seed: u64) -> Vec<(Vec<u32>, f64)> {
        let mut rng = Prng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let keys: Vec<u32> = (0..schema.n_dims())
                    .map(|d| rng.gen_range(0..schema.dim(d).cardinality(0)))
                    .collect();
                (keys, rng.gen_range(0.0..100.0))
            })
            .collect()
    }

    /// Like [`random_rows`] but with measures quantized to quarter units
    /// (exact binary fractions), so SUM/COUNT folds are exact in f64 no
    /// matter the association and comparisons can be bitwise.
    fn quantized_rows(schema: &StarSchema, n: usize, seed: u64) -> Vec<(Vec<u32>, f64)> {
        let mut rng = Prng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let keys: Vec<u32> = (0..schema.n_dims())
                    .map(|d| rng.gen_range(0..schema.dim(d).cardinality(0)))
                    .collect();
                (keys, rng.gen_range(0..400u32) as f64 * 0.25)
            })
            .collect()
    }

    /// The gold standard: a cube maintained incrementally must be
    /// group-for-group identical (as a set) to one rebuilt from scratch on
    /// the concatenated data.
    #[test]
    fn incremental_equals_rebuild() {
        let mut cube = paper_cube(spec());
        let delta = random_rows(&cube.schema, 500, 77);
        append_facts(&mut cube, &delta).unwrap();

        // Rebuild from scratch over base ∪ delta.
        let rebuilt = {
            let mut fresh = paper_cube(spec());
            append_base_only(&mut fresh, &delta);
            fresh
        };
        for (_, view) in cube.catalog.iter() {
            if view.name() == "ABCD" {
                continue;
            }
            let direct = materialize_agg(
                &rebuilt.schema,
                rebuilt.catalog.table(rebuilt.catalog.base_table().unwrap()),
                view.group_by().clone(),
                AggFn::Sum,
                "check",
                starshare_storage::FileId(999),
            );
            assert_eq!(view.n_rows(), direct.n_rows(), "{}", view.name());
            // Compare as key→value maps (row order differs: merged views
            // append new groups at the end).
            let to_map = |t: &crate::catalog::StoredTable| {
                let mut m = std::collections::BTreeMap::new();
                let mut keys = vec![0u32; 4];
                for pos in 0..t.n_rows() {
                    let v = t.heap().read_at(pos, &mut keys);
                    m.insert(keys.clone(), v);
                }
                m
            };
            let a = to_map(view);
            let b = to_map(&direct);
            assert_eq!(a.len(), b.len());
            for (k, va) in &a {
                let vb = b[k];
                assert!(
                    (va - vb).abs() < 1e-6 * va.abs().max(1.0),
                    "{} group {k:?}: {va} vs {vb}",
                    view.name()
                );
            }
        }
    }

    /// Helper: append rows to the base heap only (for building the rebuild
    /// comparison cube).
    fn append_base_only(cube: &mut Cube, rows: &[(Vec<u32>, f64)]) {
        let base = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table_mut(base);
        for (k, m) in rows {
            t.heap_mut().append(k, *m);
        }
    }

    #[test]
    fn indexes_stay_consistent_after_append() {
        let mut cube = paper_cube(spec());
        let delta = random_rows(&cube.schema, 300, 9);
        append_facts(&mut cube, &delta).unwrap();
        for (_, t) in cube.catalog.iter() {
            for d in 0..4 {
                let Some(ix) = t.index(d) else { continue };
                assert_eq!(ix.index.n_rows(), t.n_rows(), "{} dim {d}", t.name());
                // Brute-force check a few members.
                let mut keys = vec![0u32; 4];
                for m in ix.index.members().take(3).collect::<Vec<_>>() {
                    let bm = ix.index.peek(m).unwrap();
                    for pos in (0..t.n_rows()).step_by(17) {
                        t.heap().read_at(pos, &mut keys);
                        let stored = t.stored_level(d).unwrap();
                        let expect = cube.schema.dim(d).roll_up(keys[d], stored, ix.level) == m;
                        assert_eq!(bm.get(pos), expect, "{} dim {d} pos {pos}", t.name());
                    }
                }
            }
        }
    }

    #[test]
    fn queries_stay_correct_after_many_appends() {
        let mut cube = paper_cube(spec());
        for round in 0..3 {
            let delta = random_rows(&cube.schema, 200, round);
            append_facts(&mut cube, &delta).unwrap();
        }
        // Sum over everything must equal base total, through every view.
        let base = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table(base);
        let mut keys = vec![0u32; 4];
        let total: f64 = (0..t.n_rows())
            .map(|p| t.heap().read_at(p, &mut keys))
            .sum();
        for (id, view) in cube.catalog.iter().collect::<Vec<_>>() {
            let _ = id;
            let mut vkeys = vec![0u32; 4];
            let vtotal: f64 = (0..view.n_rows())
                .map(|p| view.heap().read_at(p, &mut vkeys))
                .sum();
            assert!(
                (vtotal - total).abs() < 1e-6 * total,
                "{}: {vtotal} vs {total}",
                view.name()
            );
        }
    }

    #[test]
    fn min_max_views_maintained_under_inserts() {
        let schema = StarSchema::new(vec![Dimension::uniform("X", 2, &[3])], "m");
        let mut cube = CubeBuilder::new(schema)
            .rows(500)
            .seed(3)
            .materialize_agg("X'", AggFn::Min)
            .materialize_agg("X'", AggFn::Max)
            .build();
        // Append a new global minimum and maximum into group X'=0.
        append_facts(&mut cube, &[(vec![0], -5.0), (vec![2], 1e6)]).unwrap();
        let check = |name: &str, want: f64| {
            let v = cube.catalog.table(cube.catalog.find_by_name(name).unwrap());
            let mut keys = [0u32; 1];
            let mut found = None;
            for pos in 0..v.n_rows() {
                let m = v.heap().read_at(pos, &mut keys);
                if keys[0] == 0 {
                    found = Some(m);
                }
            }
            assert_eq!(found, Some(want), "{name}");
        };
        check("MIN:X'", -5.0);
        check("MAX:X'", 1e6);
    }

    #[test]
    fn stats_absorb_the_delta() {
        let schema = StarSchema::new(vec![Dimension::uniform("X", 2, &[3])], "m");
        let mut cube = CubeBuilder::new(schema)
            .rows(100)
            .seed(3)
            .collect_stats()
            .build();
        let before = cube.stats.as_ref().unwrap().histogram(0).total();
        append_facts(&mut cube, &[(vec![0], 1.0), (vec![5], 2.0)]).unwrap();
        let after = cube.stats.as_ref().unwrap().histogram(0).total();
        assert_eq!(after, before + 2);
    }

    #[test]
    fn bad_rows_are_rejected_without_mutation() {
        let mut cube = paper_cube(spec());
        let before = cube
            .catalog
            .table(cube.catalog.base_table().unwrap())
            .n_rows();
        assert!(append_facts(&mut cube, &[(vec![0, 0, 0], 1.0)]).is_err()); // wrong arity
        assert!(append_facts(&mut cube, &[(vec![999, 0, 0, 0], 1.0)]).is_err()); // out of range
        let after = cube
            .catalog
            .table(cube.catalog.base_table().unwrap())
            .n_rows();
        assert_eq!(before, after, "failed append must not mutate");
        assert_eq!(cube.epoch, 0, "failed append must not bump the epoch");
    }

    #[test]
    fn every_successful_append_bumps_the_epoch() {
        let mut cube = paper_cube(spec());
        assert_eq!(cube.epoch, 0);
        append_facts(&mut cube, &[(vec![0, 0, 0, 0], 1.0)]).unwrap();
        assert_eq!(cube.epoch, 1);
        append_facts(&mut cube, &[(vec![1, 1, 1, 1], 2.0)]).unwrap();
        assert_eq!(cube.epoch, 2);
    }

    #[test]
    fn new_groups_are_appended() {
        // A view over a tiny slice: appending rows in a previously-empty
        // group must create it.
        let schema = StarSchema::new(vec![Dimension::uniform("X", 4, &[1])], "m");
        let mut cube = CubeBuilder::new(schema).rows(0).materialize("X'").build();
        assert_eq!(cube.catalog.table(crate::catalog::TableId(1)).n_rows(), 0);
        append_facts(&mut cube, &[(vec![1], 7.0), (vec![1], 3.0)]).unwrap();
        let v = cube.catalog.table(crate::catalog::TableId(1));
        assert_eq!(v.n_rows(), 1);
        let mut keys = [0u32; 1];
        assert_eq!(v.heap().read_at(0, &mut keys), 10.0);
        assert_eq!(keys[0], 1);
    }

    #[test]
    fn paper_queries_match_reference_after_append() {
        let mut cube = paper_cube(spec());
        let delta = random_rows(&cube.schema, 400, 55);
        append_facts(&mut cube, &delta).unwrap();
        // A broad query answered from a maintained view must equal the
        // brute-force answer over the maintained base.
        let q = GroupByQuery::new(
            GroupBy::parse(&cube.schema, "A'B''C''D").unwrap(),
            vec![
                MemberPred::members_in(1, vec![0, 1]),
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::eq(1, 0),
            ],
        );
        // Manual reference over the base (exec crate is not a dependency).
        let base = cube.catalog.table(cube.catalog.base_table().unwrap());
        let mut keys = vec![0u32; 4];
        let mut expect: std::collections::BTreeMap<Vec<u32>, f64> = Default::default();
        for pos in 0..base.n_rows() {
            let m = base.heap().read_at(pos, &mut keys);
            if (0..4).all(|d| q.preds[d].matches(&cube.schema, d, 0, keys[d])) {
                let gk: Vec<u32> = vec![
                    cube.schema.dim(0).roll_up(keys[0], 0, 1),
                    cube.schema.dim(1).roll_up(keys[1], 0, 2),
                    cube.schema.dim(2).roll_up(keys[2], 0, 2),
                    keys[3],
                ];
                *expect.entry(gk).or_insert(0.0) += m;
            }
        }
        // Answer from the maintained A'B''C'D view.
        let view = cube
            .catalog
            .table(cube.catalog.find_by_name("A'B''C'D").unwrap());
        let mut got: std::collections::BTreeMap<Vec<u32>, f64> = Default::default();
        let mut vkeys = vec![0u32; 4];
        for pos in 0..view.n_rows() {
            let m = view.heap().read_at(pos, &mut vkeys);
            let ok = q.preds[0].matches(&cube.schema, 0, 1, vkeys[0])
                && q.preds[1].matches(&cube.schema, 1, 2, vkeys[1])
                && q.preds[3].matches(&cube.schema, 3, 0, vkeys[3]);
            if ok {
                let gk = vec![
                    vkeys[0],
                    vkeys[1],
                    cube.schema.dim(2).roll_up(vkeys[2], 1, 2),
                    vkeys[3],
                ];
                *got.entry(gk).or_insert(0.0) += m;
            }
        }
        assert_eq!(expect.len(), got.len());
        for (k, e) in &expect {
            let g = got[k];
            assert!((e - g).abs() < 1e-6 * e.abs().max(1.0), "{k:?}");
        }
    }

    /// Append-then-query must equal rebuild-then-query at *every*
    /// materialized level and for every re-aggregatable function. The cube
    /// mixes SUM, MIN, MAX, and COUNT views across the lattice; after three
    /// append rounds each view is compared bitwise against a from-scratch
    /// materialization over base ∪ delta (builder measures and the
    /// quantized deltas are exact binary fractions, and MIN/MAX pick an
    /// element of the same set either way, so no tolerance is needed).
    #[test]
    fn append_equals_rebuild_at_every_view_level_for_every_agg() {
        let build = || {
            CubeBuilder::new(crate::datagen::paper_schema(24))
                .rows(800)
                .seed(11)
                .base_name("ABCD")
                .materialize("A'B'C'D")
                .materialize("A''B'C''D")
                .materialize_agg("A'B'C'D", AggFn::Min)
                .materialize_agg("A''B''C''D'", AggFn::Max)
                .materialize_agg("A'B''C'D", AggFn::Count)
                .build()
        };
        let mut cube = build();
        let mut rebuilt = build();
        for round in 0..3u64 {
            let delta = quantized_rows(&cube.schema, 250, 0xde17a ^ round);
            append_facts(&mut cube, &delta).unwrap();
            append_base_only(&mut rebuilt, &delta);
        }
        let to_map = |t: &crate::catalog::StoredTable| {
            let mut m = std::collections::BTreeMap::new();
            let mut keys = vec![0u32; 4];
            for pos in 0..t.n_rows() {
                let v = t.heap().read_at(pos, &mut keys);
                m.insert(keys.clone(), v);
            }
            m
        };
        for (_, view) in cube.catalog.iter() {
            let MeasureKind::Aggregated(agg) = view.measure() else {
                continue; // the raw base is the input, not a maintained view
            };
            let direct = materialize_agg(
                &rebuilt.schema,
                rebuilt.catalog.table(rebuilt.catalog.base_table().unwrap()),
                view.group_by().clone(),
                agg,
                "check",
                starshare_storage::FileId(990),
            );
            assert_eq!(view.n_rows(), direct.n_rows(), "{}", view.name());
            let a = to_map(view);
            let b = to_map(&direct);
            for (k, va) in &a {
                assert_eq!(
                    va.to_bits(),
                    b[k].to_bits(),
                    "{} group {k:?}: {va} vs {}",
                    view.name(),
                    b[k]
                );
            }
            // The same property through a query lens: a filtered rollup
            // read off the maintained view equals one read off the rebuilt
            // materialization (pred at A's top level, rolled up from
            // whatever level this view stores).
            let pred = MemberPred::eq(2, 0);
            let fold = |t: &crate::catalog::StoredTable| -> Option<f64> {
                let crate::query::LevelRef::Level(lvl) = t.group_by().level(0) else {
                    return None;
                };
                let mut keys = vec![0u32; 4];
                let mut acc: Option<f64> = None;
                for pos in 0..t.n_rows() {
                    let m = t.heap().read_at(pos, &mut keys);
                    if !pred.matches(&cube.schema, 0, lvl, keys[0]) {
                        continue;
                    }
                    acc = Some(match (acc, agg) {
                        (None, _) => m,
                        (Some(x), AggFn::Min) => x.min(m),
                        (Some(x), AggFn::Max) => x.max(m),
                        (Some(x), _) => x + m,
                    });
                }
                acc
            };
            let (qa, qb) = (fold(view), fold(&direct));
            assert!(qa.is_some(), "{}: probe matched nothing", view.name());
            assert_eq!(
                qa.map(f64::to_bits),
                qb.map(f64::to_bits),
                "{}: rollup query diverged",
                view.name()
            );
        }
    }

    /// MIN/MAX views stay sound under arbitrary insert-only workloads:
    /// after every round of random (unquantized) appends, each maintained
    /// group holds exactly the brute-force min/max over the grown base.
    #[test]
    fn min_max_stay_sound_under_random_insert_only_workloads() {
        let schema = StarSchema::new(vec![Dimension::uniform("X", 3, &[4])], "m");
        let mut cube = CubeBuilder::new(schema)
            .rows(300)
            .seed(6)
            .materialize_agg("X'", AggFn::Min)
            .materialize_agg("X'", AggFn::Max)
            .build();
        for round in 0..5u64 {
            let delta = random_rows(&cube.schema, 60, 0x3135 ^ round);
            append_facts(&mut cube, &delta).unwrap();
            let base = cube.catalog.table(cube.catalog.base_table().unwrap());
            let mut lo: std::collections::BTreeMap<u32, f64> = Default::default();
            let mut hi: std::collections::BTreeMap<u32, f64> = Default::default();
            let mut keys = [0u32; 1];
            for pos in 0..base.n_rows() {
                let m = base.heap().read_at(pos, &mut keys);
                let g = cube.schema.dim(0).roll_up(keys[0], 0, 1);
                lo.entry(g).and_modify(|v| *v = v.min(m)).or_insert(m);
                hi.entry(g).and_modify(|v| *v = v.max(m)).or_insert(m);
            }
            for (name, want) in [("MIN:X'", &lo), ("MAX:X'", &hi)] {
                let v = cube.catalog.table(cube.catalog.find_by_name(name).unwrap());
                assert_eq!(v.n_rows(), want.len() as u64, "round {round} {name}");
                for pos in 0..v.n_rows() {
                    let m = v.heap().read_at(pos, &mut keys);
                    assert_eq!(
                        m.to_bits(),
                        want[&keys[0]].to_bits(),
                        "round {round} {name} group {}",
                        keys[0]
                    );
                }
            }
        }
    }

    /// The no-mutation-on-invalid-row guarantee, in full: a failed append
    /// (poison pill hidden behind valid rows, so all-or-nothing is what is
    /// actually being tested) leaves the base, every view heap, every
    /// bitmap index, the statistics, and the epoch untouched — and the
    /// cube still accepts good batches afterwards.
    #[test]
    fn failed_append_leaves_views_indexes_and_stats_untouched() {
        let mut cube = CubeBuilder::new(crate::datagen::paper_schema(24))
            .rows(600)
            .seed(8)
            .base_name("ABCD")
            .materialize("A'B'C'D")
            .materialize_agg("A''B''C''D", AggFn::Min)
            .index("ABCD", "A'")
            .index("A'B'C'D", "B'")
            .collect_stats()
            .build();
        type TableSnap = (
            String,
            Vec<(Vec<u32>, u64)>,
            Vec<(u8, u64, Vec<(u32, Vec<u64>)>)>,
        );
        type StatSnap = Vec<(u64, Vec<u64>)>;
        let snapshot = |cube: &Cube| -> (u64, Vec<TableSnap>, StatSnap) {
            let mut tables = Vec::new();
            for (_, t) in cube.catalog.iter() {
                let mut keys = vec![0u32; 4];
                let rows: Vec<(Vec<u32>, u64)> = (0..t.n_rows())
                    .map(|pos| {
                        let m = t.heap().read_at(pos, &mut keys);
                        (keys.clone(), m.to_bits())
                    })
                    .collect();
                let mut indexes = Vec::new();
                for d in 0..4 {
                    let Some(ix) = t.index(d) else { continue };
                    let members: Vec<(u32, Vec<u64>)> = ix
                        .index
                        .members()
                        .map(|m| {
                            let bm = ix.index.peek(m).unwrap();
                            (m, (0..t.n_rows()).filter(|&p| bm.get(p)).collect())
                        })
                        .collect();
                    indexes.push((ix.level, ix.index.n_rows(), members));
                }
                tables.push((t.name().to_string(), rows, indexes));
            }
            let stats = cube.stats.as_ref().unwrap();
            let histograms: Vec<(u64, Vec<u64>)> = (0..4)
                .map(|d| {
                    let h = stats.histogram(d);
                    let fracs = (0..cube.schema.dim(d).cardinality(0))
                        .map(|m| h.fraction_of([m]).to_bits())
                        .collect();
                    (h.total(), fracs)
                })
                .collect();
            (cube.epoch, tables, histograms)
        };
        let before = snapshot(&cube);
        let bad_arity = vec![(vec![0, 0, 0, 0], 1.0), (vec![0, 0], 2.0)];
        let out_of_range = vec![(vec![1, 1, 1, 1], 3.0), (vec![0, 0, 0, 9_999], 4.0)];
        assert!(append_facts(&mut cube, &bad_arity).is_err());
        assert!(append_facts(&mut cube, &out_of_range).is_err());
        assert_eq!(before, snapshot(&cube), "failed append must mutate nothing");
        append_facts(&mut cube, &[(vec![0, 0, 0, 0], 1.0)]).unwrap();
        assert_eq!(cube.epoch, 1, "a failed append must not poison the cube");
    }
}
