//! # starshare-olap
//!
//! The multidimensional data model for the `starshare` engine:
//!
//! * [`schema`] — dimensions with uniform-fan-out hierarchies (the paper's
//!   `A → A' → A''`), member naming and roll-up arithmetic, star schemas;
//! * [`query`] — group-bys over the hierarchy lattice, per-dimension member
//!   predicates, derivability, and the [`GroupByQuery`] unit the optimizer
//!   and executor both consume;
//! * [`catalog`] — stored tables (the base fact table plus materialized
//!   group-bys), their bitmap join indexes, and load-time materialization;
//! * [`estimate`] — the cardinality/selectivity estimates the cost model
//!   feeds on (Cardenas' formula for post-aggregation distincts);
//! * [`datagen`] — deterministic synthetic data, including the paper's
//!   §7.2 test database at any scale.

pub mod advisor;
pub mod catalog;
pub mod datagen;
pub mod error;
pub mod estimate;
pub mod maintain;
pub mod persist;
pub mod query;
pub mod schema;
pub mod stats;

pub use advisor::{lattice_nodes, recommend_views, AdvisorConfig, Recommendation};
pub use catalog::{
    combine_mode, materialize, materialize_agg, AggState, Catalog, CombineMode, Cube, DimIndex,
    MeasureKind, StoredTable, TableId,
};
pub use datagen::{paper_cube, paper_schema, CubeBuilder, PaperCubeSpec};
pub use error::OlapError;
pub use maintain::append_facts;
pub use persist::{load_cube, save_cube};
pub use query::{AggFn, GroupBy, GroupByQuery, LevelRef, MemberPred};
pub use schema::{DimId, Dimension, LevelDef, StarSchema};
pub use stats::{CubeStats, DimHistogram};
