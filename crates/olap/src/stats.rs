//! Optional per-dimension statistics for the cost model.
//!
//! The paper's optimizer (like most of its era) assumes uniform member
//! frequencies; ablation E shows that assumption costs index-plan
//! estimates up to ~170% error under Zipf-skewed data. A [`CubeStats`]
//! holds one leaf-level frequency histogram per dimension, collected in
//! one pass over the base table at load time. When present, predicate
//! selectivities become exact marginals (joint independence is still
//! assumed), collapsing the skew error.
//!
//! Statistics are *optional* — the paper-faithful configuration runs
//! without them — and are attached to the [`Cube`](crate::catalog::Cube).

use crate::catalog::StoredTable;
use crate::query::{GroupByQuery, MemberPred};
use crate::schema::{DimId, StarSchema};

/// Leaf-level member frequency histogram for one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimHistogram {
    /// `counts[k]` = rows whose leaf member id is `k`.
    counts: Vec<u64>,
    total: u64,
}

impl DimHistogram {
    /// Builds from explicit counts.
    pub fn new(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        DimHistogram { counts, total }
    }

    /// Rows counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of rows whose leaf member is in `leaf_members`.
    pub fn fraction_of(&self, leaf_members: impl IntoIterator<Item = u32>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = leaf_members
            .into_iter()
            .map(|m| self.counts.get(m as usize).copied().unwrap_or(0))
            .sum();
        hits as f64 / self.total as f64
    }
}

/// One histogram per dimension, over the base table.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeStats {
    histograms: Vec<DimHistogram>,
}

impl CubeStats {
    /// Collects statistics from a base-level table (one raw pass).
    ///
    /// # Panics
    /// Panics if `base` does not store every dimension at its leaf level.
    pub fn collect(schema: &StarSchema, base: &StoredTable) -> Self {
        let n_dims = schema.n_dims();
        for d in 0..n_dims {
            assert_eq!(
                base.stored_level(d),
                Some(0),
                "statistics are collected over leaf-level data"
            );
        }
        let mut counts: Vec<Vec<u64>> = (0..n_dims)
            .map(|d| vec![0u64; schema.dim(d).cardinality(0) as usize])
            .collect();
        let mut keys = vec![0u32; n_dims];
        for pos in 0..base.n_rows() {
            base.heap().read_at(pos, &mut keys);
            for d in 0..n_dims {
                counts[d][keys[d] as usize] += 1;
            }
        }
        CubeStats {
            histograms: counts.into_iter().map(DimHistogram::new).collect(),
        }
    }

    /// The histogram for dimension `d`.
    pub fn histogram(&self, d: DimId) -> &DimHistogram {
        &self.histograms[d]
    }

    /// Histogram-exact selectivity of one predicate (replaces the uniform
    /// `members / cardinality` estimate).
    pub fn pred_selectivity(&self, schema: &StarSchema, d: DimId, pred: &MemberPred) -> f64 {
        match pred {
            MemberPred::All => 1.0,
            MemberPred::In { .. } => {
                let leaves = pred
                    .expand_to_level(schema, d, 0)
                    .expect("In predicates expand");
                self.histograms[d].fraction_of(leaves)
            }
        }
    }

    /// Combined selectivity of a query's predicates (independence across
    /// dimensions, exact marginals within each).
    pub fn query_selectivity(&self, schema: &StarSchema, query: &GroupByQuery) -> f64 {
        query
            .preds
            .iter()
            .enumerate()
            .map(|(d, p)| self.pred_selectivity(schema, d, p))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableId;
    use crate::datagen::CubeBuilder;
    use crate::schema::Dimension;

    fn skewed_cube() -> crate::catalog::Cube {
        let schema = StarSchema::new(
            vec![
                Dimension::uniform("X", 2, &[5]),
                Dimension::uniform("Y", 2, &[3]),
            ],
            "m",
        );
        CubeBuilder::new(schema)
            .rows(8_000)
            .seed(4)
            .skew(1.0)
            .build()
    }

    #[test]
    fn histogram_counts_every_row_once() {
        let cube = skewed_cube();
        let base = cube.catalog.table(TableId(0));
        let stats = CubeStats::collect(&cube.schema, base);
        for d in 0..2 {
            assert_eq!(stats.histogram(d).total(), 8_000, "dim {d}");
        }
        // Full-range fraction is 1.
        let f = stats.histogram(0).fraction_of(0..10);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_selectivity_differs_from_uniform() {
        let cube = skewed_cube();
        let base = cube.catalog.table(TableId(0));
        let stats = CubeStats::collect(&cube.schema, base);
        // Member 0 under Zipf(1) over 10 leaves carries ~34%, not 10%.
        let pred = MemberPred::eq(0, 0);
        let uniform = pred.selectivity(&cube.schema, 0);
        let exact = stats.pred_selectivity(&cube.schema, 0, &pred);
        assert!((uniform - 0.1).abs() < 1e-12);
        assert!(exact > 0.25, "{exact}");
        // Coarse-level predicate aggregates the leaf counts.
        let top = MemberPred::eq(1, 0); // first parent = leaves 0..5
        let exact_top = stats.pred_selectivity(&cube.schema, 0, &top);
        // Zipf(1) over 10 leaves: first parent (leaves 0..5) carries
        // H(5)/H(10) ≈ 0.78 of the mass, vs 0.5 uniform.
        assert!(exact_top > 0.7, "{exact_top}");
    }

    #[test]
    fn query_selectivity_multiplies_marginals() {
        let cube = skewed_cube();
        let base = cube.catalog.table(TableId(0));
        let stats = CubeStats::collect(&cube.schema, base);
        let q = GroupByQuery::new(
            crate::query::GroupBy::finest(2),
            vec![MemberPred::eq(0, 0), MemberPred::eq(0, 0)],
        );
        let s0 = stats.pred_selectivity(&cube.schema, 0, &q.preds[0]);
        let s1 = stats.pred_selectivity(&cube.schema, 1, &q.preds[1]);
        let joint = stats.query_selectivity(&cube.schema, &q);
        assert!((joint - s0 * s1).abs() < 1e-12);
    }

    #[test]
    fn exact_marginal_matches_brute_force() {
        let cube = skewed_cube();
        let base = cube.catalog.table(TableId(0));
        let stats = CubeStats::collect(&cube.schema, base);
        let pred = MemberPred::members_in(0, vec![1, 3]);
        let est = stats.pred_selectivity(&cube.schema, 0, &pred);
        let mut keys = [0u32; 2];
        let hits = (0..base.n_rows())
            .filter(|&p| {
                base.heap().read_at(p, &mut keys);
                keys[0] == 1 || keys[0] == 3
            })
            .count();
        assert!((est - hits as f64 / 8_000.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "leaf-level")]
    fn collect_rejects_aggregated_tables() {
        let cube = skewed_cube();
        let coarse = crate::catalog::materialize(
            &cube.schema,
            cube.catalog.table(TableId(0)),
            crate::query::GroupBy::parse(&cube.schema, "X'Y").unwrap(),
            "v",
            starshare_storage::FileId(99),
        );
        CubeStats::collect(&cube.schema, &coarse);
    }
}
