//! Dimensions, hierarchies and star schemas.
//!
//! A [`Dimension`] is a chain of levels, **leaf first**: level 0 is the
//! finest (the key stored in the fact table), higher indexes are coarser.
//! The paper writes the chain `A → A' → A''`; here `A` is level 0, `A'` is
//! level 1, `A''` is level 2.
//!
//! Hierarchies are *uniform fan-out*: each member of level `i+1` has the
//! same number of children at level `i`, so cardinalities divide evenly and
//! rolling a member id up is integer division. Member ids at every level
//! are dense `0..cardinality`; the id of a member's parent is
//! `id / fan_out`. Display names follow the paper's convention — top-level
//! members of dimension `A` are `A1, A2, …`, the level below `AA1, AA2, …`
//! (globally numbered) — unless explicit names are supplied.

/// Index of a dimension within a schema.
pub type DimId = usize;

/// One level of a dimension hierarchy.
#[derive(Debug, Clone)]
pub struct LevelDef {
    /// Level name, e.g. `"A'"`.
    pub name: String,
    /// Distinct members at this level.
    pub cardinality: u32,
    /// Explicit member names; generated if absent.
    pub member_names: Option<Vec<String>>,
}

/// A dimension with its hierarchy, leaf level first.
#[derive(Debug, Clone)]
pub struct Dimension {
    name: String,
    levels: Vec<LevelDef>,
}

impl Dimension {
    /// Builds a dimension from explicit level definitions (leaf first).
    ///
    /// # Panics
    /// Panics if there are no levels, any cardinality is zero, or a coarser
    /// level's cardinality does not divide the finer one's.
    pub fn new(name: impl Into<String>, levels: Vec<LevelDef>) -> Self {
        assert!(!levels.is_empty(), "dimension needs at least one level");
        for w in levels.windows(2) {
            assert!(
                w[0].cardinality > 0 && w[1].cardinality > 0,
                "level cardinality must be positive"
            );
            assert!(
                w[0].cardinality % w[1].cardinality == 0,
                "level {} (card {}) must evenly refine level {} (card {})",
                w[0].name,
                w[0].cardinality,
                w[1].name,
                w[1].cardinality
            );
            assert!(
                w[0].cardinality >= w[1].cardinality,
                "coarser levels cannot be bigger"
            );
        }
        for l in &levels {
            if let Some(names) = &l.member_names {
                assert_eq!(
                    names.len(),
                    l.cardinality as usize,
                    "level {} has {} names for cardinality {}",
                    l.name,
                    names.len(),
                    l.cardinality
                );
            }
        }
        Dimension {
            name: name.into(),
            levels,
        }
    }

    /// Builds a dimension with generated level names (`X`, `X'`, `X''`, …)
    /// and generated member names, from the top-level cardinality and the
    /// fan-out at each step down. `fan_outs[0]` splits the top level;
    /// `fan_outs.last()` produces the leaf.
    ///
    /// `Dimension::uniform("A", 3, &[2, 10])` gives `A''` (3 members),
    /// `A'` (6), `A` (60).
    pub fn uniform(name: impl Into<String>, top_cardinality: u32, fan_outs: &[u32]) -> Self {
        let name = name.into();
        assert!(top_cardinality > 0, "top cardinality must be positive");
        let n_levels = fan_outs.len() + 1;
        let mut levels = Vec::with_capacity(n_levels);
        // Build coarsest→finest, then reverse to leaf-first.
        let mut card = top_cardinality;
        let mut defs_top_first = vec![LevelDef {
            name: format!("{}{}", name, "'".repeat(n_levels - 1)),
            cardinality: card,
            member_names: None,
        }];
        for (i, &f) in fan_outs.iter().enumerate() {
            assert!(f > 0, "fan-out must be positive");
            card *= f;
            defs_top_first.push(LevelDef {
                name: format!("{}{}", name, "'".repeat(n_levels - 2 - i)),
                cardinality: card,
                member_names: None,
            });
        }
        defs_top_first.reverse();
        levels.extend(defs_top_first);
        Dimension::new(name, levels)
    }

    /// Dimension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of hierarchy levels.
    pub fn n_levels(&self) -> u8 {
        self.levels.len() as u8
    }

    /// The level definition at `level` (0 = leaf).
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    pub fn level(&self, level: u8) -> &LevelDef {
        &self.levels[level as usize]
    }

    /// Cardinality at `level`.
    pub fn cardinality(&self, level: u8) -> u32 {
        self.level(level).cardinality
    }

    /// Finds a level by name.
    pub fn level_by_name(&self, name: &str) -> Option<u8> {
        self.levels
            .iter()
            .position(|l| l.name == name)
            .map(|i| i as u8)
    }

    /// Rolls member `id` at `from` up to the coarser level `to`.
    ///
    /// # Panics
    /// Panics if `to < from`, either level is out of range, or `id` is out
    /// of range at `from`.
    pub fn roll_up(&self, id: u32, from: u8, to: u8) -> u32 {
        assert!(to >= from, "roll_up goes from finer to coarser");
        assert!(
            id < self.cardinality(from),
            "member {id} out of range at level {from}"
        );
        id / (self.cardinality(from) / self.cardinality(to))
    }

    /// The factor by which `from` is finer than `to` (children per ancestor).
    pub fn fan_out_between(&self, from: u8, to: u8) -> u32 {
        assert!(to >= from);
        self.cardinality(from) / self.cardinality(to)
    }

    /// The dense id range of `parent`'s descendants at the finer level
    /// `child_level`.
    pub fn descendants(
        &self,
        parent: u32,
        parent_level: u8,
        child_level: u8,
    ) -> std::ops::Range<u32> {
        assert!(
            child_level <= parent_level,
            "descendants lie below the parent"
        );
        let f = self.fan_out_between(child_level, parent_level);
        parent * f..(parent + 1) * f
    }

    /// Display name of member `id` at `level`.
    ///
    /// Generated names follow the paper: top-level members of `A` are
    /// `A1, A2, …`; each step down doubles the letter (`AA1`, `AAA1`, …),
    /// numbered globally within the level.
    pub fn member_name(&self, level: u8, id: u32) -> String {
        if let Some(names) = &self.level(level).member_names {
            return names[id as usize].clone();
        }
        let depth = self.n_levels() - level; // 1 at top
        format!("{}{}", self.name.repeat(depth as usize), id + 1)
    }

    /// Resolves a member display name at a specific level.
    pub fn member_by_name(&self, level: u8, name: &str) -> Option<u32> {
        if let Some(names) = &self.level(level).member_names {
            return names.iter().position(|n| n == name).map(|i| i as u32);
        }
        let depth = (self.n_levels() - level) as usize;
        let prefix = self.name.repeat(depth);
        let rest = name.strip_prefix(&prefix)?;
        let id: u32 = rest.parse().ok()?;
        if id >= 1 && id <= self.cardinality(level) {
            Some(id - 1)
        } else {
            None
        }
    }

    /// Searches all levels for a member display name; returns `(level, id)`.
    /// Searches coarsest level first (the paper's queries name coarse
    /// members far more often).
    pub fn find_member(&self, name: &str) -> Option<(u8, u32)> {
        (0..self.n_levels())
            .rev()
            .find_map(|lvl| self.member_by_name(lvl, name).map(|id| (lvl, id)))
    }
}

/// A star schema: an ordered list of dimensions plus a measure name.
///
/// The fact table and every materialized group-by store one key per
/// dimension (in this order) and one measure.
#[derive(Debug, Clone)]
pub struct StarSchema {
    dimensions: Vec<Dimension>,
    measure_name: String,
}

impl StarSchema {
    /// Creates a schema.
    ///
    /// # Panics
    /// Panics if `dimensions` is empty or two dimensions share a name.
    pub fn new(dimensions: Vec<Dimension>, measure_name: impl Into<String>) -> Self {
        assert!(
            !dimensions.is_empty(),
            "schema needs at least one dimension"
        );
        for i in 0..dimensions.len() {
            for j in i + 1..dimensions.len() {
                assert_ne!(
                    dimensions[i].name(),
                    dimensions[j].name(),
                    "duplicate dimension name"
                );
            }
        }
        StarSchema {
            dimensions,
            measure_name: measure_name.into(),
        }
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dimensions.len()
    }

    /// All dimensions in key order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// The dimension at `dim`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn dim(&self, dim: DimId) -> &Dimension {
        &self.dimensions[dim]
    }

    /// Finds a dimension by name.
    pub fn dim_by_name(&self, name: &str) -> Option<DimId> {
        self.dimensions.iter().position(|d| d.name() == name)
    }

    /// Finds the dimension owning a level name (e.g. `"A'"` → dimension A).
    pub fn dim_of_level(&self, level_name: &str) -> Option<(DimId, u8)> {
        self.dimensions
            .iter()
            .enumerate()
            .find_map(|(i, d)| d.level_by_name(level_name).map(|l| (i, l)))
    }

    /// The measure column's name.
    pub fn measure_name(&self) -> &str {
        &self.measure_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim_a() -> Dimension {
        Dimension::uniform("A", 3, &[2, 10])
    }

    #[test]
    fn uniform_builds_leaf_first() {
        let d = dim_a();
        assert_eq!(d.n_levels(), 3);
        assert_eq!(d.level(0).name, "A");
        assert_eq!(d.level(1).name, "A'");
        assert_eq!(d.level(2).name, "A''");
        assert_eq!(d.cardinality(0), 60);
        assert_eq!(d.cardinality(1), 6);
        assert_eq!(d.cardinality(2), 3);
    }

    #[test]
    fn roll_up_arithmetic() {
        let d = dim_a();
        // Leaf members 0..10 belong to A' member 0; 10..20 to member 1.
        assert_eq!(d.roll_up(0, 0, 1), 0);
        assert_eq!(d.roll_up(9, 0, 1), 0);
        assert_eq!(d.roll_up(10, 0, 1), 1);
        assert_eq!(d.roll_up(59, 0, 1), 5);
        // A' members 0,1 → top 0; 2,3 → top 1.
        assert_eq!(d.roll_up(1, 1, 2), 0);
        assert_eq!(d.roll_up(2, 1, 2), 1);
        // Leaf straight to top.
        assert_eq!(d.roll_up(59, 0, 2), 2);
        // Identity roll-up.
        assert_eq!(d.roll_up(5, 1, 1), 5);
    }

    #[test]
    fn roll_up_composes() {
        let d = dim_a();
        for leaf in 0..60 {
            let via_mid = d.roll_up(d.roll_up(leaf, 0, 1), 1, 2);
            assert_eq!(via_mid, d.roll_up(leaf, 0, 2), "leaf {leaf}");
        }
    }

    #[test]
    fn descendants_are_inverse_of_roll_up() {
        let d = dim_a();
        for parent in 0..6u32 {
            for child in d.descendants(parent, 1, 0) {
                assert_eq!(d.roll_up(child, 0, 1), parent);
            }
        }
        assert_eq!(d.descendants(2, 2, 1), 4..6);
        assert_eq!(d.fan_out_between(0, 2), 20);
    }

    #[test]
    fn member_names_follow_paper_convention() {
        let d = dim_a();
        assert_eq!(d.member_name(2, 0), "A1");
        assert_eq!(d.member_name(2, 2), "A3");
        assert_eq!(d.member_name(1, 0), "AA1");
        assert_eq!(d.member_name(1, 5), "AA6");
        assert_eq!(d.member_name(0, 0), "AAA1");
    }

    #[test]
    fn member_name_roundtrip() {
        let d = dim_a();
        for lvl in 0..3u8 {
            for id in 0..d.cardinality(lvl).min(20) {
                let n = d.member_name(lvl, id);
                assert_eq!(d.member_by_name(lvl, &n), Some(id), "{n}");
            }
        }
        assert_eq!(d.member_by_name(2, "A4"), None);
        assert_eq!(d.member_by_name(2, "AA1"), None);
        assert_eq!(d.find_member("AA3"), Some((1, 2)));
        assert_eq!(d.find_member("A2"), Some((2, 1)));
        assert_eq!(d.find_member("ZZZ"), None);
    }

    #[test]
    fn explicit_member_names() {
        let d = Dimension::new(
            "Time",
            vec![
                LevelDef {
                    name: "Month".into(),
                    cardinality: 12,
                    member_names: Some(
                        [
                            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
                            "Nov", "Dec",
                        ]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    ),
                },
                LevelDef {
                    name: "Quarter".into(),
                    cardinality: 4,
                    member_names: Some(
                        ["Qtr1", "Qtr2", "Qtr3", "Qtr4"]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                    ),
                },
                LevelDef {
                    name: "Year".into(),
                    cardinality: 1,
                    member_names: Some(vec!["1991".into()]),
                },
            ],
        );
        assert_eq!(d.member_name(0, 4), "May");
        assert_eq!(d.member_by_name(1, "Qtr3"), Some(2));
        assert_eq!(d.roll_up(4, 0, 1), 1); // May → Qtr2
        assert_eq!(d.find_member("Qtr2"), Some((1, 1)));
    }

    #[test]
    #[should_panic(expected = "evenly refine")]
    fn non_dividing_cardinalities_rejected() {
        Dimension::new(
            "X",
            vec![
                LevelDef {
                    name: "X".into(),
                    cardinality: 10,
                    member_names: None,
                },
                LevelDef {
                    name: "X'".into(),
                    cardinality: 3,
                    member_names: None,
                },
            ],
        );
    }

    #[test]
    fn schema_lookup() {
        let s = StarSchema::new(
            vec![dim_a(), Dimension::uniform("B", 3, &[2, 10])],
            "dollars",
        );
        assert_eq!(s.n_dims(), 2);
        assert_eq!(s.dim_by_name("B"), Some(1));
        assert_eq!(s.dim_by_name("Z"), None);
        assert_eq!(s.dim_of_level("B'"), Some((1, 1)));
        assert_eq!(s.dim_of_level("A''"), Some((0, 2)));
        assert_eq!(s.dim_of_level("Q"), None);
        assert_eq!(s.measure_name(), "dollars");
    }

    #[test]
    #[should_panic(expected = "duplicate dimension")]
    fn duplicate_dimension_rejected() {
        StarSchema::new(vec![dim_a(), dim_a()], "m");
    }

    #[test]
    fn single_level_dimension_is_valid() {
        let d = Dimension::uniform("M", 5, &[]);
        assert_eq!(d.n_levels(), 1);
        assert_eq!(d.cardinality(0), 5);
        assert_eq!(d.member_name(0, 0), "M1");
        assert_eq!(d.roll_up(3, 0, 0), 3);
    }
}
