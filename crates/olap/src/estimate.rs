//! Cardinality and selectivity estimation.
//!
//! The optimizer's cost formulas (§5.1 of the paper) need three estimates:
//! how many tuples a predicate keeps, how many groups an aggregation
//! produces, and how many pages a scattered set of tuples touches. All three
//! are classical:
//!
//! * predicate selectivity — uniformity + independence across dimensions;
//! * distinct groups — Cardenas' formula `v·(1 − (1 − 1/v)^n)` for throwing
//!   `n` balls into `v` urns;
//! * pages touched — Yao's approximation for fetching `k` of `n` tuples
//!   packed `m` per page.

use crate::query::{GroupBy, GroupByQuery};
use crate::schema::StarSchema;

/// Expected distinct values when `n_rows` rows draw uniformly from
/// `n_combos` possible combinations (Cardenas' formula).
///
/// Returns 0 for empty inputs; never exceeds either argument.
pub fn cardenas_distinct(n_rows: f64, n_combos: f64) -> f64 {
    if n_rows <= 0.0 || n_combos <= 0.0 {
        return 0.0;
    }
    // v(1 - (1 - 1/v)^n) computed stably as v(1 - exp(n·ln(1-1/v))).
    let v = n_combos;
    let est = if v > 1e6 {
        // ln(1-1/v) ≈ -1/v for large v.
        v * (1.0 - (-n_rows / v).exp())
    } else {
        v * (1.0 - (1.0 - 1.0 / v).powf(n_rows))
    };
    est.min(n_rows).min(n_combos)
}

/// Expected pages touched when fetching `k` random tuples from a table of
/// `n` tuples stored `m` per page (Yao's approximation via Cardenas on
/// pages: each fetched tuple lands on a uniform page).
pub fn yao_pages(k: f64, n: f64, tuples_per_page: f64) -> f64 {
    if k <= 0.0 || n <= 0.0 || tuples_per_page <= 0.0 {
        return 0.0;
    }
    let pages = (n / tuples_per_page).ceil();
    cardenas_distinct(k, pages)
}

/// Estimated rows of a table materialized at `group_by`, built from
/// `base_rows` base rows.
pub fn groupby_rows(schema: &StarSchema, group_by: &GroupBy, base_rows: f64) -> f64 {
    cardenas_distinct(base_rows, group_by.combinations(schema))
}

/// Estimates for evaluating one query against one stored table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEstimate {
    /// Rows of the source table the query reads (all of them for a scan).
    pub source_rows: f64,
    /// Rows surviving the predicates.
    pub qualifying_rows: f64,
    /// Distinct output groups.
    pub output_groups: f64,
}

/// Estimates a query evaluated from a table of `source_rows` rows stored at
/// `stored` levels.
///
/// The predicate keeps `selectivity(query)` of the source (uniformity +
/// independence); the output group count is Cardenas over the *restricted*
/// combination space (each `IN` predicate shrinks its dimension's active
/// member count at the target level).
pub fn estimate_query(
    schema: &StarSchema,
    query: &GroupByQuery,
    stored: &GroupBy,
    source_rows: f64,
) -> QueryEstimate {
    debug_assert!(
        query.answerable_from(stored),
        "estimating a query against a table that cannot answer it"
    );
    let sel = query.selectivity(schema);
    let qualifying = source_rows * sel;
    // Restricted combination space at the target group-by.
    let mut combos = 1.0;
    for (d, lr) in query.group_by.levels().iter().enumerate() {
        let full = match lr {
            crate::query::LevelRef::Level(l) => schema.dim(d).cardinality(*l) as f64,
            crate::query::LevelRef::All => 1.0,
        };
        combos *= full * query.preds[d].selectivity(schema, d).min(1.0);
    }
    combos = combos.max(1.0);
    QueryEstimate {
        source_rows,
        qualifying_rows: qualifying,
        output_groups: cardenas_distinct(qualifying, combos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::MemberPred;
    use crate::schema::Dimension;

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 3, &[2, 10]),
                Dimension::uniform("B", 3, &[2, 10]),
                Dimension::uniform("C", 3, &[2, 10]),
                Dimension::uniform("D", 3, &[8, 300]),
            ],
            "dollars",
        )
    }

    #[test]
    fn cardenas_basic_properties() {
        // Few rows into many urns: nearly all distinct.
        let d = cardenas_distinct(100.0, 1e9);
        assert!((d - 100.0).abs() < 0.01, "{d}");
        // Many rows into few urns: saturates at the urn count.
        let d = cardenas_distinct(1e9, 100.0);
        assert!((d - 100.0).abs() < 0.01, "{d}");
        // Zero cases.
        assert_eq!(cardenas_distinct(0.0, 10.0), 0.0);
        assert_eq!(cardenas_distinct(10.0, 0.0), 0.0);
        // Monotone in rows.
        assert!(cardenas_distinct(10.0, 50.0) < cardenas_distinct(20.0, 50.0));
    }

    #[test]
    fn cardenas_matches_closed_form_mid_range() {
        // n = v: expect v(1-(1-1/v)^v) ≈ v(1 - 1/e).
        let v = 1000.0;
        let d = cardenas_distinct(v, v);
        let expect = v * (1.0 - (1.0f64 - 1.0 / v).powf(v));
        assert!((d - expect).abs() < 1e-6);
        assert!((d / v - 0.632).abs() < 0.01);
    }

    #[test]
    fn cardenas_large_v_branch_is_continuous() {
        // The two computation branches must agree around the 1e6 switch.
        let below = cardenas_distinct(2e6, 999_999.0);
        let above = cardenas_distinct(2e6, 1_000_001.0);
        assert!((below - above).abs() / below < 1e-3, "{below} vs {above}");
    }

    #[test]
    fn yao_pages_bounds() {
        // Fetching more tuples than pages saturates at the page count.
        let p = yao_pages(10_000.0, 10_000.0, 100.0);
        assert!((p - 100.0).abs() < 1.0);
        // Fetching 1 tuple touches ~1 page.
        let p = yao_pages(1.0, 10_000.0, 100.0);
        assert!((p - 1.0).abs() < 0.01);
        assert_eq!(yao_pages(0.0, 100.0, 10.0), 0.0);
    }

    #[test]
    fn groupby_rows_for_paper_views() {
        let s = schema();
        let n = 2_000_000.0;
        // D leaf cardinality = 2400 here (3×8×300/...): D = 3*8*300 = 7200.
        let v = GroupBy::parse(&s, "A'B'C'D").unwrap();
        let rows = groupby_rows(&s, &v, n);
        // combos = 6*6*6*7200 = 1_555_200 → ≈1.13M distinct.
        assert!(rows > 1.0e6 && rows < 1.3e6, "{rows}");
        let v2 = GroupBy::parse(&s, "A'B''C'D").unwrap();
        let rows2 = groupby_rows(&s, &v2, n);
        assert!(rows2 > 6.0e5 && rows2 < 8.0e5, "{rows2}");
        // The paper's Test-4 ratio: the consolidation view is only ~1.5×
        // bigger than each local optimum.
        assert!(rows / rows2 < 1.7, "{}", rows / rows2);
    }

    #[test]
    fn estimate_query_applies_selectivity() {
        let s = schema();
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B''C''D").unwrap(),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let stored = GroupBy::finest(4);
        let e = estimate_query(&s, &q, &stored, 3000.0);
        assert_eq!(e.source_rows, 3000.0);
        assert!((e.qualifying_rows - 1000.0).abs() < 1e-9);
        // Output groups bounded by restricted combos: 1×3×3×7200 but only
        // 1000 rows → ≈1000 groups at most.
        assert!(e.output_groups <= 1000.0);
        assert!(e.output_groups > 0.0);
    }

    #[test]
    fn estimate_restricted_group_space() {
        let s = schema();
        // Group by top levels with single-member predicates everywhere:
        // only one group can come out.
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B''C''D''").unwrap(),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::eq(2, 1),
                MemberPred::eq(2, 2),
                MemberPred::eq(2, 0),
            ],
        );
        let e = estimate_query(&s, &q, &GroupBy::finest(4), 1e6);
        assert!(e.output_groups <= 1.0 + 1e-9, "{}", e.output_groups);
    }
}
