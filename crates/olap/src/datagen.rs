//! Deterministic synthetic data, including the paper's test database.
//!
//! [`paper_cube`] rebuilds the §7.2 setup: a base table `ABCD` of 2 M
//! 20-byte-class tuples (four dimension keys + a measure), four dimensions
//! with 3-level hierarchies and 3 members at each top level, materialized
//! group-bys playing the Table-1 roles, and bitmap join indexes on A, B, C
//! of both the base table and the `A'B'C'D` view.
//!
//! ### Reconstruction notes (see DESIGN.md §2)
//!
//! The paper's Table 1 is partially garbled in the surviving text; we choose
//! hierarchy fan-outs so the *relative* view sizes match the roles the
//! experiments need: `A'B'C'D ≈ 1.55× A'B''C'D ≈ A''B'C'D`, with
//! `A''B''C''D` much smaller. Sizes here are *measured* after aggregation,
//! not asserted — the table1 harness prints ours next to the paper's.
//!
//! A scale factor shrinks both the row count and the D-leaf cardinality so
//! saturation ratios (hence all size *ratios*) are preserved; tests run at
//! small scales with the same shape the benches see at full scale.

use starshare_bitmap::IndexFormat;
use starshare_prng::Prng;
use starshare_storage::{HeapFile, TupleLayout};

use crate::catalog::{materialize_agg, Catalog, Cube, StoredTable, TableId};
use crate::query::{AggFn, GroupBy};
use crate::schema::{Dimension, StarSchema};

/// Parameters for building the paper's cube.
#[derive(Debug, Clone, Copy)]
pub struct PaperCubeSpec {
    /// Rows in the base table (paper: 2,000,000).
    pub base_rows: u64,
    /// Leaf cardinality of dimension D (paper-scale default: 18432 = 3×8×768).
    pub d_leaf: u32,
    /// RNG seed.
    pub seed: u64,
    /// Build bitmap join indexes on A, B, C of `ABCD` and `A'B'C'D`.
    pub with_indexes: bool,
}

impl PaperCubeSpec {
    /// The full paper-scale spec.
    pub fn full() -> Self {
        PaperCubeSpec {
            base_rows: 2_000_000,
            d_leaf: 18432,
            seed: 19980601, // SIGMOD '98, Seattle
            with_indexes: true,
        }
    }

    /// A spec scaled by `f` (rows and D-leaf cardinality shrink together so
    /// view-size ratios are preserved). `f = 1.0` is the paper scale.
    ///
    /// # Panics
    /// Panics unless `0 < f ≤ 1`.
    pub fn scaled(f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        let full = Self::full();
        // Keep D's leaf a multiple of 24 so the 3 → 24 → leaf hierarchy
        // stays uniform.
        let d_leaf = (((full.d_leaf as f64 * f / 24.0).round() as u32).max(1)) * 24;
        PaperCubeSpec {
            base_rows: ((full.base_rows as f64 * f) as u64).max(1),
            d_leaf,
            ..full
        }
    }
}

impl Default for PaperCubeSpec {
    fn default() -> Self {
        Self::full()
    }
}

/// The paper's star schema: A, B, C with hierarchies 3 → 6 → 60 and D with
/// 3 → 24 → `d_leaf` (default 18432, chosen so the base table half-saturates
/// `A'B'C'D` — the regime where the Test-4/5 sharing trade-off matches the
/// paper's Table 1 size ratios).
///
/// Top levels have 3 members (`A1..A3` etc., §7.3); the 3→6 fan-out on
/// A/B/C makes the `A'B''C'D`-style views ~0.65× of `A'B'C'D`, the
/// closeness the Test 4/5 consolidation trade-off needs.
pub fn paper_schema(d_leaf: u32) -> StarSchema {
    assert!(
        d_leaf.is_multiple_of(24),
        "D leaf cardinality must refine 24"
    );
    StarSchema::new(
        vec![
            Dimension::uniform("A", 3, &[2, 10]),
            Dimension::uniform("B", 3, &[2, 10]),
            Dimension::uniform("C", 3, &[2, 10]),
            Dimension::uniform("D", 3, &[8, d_leaf / 24]),
        ],
        "dollars",
    )
}

/// Cumulative distribution of Zipf(θ) over `card` ranks.
fn zipf_cdf(card: u32, theta: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=card).map(|k| 1.0 / (k as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Builds the paper's cube per `spec`.
pub fn paper_cube(spec: PaperCubeSpec) -> Cube {
    let schema = paper_schema(spec.d_leaf);
    let mut builder = CubeBuilder::new(schema)
        .rows(spec.base_rows)
        .seed(spec.seed)
        .base_name("ABCD")
        .materialize("A'B'C'D")
        .materialize("A'B''C'D")
        .materialize("A''B'C'D")
        .materialize("A''B''C''D");
    if spec.with_indexes {
        // Indexes at the middle levels: fine enough for every predicate the
        // paper's queries use (`X''` members, `X''.CHILDREN` = X' members,
        // `FILTER(D.DD1)` = a D' member) while keeping bitmap counts small.
        for table in ["ABCD", "A'B'C'D"] {
            for level in ["A'", "B'", "C'", "D'"] {
                builder = builder.index(table, level);
            }
        }
    }
    builder.build()
}

/// Builds cubes: generates a uniform base table, materializes views, builds
/// indexes. Used by [`paper_cube`] and directly by the examples.
#[derive(Debug)]
pub struct CubeBuilder {
    schema: StarSchema,
    rows: u64,
    seed: u64,
    base_name: Option<String>,
    views: Vec<(String, AggFn)>,
    indexes: Vec<(String, String)>,
    index_format: IndexFormat,
    zipf_theta: f64,
    with_stats: bool,
    cluster_by: Option<String>,
    compress: bool,
}

impl CubeBuilder {
    /// Starts a builder over `schema`.
    pub fn new(schema: StarSchema) -> Self {
        CubeBuilder {
            schema,
            rows: 10_000,
            seed: 0,
            base_name: None,
            views: Vec::new(),
            indexes: Vec::new(),
            index_format: IndexFormat::Plain,
            zipf_theta: 0.0,
            with_stats: false,
            cluster_by: None,
            compress: false,
        }
    }

    /// Sets the base-table row count.
    pub fn rows(mut self, rows: u64) -> Self {
        self.rows = rows;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Names the base table (defaults to the finest group-by shorthand).
    pub fn base_name(mut self, name: impl Into<String>) -> Self {
        self.base_name = Some(name.into());
        self
    }

    /// Materializes a SUM view at the given group-by shorthand.
    pub fn materialize(mut self, group_by: impl Into<String>) -> Self {
        self.views.push((group_by.into(), AggFn::Sum));
        self
    }

    /// Materializes a view holding `agg` of the measure (SUM views keep the
    /// bare shorthand as their name; others are named `AGG:shorthand`).
    ///
    /// # Panics (at build time)
    /// `AggFn::Avg` views are rejected — averages cannot be re-aggregated,
    /// so such a view could never answer anything.
    pub fn materialize_agg(mut self, group_by: impl Into<String>, agg: AggFn) -> Self {
        self.views.push((group_by.into(), agg));
        self
    }

    /// Builds a bitmap join index on the table named `table`, keyed at the
    /// hierarchy level named `level` (e.g. `"A'"` indexes dimension A at
    /// its middle level).
    pub fn index(mut self, table: impl Into<String>, level: impl Into<String>) -> Self {
        self.indexes.push((table.into(), level.into()));
        self
    }

    /// Sets the storage format used for all indexes built by this builder.
    pub fn index_format(mut self, format: IndexFormat) -> Self {
        self.index_format = format;
        self
    }

    /// Collects per-dimension frequency histograms from the generated base
    /// table, enabling histogram-exact predicate selectivities in the cost
    /// model (off by default — the paper's optimizer assumes uniformity).
    pub fn collect_stats(mut self) -> Self {
        self.with_stats = true;
        self
    }

    /// Sorts the generated base rows by the named dimension's leaf key
    /// before loading — the clustering a time-ordered fact load produces.
    /// The sort is stable, so rows sharing a key keep their generation
    /// order and the load stays deterministic. Zone maps (see
    /// `starshare_storage::HeapFile`) only prune clustered dimensions, so
    /// this is what makes partition pruning effective. Views are
    /// unaffected (they stay hash-ordered).
    ///
    /// # Panics (at build time)
    /// Panics if no dimension has that name.
    pub fn cluster_by(mut self, dim: impl Into<String>) -> Self {
        self.cluster_by = Some(dim.into());
        self
    }

    /// Stores every generated table compressed: pages are sealed as they
    /// fill (bit-packed keys, quantized measures) and reads decode through
    /// the same byte-priced buffer-pool path. Results are bit-identical to
    /// the uncompressed build; only the bytes accounting changes.
    pub fn compress(mut self) -> Self {
        self.compress = true;
        self
    }

    /// Skews the generated keys: every dimension draws its leaf members
    /// from a Zipf(θ) distribution instead of uniformly (θ = 0 is uniform;
    /// θ = 1 is classic Zipf). Real dimensional data is skewed, and the
    /// cost model's uniformity assumption degrades with θ — the `ablations`
    /// harness quantifies by how much.
    pub fn skew(mut self, theta: f64) -> Self {
        assert!(theta >= 0.0, "zipf theta must be non-negative");
        self.zipf_theta = theta;
        self
    }

    /// Generates everything.
    ///
    /// Views are materialized from the smallest already-built table that
    /// derives them (declaration order matters only for ties). Panics on an
    /// unknown group-by, table, or dimension name.
    pub fn build(self) -> Cube {
        let schema = self.schema;
        let n_dims = schema.n_dims();
        let mut catalog = Catalog::new();

        // Base table: keys at every leaf (uniform, or Zipf when skewed),
        // measure in [0, 100). Measures are quantized to quarter units
        // (exact binary fractions), so f64 summation over them is exact at
        // any realistic scale: every re-aggregation of a finer result —
        // materialized views, the result cache's subsumption rollups —
        // reproduces direct evaluation bit-for-bit.
        let mut rng = Prng::seed_from_u64(self.seed);
        let layout = TupleLayout::new(n_dims);
        let base_file = catalog.alloc_file_id();
        let mut heap = HeapFile::new(base_file, layout);
        let cards: Vec<u32> = (0..n_dims).map(|d| schema.dim(d).cardinality(0)).collect();
        // Per-dimension Zipf CDFs (empty when uniform, keeping the uniform
        // path — and its sampling sequence — byte-identical to before).
        let cdfs: Vec<Vec<f64>> = if self.zipf_theta > 0.0 {
            cards
                .iter()
                .map(|&c| zipf_cdf(c, self.zipf_theta))
                .collect()
        } else {
            Vec::new()
        };
        let cluster_dim = self.cluster_by.as_deref().map(|name| {
            (0..n_dims)
                .find(|&d| schema.dim(d).name() == name)
                .unwrap_or_else(|| panic!("no dimension named {name}"))
        });
        let mut keys = vec![0u32; n_dims];
        let gen_row = |keys: &mut [u32], rng: &mut Prng| -> f64 {
            for (d, k) in keys.iter_mut().enumerate() {
                *k = if self.zipf_theta > 0.0 {
                    let u: f64 = rng.gen_f64();
                    cdfs[d].partition_point(|&p| p < u) as u32
                } else {
                    rng.gen_range(0..cards[d])
                };
            }
            rng.gen_range(0u32..400) as f64 * 0.25
        };
        match cluster_dim {
            None => {
                for _ in 0..self.rows {
                    let measure = gen_row(&mut keys, &mut rng);
                    heap.append(&keys, measure);
                }
            }
            Some(cd) => {
                // Generate first (same RNG sequence as the unclustered
                // path), then load in stable sorted order by the cluster
                // key. Flat buffers + an index sort keep the peak memory
                // proportional to the data, not to per-row allocations.
                let n = self.rows as usize;
                let mut flat: Vec<u32> = Vec::with_capacity(n * n_dims);
                let mut measures: Vec<f64> = Vec::with_capacity(n);
                for _ in 0..self.rows {
                    measures.push(gen_row(&mut keys, &mut rng));
                    flat.extend_from_slice(&keys);
                }
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by_key(|&i| flat[i as usize * n_dims + cd]);
                for &i in &order {
                    let r = i as usize;
                    heap.append(&flat[r * n_dims..(r + 1) * n_dims], measures[r]);
                }
            }
        }
        if self.compress {
            heap.compress();
        }
        let finest = GroupBy::finest(n_dims);
        let base_name = self.base_name.unwrap_or_else(|| finest.display(&schema));
        catalog.add_table(StoredTable::new(base_name, finest, heap));

        // Views, each built from the smallest existing source that derives
        // the target levels *and* whose measure supports the view's agg.
        for (view, agg) in &self.views {
            let target =
                GroupBy::parse(&schema, view).unwrap_or_else(|e| panic!("bad view {view:?}: {e}"));
            let name = match agg {
                AggFn::Sum => view.clone(),
                other => format!("{other}:{view}"),
            };
            assert!(
                catalog.find_by_name(&name).is_none(),
                "view {name} declared twice"
            );
            let source: TableId = catalog
                .iter()
                .filter(|(_, t)| t.group_by().derives(&target) && t.measure().answers(*agg))
                .min_by_key(|(_, t)| t.n_rows())
                .map(|(id, _)| id)
                .unwrap_or_else(|| panic!("no source derives {name}"));
            let file = catalog.alloc_file_id();
            let mut table =
                materialize_agg(&schema, catalog.table(source), target, *agg, name, file);
            if self.compress {
                table.heap_mut().compress();
            }
            catalog.add_table(table);
        }

        // Indexes.
        for (table_name, level_name) in &self.indexes {
            let tid = catalog
                .find_by_name(table_name)
                .unwrap_or_else(|| panic!("no table named {table_name}"));
            let (d, level) = schema
                .dim_of_level(level_name)
                .unwrap_or_else(|| panic!("no level named {level_name}"));
            let file = catalog.alloc_file_id();
            catalog.table_mut(tid).build_index_with_format(
                &schema,
                d,
                level,
                self.index_format,
                file,
            );
        }

        let mut cube = Cube::new(schema, catalog);
        if self.with_stats {
            cube.collect_stats();
        }
        cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> PaperCubeSpec {
        PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 24,
            seed: 42,
            with_indexes: true,
        }
    }

    #[test]
    fn paper_schema_cardinalities() {
        let s = paper_schema(18432);
        assert_eq!(s.n_dims(), 4);
        for d in 0..3 {
            assert_eq!(s.dim(d).cardinality(2), 3);
            assert_eq!(s.dim(d).cardinality(1), 6);
            assert_eq!(s.dim(d).cardinality(0), 60);
        }
        assert_eq!(s.dim(3).cardinality(2), 3);
        assert_eq!(s.dim(3).cardinality(1), 24);
        assert_eq!(s.dim(3).cardinality(0), 18432);
        // The paper's member names resolve.
        assert_eq!(s.dim(0).find_member("A1"), Some((2, 0)));
        assert_eq!(s.dim(3).find_member("DD1"), Some((1, 0)));
    }

    #[test]
    fn paper_cube_has_expected_tables() {
        let cube = paper_cube(tiny_spec());
        let names: Vec<&str> = cube.catalog.iter().map(|(_, t)| t.name()).collect();
        assert_eq!(
            names,
            vec!["ABCD", "A'B'C'D", "A'B''C'D", "A''B'C'D", "A''B''C''D"]
        );
        let base = cube.catalog.table(cube.catalog.base_table().unwrap());
        assert_eq!(base.n_rows(), 5_000);
        // Indexes at the middle level on all four dims of base and A'B'C'D.
        for name in ["ABCD", "A'B'C'D"] {
            let t = cube.catalog.table(cube.catalog.find_by_name(name).unwrap());
            for d in 0..4 {
                let ix = t.index(d).unwrap_or_else(|| panic!("{name} dim {d}"));
                assert_eq!(ix.level, 1, "{name} dim {d}");
            }
        }
    }

    #[test]
    fn view_sizes_preserve_paper_ratios() {
        // At scale, A'B'C'D must be larger than the two mid views but by
        // less than 2×, and A''B''C''D much smaller — the Test-4 geometry.
        let cube = paper_cube(PaperCubeSpec {
            base_rows: 50_000,
            d_leaf: 192,
            seed: 7,
            with_indexes: false,
        });
        let rows = |n: &str| {
            cube.catalog
                .table(cube.catalog.find_by_name(n).unwrap())
                .n_rows() as f64
        };
        let big = rows("A'B'C'D");
        let mid1 = rows("A'B''C'D");
        let mid2 = rows("A''B'C'D");
        let small = rows("A''B''C''D");
        assert!(big > mid1 && big > mid2, "{big} {mid1} {mid2}");
        assert!(big / mid1 < 2.0, "ratio {}", big / mid1);
        assert!((mid1 - mid2).abs() / mid1 < 0.1, "{mid1} vs {mid2}");
        assert!(small < 0.5 * mid1, "{small} vs {mid1}");
    }

    #[test]
    fn views_sum_to_base_total() {
        let cube = paper_cube(tiny_spec());
        let total = |name: &str| {
            let t = cube.catalog.table(cube.catalog.find_by_name(name).unwrap());
            let mut keys = vec![0u32; 4];
            (0..t.n_rows())
                .map(|p| t.heap().read_at(p, &mut keys))
                .sum::<f64>()
        };
        let base = total("ABCD");
        for v in ["A'B'C'D", "A'B''C'D", "A''B'C'D", "A''B''C''D"] {
            let vt = total(v);
            assert!(
                (vt - base).abs() < 1e-6 * base.abs().max(1.0),
                "{v}: {vt} vs base {base}"
            );
        }
    }

    #[test]
    fn clustered_compressed_build_holds_the_same_rows() {
        let plain = CubeBuilder::new(paper_schema(24))
            .rows(4_000)
            .seed(9)
            .materialize("A'B'C'D")
            .build();
        let built = CubeBuilder::new(paper_schema(24))
            .rows(4_000)
            .seed(9)
            .materialize("A'B'C'D")
            .cluster_by("D")
            .compress()
            .build();
        let collect = |cube: &Cube, name: &str| -> Vec<(Vec<u32>, u64)> {
            let t = cube.catalog.table(cube.catalog.find_by_name(name).unwrap());
            let mut keys = vec![0u32; 4];
            (0..t.n_rows())
                .map(|p| {
                    let m = t.heap().read_at(p, &mut keys);
                    (keys.clone(), m.to_bits())
                })
                .collect()
        };
        // Base: clustered order, same multiset, bit-identical measures.
        let clustered = collect(&built, "ABCD");
        for w in clustered.windows(2) {
            assert!(w[0].0[3] <= w[1].0[3], "base must be sorted by D");
        }
        let mut a = collect(&plain, "ABCD");
        let mut b = clustered;
        a.sort();
        b.sort();
        assert_eq!(a, b, "clustering+compression must not alter the data");
        // Views aggregate the same multiset in the same hash order, so
        // they come out row-identical despite the base reorder.
        assert_eq!(collect(&plain, "A'B'C'D"), collect(&built, "A'B'C'D"));
        let base = built.catalog.table(built.catalog.base_table().unwrap());
        assert!(base.heap().is_compressed());
        assert!(base.heap().resident_bytes() < base.heap().page_count() as u64 * 8192);
    }

    #[test]
    fn generation_is_deterministic() {
        let c1 = paper_cube(tiny_spec());
        let c2 = paper_cube(tiny_spec());
        let t1 = c1.catalog.table(TableId(0));
        let t2 = c2.catalog.table(TableId(0));
        assert_eq!(t1.n_rows(), t2.n_rows());
        let mut k1 = vec![0u32; 4];
        let mut k2 = vec![0u32; 4];
        for pos in (0..t1.n_rows()).step_by(379) {
            let m1 = t1.heap().read_at(pos, &mut k1);
            let m2 = t2.heap().read_at(pos, &mut k2);
            assert_eq!(k1, k2);
            assert_eq!(m1, m2);
        }
    }

    #[test]
    fn scaled_spec_preserves_structure() {
        let s = PaperCubeSpec::scaled(0.01);
        assert_eq!(s.base_rows, 20_000);
        assert!(s.d_leaf.is_multiple_of(24));
        assert!(s.d_leaf >= 24);
        let full = PaperCubeSpec::scaled(1.0);
        assert_eq!(full.base_rows, 2_000_000);
        assert_eq!(full.d_leaf, 18432);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        PaperCubeSpec::scaled(0.0);
    }

    #[test]
    fn builder_panics_on_unknown_view() {
        let schema = paper_schema(24);
        let r = std::panic::catch_unwind(|| {
            CubeBuilder::new(schema).rows(10).materialize("XYZ").build()
        });
        assert!(r.is_err());
    }

    #[test]
    fn builder_materializes_from_smallest_source() {
        // A''B''C''D should be derived from a mid view, not the base —
        // verified indirectly: results must still equal base-derived.
        let cube = paper_cube(tiny_spec());
        let schema = &cube.schema;
        let small = cube
            .catalog
            .table(cube.catalog.find_by_name("A''B''C''D").unwrap());
        let base = cube
            .catalog
            .table(cube.catalog.find_by_name("ABCD").unwrap());
        let direct = crate::catalog::materialize(
            schema,
            base,
            small.group_by().clone(),
            "check",
            starshare_storage::FileId(999),
        );
        assert_eq!(small.n_rows(), direct.n_rows());
        let mut k1 = vec![0u32; 4];
        let mut k2 = vec![0u32; 4];
        for pos in 0..small.n_rows() {
            let m1 = small.heap().read_at(pos, &mut k1);
            let m2 = direct.heap().read_at(pos, &mut k2);
            assert_eq!(k1, k2, "row {pos}");
            assert!((m1 - m2).abs() < 1e-9 * m1.abs().max(1.0));
        }
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_a_distribution() {
        let cdf = zipf_cdf(10, 1.0);
        assert_eq!(cdf.len(), 10);
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
        // First rank carries the most mass.
        assert!(cdf[0] > 0.2);
    }

    #[test]
    fn skewed_cube_concentrates_on_low_members() {
        let schema = StarSchema::new(vec![Dimension::uniform("X", 2, &[10])], "m");
        let cube = CubeBuilder::new(schema.clone())
            .rows(5_000)
            .seed(8)
            .skew(1.0)
            .build();
        let t = cube.catalog.table(TableId(0));
        let mut keys = [0u32; 1];
        let mut low = 0u64;
        for pos in 0..t.n_rows() {
            t.heap().read_at(pos, &mut keys);
            if keys[0] < 4 {
                low += 1;
            }
        }
        // Uniform would put 20% in the first 4 of 20 members; Zipf(1) puts
        // well over half there.
        assert!(low as f64 > 0.5 * t.n_rows() as f64, "{low}");
        // Unskewed generation is unchanged (same seed → same data as ever).
        let uni = CubeBuilder::new(schema).rows(5_000).seed(8).build();
        let tu = uni.catalog.table(TableId(0));
        let mut low_u = 0u64;
        for pos in 0..tu.n_rows() {
            tu.heap().read_at(pos, &mut keys);
            if keys[0] < 4 {
                low_u += 1;
            }
        }
        assert!((low_u as f64) < 0.3 * tu.n_rows() as f64);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_skew_rejected() {
        let schema = StarSchema::new(vec![Dimension::uniform("X", 2, &[2])], "m");
        let _ = CubeBuilder::new(schema).skew(-1.0);
    }
}
