//! Group-bys, predicates, and the dimensional query unit.
//!
//! A [`GroupBy`] names one level per dimension — a point in the group-by
//! lattice. The paper's shorthand `A'B''C''D` is parsed and printed by
//! [`GroupBy::parse`] / [`GroupBy::display`]. A [`GroupByQuery`] pairs a
//! target group-by with per-dimension member predicates; it is exactly one
//! of the "several related dimensional queries" an MDX expression expands
//! into, and the unit the optimizer assigns to a base table.

use crate::error::OlapError;
use crate::schema::{DimId, StarSchema};

/// Reference to a hierarchy level of one dimension, or `All` (the dimension
/// is aggregated away entirely — coarser than every level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LevelRef {
    /// A concrete level, 0 = leaf.
    Level(u8),
    /// Aggregated away.
    All,
}

impl LevelRef {
    /// True if data stored at `self` can produce data at `target`
    /// (i.e. `self` is at least as fine).
    pub fn provides(self, target: LevelRef) -> bool {
        match (self, target) {
            (_, LevelRef::All) => true,
            (LevelRef::All, LevelRef::Level(_)) => false,
            (LevelRef::Level(s), LevelRef::Level(t)) => s <= t,
        }
    }

    /// The finer of two level refs.
    pub fn finer(self, other: LevelRef) -> LevelRef {
        match (self, other) {
            (LevelRef::All, x) | (x, LevelRef::All) => x,
            (LevelRef::Level(a), LevelRef::Level(b)) => LevelRef::Level(a.min(b)),
        }
    }

    /// The concrete level index, if any.
    pub fn level(self) -> Option<u8> {
        match self {
            LevelRef::Level(l) => Some(l),
            LevelRef::All => None,
        }
    }
}

/// One level per dimension: a node of the group-by lattice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupBy {
    levels: Vec<LevelRef>,
}

impl GroupBy {
    /// Creates a group-by from explicit level refs (one per dimension).
    pub fn new(levels: Vec<LevelRef>) -> Self {
        GroupBy { levels }
    }

    /// The all-leaf group-by (the base data, `LL` in the paper).
    pub fn finest(n_dims: usize) -> Self {
        GroupBy {
            levels: vec![LevelRef::Level(0); n_dims],
        }
    }

    /// Parses the paper's shorthand against a schema: dimension names in
    /// schema order, each followed by prime marks counting the level
    /// (`A''` = level 2 of A) or `*` for `All`. Example: `"A'B''C''D"`.
    pub fn parse(schema: &StarSchema, s: &str) -> Result<Self, OlapError> {
        let mut rest = s;
        let mut levels = Vec::with_capacity(schema.n_dims());
        for dim in schema.dimensions() {
            rest = rest
                .strip_prefix(dim.name())
                .ok_or_else(|| format!("expected dimension {} in {s:?}", dim.name()))?;
            if let Some(r) = rest.strip_prefix('*') {
                rest = r;
                levels.push(LevelRef::All);
                continue;
            }
            let primes = rest.chars().take_while(|&c| c == '\'').count();
            rest = &rest[primes..];
            let lvl = primes as u8;
            if lvl >= dim.n_levels() {
                return Err(OlapError::new(format!(
                    "dimension {} has no level {} in {s:?}",
                    dim.name(),
                    lvl
                )));
            }
            levels.push(LevelRef::Level(lvl));
        }
        if !rest.is_empty() {
            return Err(OlapError::new(format!(
                "trailing input {rest:?} in group-by {s:?}"
            )));
        }
        Ok(GroupBy { levels })
    }

    /// Renders the shorthand (`A'B''C''D`; `All` prints as `X*`).
    pub fn display(&self, schema: &StarSchema) -> String {
        let mut out = String::new();
        for (d, lr) in self.levels.iter().enumerate() {
            out.push_str(schema.dim(d).name());
            match lr {
                LevelRef::Level(l) => out.push_str(&"'".repeat(*l as usize)),
                LevelRef::All => out.push('*'),
            }
        }
        out
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.levels.len()
    }

    /// The level for dimension `d`.
    pub fn level(&self, d: DimId) -> LevelRef {
        self.levels[d]
    }

    /// All levels in dimension order.
    pub fn levels(&self) -> &[LevelRef] {
        &self.levels
    }

    /// True if every target level is derivable from this group-by's levels
    /// (this ≤ other in lattice order, i.e. `self` is finer-or-equal).
    pub fn derives(&self, target: &GroupBy) -> bool {
        assert_eq!(self.n_dims(), target.n_dims(), "dimension count mismatch");
        self.levels
            .iter()
            .zip(&target.levels)
            .all(|(s, t)| s.provides(*t))
    }

    /// Coarseness rank used for the algorithms' "Sort G by GroupbyLevel":
    /// the sum of level indexes (`All` counts as one past the top). Finer
    /// group-bys rank lower.
    pub fn coarseness(&self, schema: &StarSchema) -> u32 {
        self.levels
            .iter()
            .enumerate()
            .map(|(d, lr)| match lr {
                LevelRef::Level(l) => *l as u32,
                LevelRef::All => schema.dim(d).n_levels() as u32,
            })
            .sum()
    }

    /// Product of per-dimension cardinalities: the number of possible key
    /// combinations at this group-by (`All` contributes 1).
    pub fn combinations(&self, schema: &StarSchema) -> f64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(d, lr)| match lr {
                LevelRef::Level(l) => schema.dim(d).cardinality(*l) as f64,
                LevelRef::All => 1.0,
            })
            .product()
    }

    /// Cardinality of each *grouped* dimension at its target level, in
    /// dimension order (`All` dimensions are omitted — they contribute no
    /// key component). These are the radixes of a mixed-radix packing of
    /// the aggregation key.
    pub fn key_cardinalities(&self, schema: &StarSchema) -> Vec<u32> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(d, lr)| match lr {
                LevelRef::Level(l) => Some(schema.dim(d).cardinality(*l)),
                LevelRef::All => None,
            })
            .collect()
    }

    /// Exact number of possible group keys at this group-by, or `None` when
    /// the product overflows `u64` (only pathologically wide schemas). The
    /// executor uses this to pick an aggregation kernel tier at compile
    /// time: small → dense array, fits-in-u64 → packed hash, else spill.
    pub fn exact_combinations(&self, schema: &StarSchema) -> Option<u64> {
        self.key_cardinalities(schema)
            .into_iter()
            .try_fold(1u64, |acc, c| acc.checked_mul(c as u64))
    }
}

/// A per-dimension selection predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemberPred {
    /// No restriction.
    All,
    /// The dimension's value must roll up into one of `members` at `level`.
    /// `members` is sorted and deduplicated.
    In { level: u8, members: Vec<u32> },
}

impl MemberPred {
    /// Builds an `In` predicate, normalizing member order.
    pub fn members_in(level: u8, mut members: Vec<u32>) -> Self {
        members.sort_unstable();
        members.dedup();
        MemberPred::In { level, members }
    }

    /// A single-member predicate.
    pub fn eq(level: u8, member: u32) -> Self {
        MemberPred::In {
            level,
            members: vec![member],
        }
    }

    /// The level the predicate is expressed at, if restricted.
    pub fn level(&self) -> Option<u8> {
        match self {
            MemberPred::All => None,
            MemberPred::In { level, .. } => Some(*level),
        }
    }

    /// True if `key`, stored at `stored_level` of dimension `d`, satisfies
    /// the predicate.
    ///
    /// # Panics
    /// Panics if the predicate's level is finer than `stored_level` (the
    /// planner must never route a query to a table that lost the predicate
    /// column).
    pub fn matches(&self, schema: &StarSchema, d: DimId, stored_level: u8, key: u32) -> bool {
        match self {
            MemberPred::All => true,
            MemberPred::In { level, members } => {
                let rolled = schema.dim(d).roll_up(key, stored_level, *level);
                members.binary_search(&rolled).is_ok()
            }
        }
    }

    /// Fraction of the dimension the predicate keeps, assuming uniformity.
    pub fn selectivity(&self, schema: &StarSchema, d: DimId) -> f64 {
        match self {
            MemberPred::All => 1.0,
            MemberPred::In { level, members } => {
                members.len() as f64 / schema.dim(d).cardinality(*level) as f64
            }
        }
    }

    /// Expands the predicate's member set down to `target_level` (for
    /// driving a bitmap index stored at that finer level).
    pub fn expand_to_level(
        &self,
        schema: &StarSchema,
        d: DimId,
        target_level: u8,
    ) -> Option<Vec<u32>> {
        match self {
            MemberPred::All => None,
            MemberPred::In { level, members } => {
                assert!(
                    target_level <= *level,
                    "cannot expand predicate at level {level} up to {target_level}"
                );
                let mut out = Vec::new();
                for &m in members {
                    out.extend(schema.dim(d).descendants(m, *level, target_level));
                }
                Some(out)
            }
        }
    }

    /// Renders the predicate for plan explain output.
    pub fn display(&self, schema: &StarSchema, d: DimId) -> String {
        match self {
            MemberPred::All => "*".to_string(),
            MemberPred::In { level, members } => {
                let names: Vec<String> = members
                    .iter()
                    .map(|&m| schema.dim(d).member_name(*level, m))
                    .collect();
                format!(
                    "{} IN ({})",
                    schema.dim(d).level(*level).name,
                    names.join(", ")
                )
            }
        }
    }
}

/// The aggregate function a query applies to the measure.
///
/// The paper evaluates SUM only; the others are supported with the correct
/// view-derivability rules (a COUNT query, for example, can be answered
/// from the raw fact table or from a COUNT view — whose cells it *sums* —
/// but never from a SUM view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggFn {
    /// Sum of the measure (the paper's setting).
    #[default]
    Sum,
    /// Row count.
    Count,
    /// Minimum measure.
    Min,
    /// Maximum measure.
    Max,
    /// Arithmetic mean (not re-aggregatable: answerable from raw data only).
    Avg,
}

impl AggFn {
    /// Parses a case-insensitive name.
    pub fn parse(s: &str) -> Option<AggFn> {
        Some(match s.to_ascii_lowercase().as_str() {
            "sum" => AggFn::Sum,
            "count" => AggFn::Count,
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            "avg" | "average" | "mean" => AggFn::Avg,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggFn::Sum => write!(f, "SUM"),
            AggFn::Count => write!(f, "COUNT"),
            AggFn::Min => write!(f, "MIN"),
            AggFn::Max => write!(f, "MAX"),
            AggFn::Avg => write!(f, "AVG"),
        }
    }
}

/// One dimensional query: a target group-by plus per-dimension predicates.
///
/// In relational terms: a star join of the fact table (or a materialized
/// group-by) with its dimensions, a conjunctive member predicate per
/// dimension, and an aggregation (SUM by default — the paper's canonical
/// query shape, §2) to the target group-by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupByQuery {
    /// Target group-by.
    pub group_by: GroupBy,
    /// One predicate per dimension.
    pub preds: Vec<MemberPred>,
    /// The aggregate applied to the measure.
    pub agg: AggFn,
}

impl GroupByQuery {
    /// Creates a SUM query.
    ///
    /// # Panics
    /// Panics if predicate count differs from the group-by's dimension
    /// count.
    pub fn new(group_by: GroupBy, preds: Vec<MemberPred>) -> Self {
        assert_eq!(
            group_by.n_dims(),
            preds.len(),
            "one predicate per dimension"
        );
        GroupByQuery {
            group_by,
            preds,
            agg: AggFn::Sum,
        }
    }

    /// Replaces the aggregate function.
    pub fn with_agg(mut self, agg: AggFn) -> Self {
        self.agg = agg;
        self
    }

    /// A SUM query with no predicates.
    pub fn unfiltered(group_by: GroupBy) -> Self {
        let n = group_by.n_dims();
        GroupByQuery {
            group_by,
            preds: vec![MemberPred::All; n],
            agg: AggFn::Sum,
        }
    }

    /// The finest level the query needs per dimension: the finer of the
    /// target level and the predicate level. A table derives this query iff
    /// it stores every dimension at least this fine.
    pub fn required_levels(&self) -> GroupBy {
        let levels = self
            .group_by
            .levels()
            .iter()
            .enumerate()
            .map(|(d, &target)| match self.preds[d].level() {
                Some(pl) => target.finer(LevelRef::Level(pl)),
                None => target,
            })
            .collect();
        GroupBy::new(levels)
    }

    /// True if a table storing `stored` levels can answer this query.
    pub fn answerable_from(&self, stored: &GroupBy) -> bool {
        stored.derives(&self.required_levels())
    }

    /// Combined selectivity of all predicates (independence assumption).
    pub fn selectivity(&self, schema: &StarSchema) -> f64 {
        self.preds
            .iter()
            .enumerate()
            .map(|(d, p)| p.selectivity(schema, d))
            .product()
    }

    /// Renders `target [pred, pred, …]` for explain output (the aggregate
    /// is shown only when it differs from the paper's default SUM).
    pub fn display(&self, schema: &StarSchema) -> String {
        let agg = match self.agg {
            AggFn::Sum => String::new(),
            other => format!("{other} "),
        };
        let preds: Vec<String> = self
            .preds
            .iter()
            .enumerate()
            .filter(|(_, p)| !matches!(p, MemberPred::All))
            .map(|(d, p)| p.display(schema, d))
            .collect();
        if preds.is_empty() {
            format!("{agg}{}", self.group_by.display(schema))
        } else {
            format!(
                "{agg}{} [{}]",
                self.group_by.display(schema),
                preds.join(" AND ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dimension;

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 3, &[2, 10]),
                Dimension::uniform("B", 3, &[2, 10]),
                Dimension::uniform("C", 3, &[2, 10]),
                Dimension::uniform("D", 3, &[8, 300]),
            ],
            "dollars",
        )
    }

    #[test]
    fn level_ref_provides() {
        use LevelRef::*;
        assert!(Level(0).provides(Level(2)));
        assert!(Level(1).provides(Level(1)));
        assert!(!Level(2).provides(Level(1)));
        assert!(Level(2).provides(All));
        assert!(All.provides(All));
        assert!(!All.provides(Level(0)));
        assert_eq!(Level(1).finer(Level(2)), Level(1));
        assert_eq!(All.finer(Level(2)), Level(2));
        assert_eq!(All.finer(All), All);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = schema();
        for txt in ["ABCD", "A'B''C''D", "A''B''C''D''", "A*B'C*D"] {
            let gb = GroupBy::parse(&s, txt).unwrap();
            assert_eq!(gb.display(&s), txt, "{txt}");
        }
        let gb = GroupBy::parse(&s, "A'B''C''D").unwrap();
        assert_eq!(gb.level(0), LevelRef::Level(1));
        assert_eq!(gb.level(1), LevelRef::Level(2));
        assert_eq!(gb.level(3), LevelRef::Level(0));
    }

    #[test]
    fn parse_rejects_garbage() {
        let s = schema();
        assert!(GroupBy::parse(&s, "AB").is_err()); // missing dims
        assert!(GroupBy::parse(&s, "A'''B''C''D").is_err()); // no level 3
        assert!(GroupBy::parse(&s, "A'B''C''Dx").is_err()); // trailing
        assert!(GroupBy::parse(&s, "XYZW").is_err());
    }

    #[test]
    fn derivability_in_lattice() {
        let s = schema();
        let base = GroupBy::finest(4);
        let mid = GroupBy::parse(&s, "A'B'C'D").unwrap();
        let q1 = GroupBy::parse(&s, "A'B''C''D").unwrap();
        let q2 = GroupBy::parse(&s, "A''B'C''D").unwrap();
        assert!(base.derives(&mid));
        assert!(mid.derives(&q1));
        assert!(mid.derives(&q2));
        assert!(!q1.derives(&mid));
        // The paper's key non-derivability: Q1's optimum and Q2's optimum
        // cannot answer each other.
        let v1 = GroupBy::parse(&s, "A'B''C'D").unwrap();
        let v2 = GroupBy::parse(&s, "A''B'C'D").unwrap();
        assert!(v1.derives(&q1));
        assert!(!v1.derives(&q2));
        assert!(v2.derives(&q2));
        assert!(!v2.derives(&q1));
        // Everything derives itself.
        for g in [&base, &mid, &q1, &q2] {
            assert!(g.derives(g));
        }
    }

    #[test]
    fn coarseness_and_combinations() {
        let s = schema();
        assert_eq!(GroupBy::finest(4).coarseness(&s), 0);
        assert_eq!(GroupBy::parse(&s, "A'B''C''D").unwrap().coarseness(&s), 5);
        assert_eq!(GroupBy::parse(&s, "A*B*C*D*").unwrap().coarseness(&s), 12);
        let gb = GroupBy::parse(&s, "A''B''C''D''").unwrap();
        assert_eq!(gb.combinations(&s), 81.0);
        let gball = GroupBy::parse(&s, "A*B*C*D*").unwrap();
        assert_eq!(gball.combinations(&s), 1.0);
    }

    #[test]
    fn key_cardinalities_and_exact_combinations() {
        let s = schema();
        let gb = GroupBy::parse(&s, "A'B''C*D").unwrap();
        assert_eq!(gb.key_cardinalities(&s), vec![6, 3, 7200]);
        assert_eq!(gb.exact_combinations(&s), Some(6 * 3 * 7200));
        assert_eq!(
            gb.exact_combinations(&s).map(|n| n as f64),
            Some(gb.combinations(&s))
        );
        let all = GroupBy::parse(&s, "A*B*C*D*").unwrap();
        assert_eq!(all.key_cardinalities(&s), Vec::<u32>::new());
        assert_eq!(all.exact_combinations(&s), Some(1));
        // Overflow: seven dimensions of 2^10 members each exceed u64.
        let wide = StarSchema::new(
            (0..7)
                .map(|i| Dimension::uniform(format!("X{i}"), 1 << 10, &[]))
                .collect(),
            "m",
        );
        let fine = GroupBy::finest(7);
        assert_eq!(fine.exact_combinations(&wide), None);
        assert!(fine.combinations(&wide) > u64::MAX as f64);
    }

    #[test]
    fn pred_matches_with_rollup() {
        let s = schema();
        // Pred: A'' = A1 (top member 0). Keys stored at leaf level.
        let p = MemberPred::eq(2, 0);
        assert!(p.matches(&s, 0, 0, 0)); // leaf 0 → top 0
        assert!(p.matches(&s, 0, 0, 19)); // leaf 19 → top 0
        assert!(!p.matches(&s, 0, 0, 20)); // leaf 20 → top 1
                                           // Keys stored at mid level.
        assert!(p.matches(&s, 0, 1, 1));
        assert!(!p.matches(&s, 0, 1, 2));
        assert!(MemberPred::All.matches(&s, 0, 0, 59));
    }

    #[test]
    fn pred_normalizes_members() {
        let p = MemberPred::members_in(1, vec![3, 1, 3, 2]);
        assert_eq!(
            p,
            MemberPred::In {
                level: 1,
                members: vec![1, 2, 3]
            }
        );
    }

    #[test]
    fn pred_selectivity() {
        let s = schema();
        assert_eq!(MemberPred::All.selectivity(&s, 0), 1.0);
        assert_eq!(MemberPred::eq(2, 0).selectivity(&s, 0), 1.0 / 3.0);
        assert_eq!(
            MemberPred::members_in(1, vec![0, 1]).selectivity(&s, 0),
            2.0 / 6.0
        );
    }

    #[test]
    fn pred_expand_to_finer_level() {
        let s = schema();
        let p = MemberPred::eq(2, 1); // A'' = A2
        let mids = p.expand_to_level(&s, 0, 1).unwrap();
        assert_eq!(mids, vec![2, 3]);
        let leaves = p.expand_to_level(&s, 0, 0).unwrap();
        assert_eq!(leaves, (20..40).collect::<Vec<_>>());
        assert!(MemberPred::All.expand_to_level(&s, 0, 0).is_none());
    }

    #[test]
    fn required_levels_take_finer_of_target_and_pred() {
        let s = schema();
        // Target A''…, but predicate at A' → required level is A'.
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B''C''D").unwrap(),
            vec![
                MemberPred::eq(1, 3),
                MemberPred::All,
                MemberPred::eq(2, 0),
                MemberPred::All,
            ],
        );
        let req = q.required_levels();
        assert_eq!(req.level(0), LevelRef::Level(1));
        assert_eq!(req.level(1), LevelRef::Level(2));
        assert_eq!(req.level(2), LevelRef::Level(2));
        assert_eq!(req.level(3), LevelRef::Level(0));
        let v = GroupBy::parse(&s, "A'B'C'D").unwrap();
        assert!(q.answerable_from(&v));
        let too_coarse = GroupBy::parse(&s, "A''B'C'D").unwrap();
        assert!(!q.answerable_from(&too_coarse));
    }

    #[test]
    fn query_selectivity_multiplies() {
        let s = schema();
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B''C''D").unwrap(),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
            ],
        );
        assert!((q.selectivity(&s) - 1.0 / 9.0).abs() < 1e-12);
    }

    /// Derivability is a partial order over the lattice — the property
    /// the result cache's subsumption rule leans on: reflexive (every
    /// node answers itself), transitive (finer-than-finer answers the
    /// coarsest), and antisymmetric (mutually derivable nodes are the
    /// same node, so "strictly finer" is well defined).
    #[test]
    fn derivability_is_a_partial_order_over_the_lattice() {
        let s = schema();
        let mut nodes = crate::lattice_nodes(&s);
        nodes.push(GroupBy::finest(s.n_dims()));

        for a in &nodes {
            assert!(a.derives(a), "reflexivity: {}", a.display(&s));
        }
        for a in &nodes {
            for b in &nodes {
                if a.derives(b) && b.derives(a) {
                    assert_eq!(
                        a,
                        b,
                        "antisymmetry: {} and {} derive each other",
                        a.display(&s),
                        b.display(&s)
                    );
                }
            }
        }
        // Transitivity: per-dimension `provides` is an order on levels, so
        // checking every triple of *per-dimension* options is exhaustive
        // and cheap; the whole-lattice claim follows dimension-wise. Spot
        // check the composed form on full nodes as well.
        let options = [
            LevelRef::Level(0),
            LevelRef::Level(1),
            LevelRef::Level(2),
            LevelRef::All,
        ];
        for a in options {
            for b in options {
                for c in options {
                    if a.provides(b) && b.provides(c) {
                        assert!(a.provides(c), "transitivity: {a:?} {b:?} {c:?}");
                    }
                }
            }
        }
        for a in nodes.iter().step_by(7) {
            for b in nodes.iter().step_by(5) {
                for c in nodes.iter().step_by(3) {
                    if a.derives(b) && b.derives(c) {
                        assert!(
                            a.derives(c),
                            "transitivity: {} -> {} -> {}",
                            a.display(&s),
                            b.display(&s),
                            c.display(&s)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_renders_preds() {
        let s = schema();
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A'B''C''D").unwrap(),
            vec![
                MemberPred::members_in(1, vec![0, 1]),
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let d = q.display(&s);
        assert!(d.starts_with("A'B''C''D ["), "{d}");
        assert!(d.contains("A' IN (AA1, AA2)"), "{d}");
        assert!(d.contains("B'' IN (B1)"), "{d}");
        let u = GroupByQuery::unfiltered(GroupBy::finest(4));
        assert_eq!(u.display(&s), "ABCD");
    }
}
