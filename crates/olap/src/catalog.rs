//! Stored tables and the materialized group-by catalog.
//!
//! A [`StoredTable`] is one on-"disk" table: the base fact table or a
//! precomputed group-by. It stores, per dimension, the member id at that
//! dimension's *stored level* (dimensions aggregated to `All` store key 0),
//! plus one measure column whose meaning is its [`MeasureKind`] (raw fact
//! data, or a SUM/COUNT/MIN/MAX aggregate). Tables may carry bitmap join
//! indexes on individual dimensions — the paper's "star join bitmap
//! indexes created on attributes A, B and C" (§7.2).
//!
//! The [`Catalog`] owns all stored tables; [`Catalog::candidates_for`]
//! answers the question at the heart of the paper's optimizers: *which
//! materialized group-bys can this query be computed from?*

use starshare_bitmap::{BitmapJoinIndex, IndexFormat};
use starshare_storage::{FileId, HeapFile, TupleLayout};

use crate::query::{AggFn, GroupBy, GroupByQuery, LevelRef};
use crate::schema::{DimId, StarSchema};

/// What a stored table's measure column means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MeasureKind {
    /// Un-aggregated fact data (the base table): answers any aggregate.
    #[default]
    Raw,
    /// Each row holds `agg` of the underlying facts for its group.
    Aggregated(AggFn),
}

impl MeasureKind {
    /// True if a table with this measure can answer a query using `agg`.
    ///
    /// Raw data answers everything. An aggregated view answers only the
    /// *same* re-aggregatable function: SUM-of-SUMs, MIN-of-MINs,
    /// MAX-of-MAXes are the originals, and COUNT views re-aggregate by
    /// summing their cells. AVG is not re-aggregatable at all.
    pub fn answers(self, agg: AggFn) -> bool {
        match self {
            MeasureKind::Raw => true,
            MeasureKind::Aggregated(stored) => stored == agg && agg != AggFn::Avg,
        }
    }
}

impl std::fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureKind::Raw => write!(f, "raw"),
            MeasureKind::Aggregated(a) => write!(f, "{a}"),
        }
    }
}

/// Index of a stored table within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// A bitmap join index on one dimension of a stored table, built at a
/// chosen hierarchy level.
///
/// The level may be coarser than the table's stored level (indexing
/// `ABCD`'s D column at `D'` keeps the index small while still serving the
/// paper's `FILTER(D.DD1)` predicates); a predicate is index-servable iff
/// its level is at least as coarse as the index's.
#[derive(Debug, Clone)]
pub struct DimIndex {
    /// The hierarchy level the index keys on.
    pub level: u8,
    /// The bitmaps.
    pub index: BitmapJoinIndex,
}

impl DimIndex {
    /// True if a predicate at `pred_level` can be answered from this index
    /// (by ORing the bitmaps of the predicate members' descendants at the
    /// index level).
    pub fn serves_level(&self, pred_level: u8) -> bool {
        pred_level >= self.level
    }
}

/// One stored table: a heap file at a fixed group-by, plus optional bitmap
/// join indexes per dimension.
#[derive(Debug, Clone)]
pub struct StoredTable {
    name: String,
    group_by: GroupBy,
    heap: HeapFile,
    indexes: Vec<Option<DimIndex>>,
    measure: MeasureKind,
}

impl StoredTable {
    /// Wraps a heap file as a stored table holding raw (un-aggregated)
    /// measures.
    ///
    /// # Panics
    /// Panics if the heap's key width differs from the group-by's dimension
    /// count.
    pub fn new(name: impl Into<String>, group_by: GroupBy, heap: HeapFile) -> Self {
        Self::with_measure(name, group_by, heap, MeasureKind::Raw)
    }

    /// Wraps a heap file with an explicit measure meaning.
    pub fn with_measure(
        name: impl Into<String>,
        group_by: GroupBy,
        heap: HeapFile,
        measure: MeasureKind,
    ) -> Self {
        assert_eq!(
            heap.layout().n_dims(),
            group_by.n_dims(),
            "heap layout does not match group-by"
        );
        let n = group_by.n_dims();
        StoredTable {
            name: name.into(),
            group_by,
            heap,
            indexes: vec![None; n],
            measure,
        }
    }

    /// What the measure column holds.
    pub fn measure(&self) -> MeasureKind {
        self.measure
    }

    /// Mutable heap access for load-time mutation (incremental
    /// maintenance). Indexes are NOT kept in sync automatically — call
    /// [`extend_indexes`](Self::extend_indexes) after appending.
    pub fn heap_mut(&mut self) -> &mut HeapFile {
        &mut self.heap
    }

    /// Extends every index over rows appended to the heap since the index
    /// was built or last extended.
    pub fn extend_indexes(&mut self, schema: &StarSchema) {
        for d in 0..self.indexes.len() {
            // Take the index out so the heap can be borrowed immutably
            // alongside the mutable index (no heap copy).
            let Some(mut ix) = self.indexes[d].take() else {
                continue;
            };
            let stored = self
                .stored_level(d)
                .expect("indexed dimension cannot be All");
            let dim = schema.dim(d);
            let level = ix.level;
            ix.index
                .extend(&self.heap, d, |k| dim.roll_up(k, stored, level));
            self.indexes[d] = Some(ix);
        }
    }

    /// True if this table can answer `query`: its levels derive the
    /// query's required levels *and* its measure supports the query's
    /// aggregate.
    pub fn can_answer(&self, query: &GroupByQuery) -> bool {
        query.answerable_from(&self.group_by) && self.measure.answers(query.agg)
    }

    /// Table name (conventionally the group-by shorthand, e.g. `A'B'C'D`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The levels this table stores.
    pub fn group_by(&self) -> &GroupBy {
        &self.group_by
    }

    /// The stored level of dimension `d` (`None` when aggregated to All).
    pub fn stored_level(&self, d: DimId) -> Option<u8> {
        self.group_by.level(d).level()
    }

    /// The heap file.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Rows stored.
    pub fn n_rows(&self) -> u64 {
        self.heap.n_tuples()
    }

    /// Pages occupied.
    pub fn pages(&self) -> u32 {
        self.heap.page_count()
    }

    /// The bitmap join index on dimension `d`, if built.
    pub fn index(&self, d: DimId) -> Option<&DimIndex> {
        self.indexes[d].as_ref()
    }

    /// True if dimension `d` has an index that can serve a predicate at
    /// `pred_level`.
    pub fn index_serves(&self, d: DimId, pred_level: u8) -> bool {
        self.indexes[d]
            .as_ref()
            .is_some_and(|ix| ix.serves_level(pred_level))
    }

    /// True if every dimension a query predicates on has an index at a
    /// level fine enough to serve that predicate (the precondition for a
    /// *fully indexed* star join on this table; partially indexed plans
    /// evaluate the rest as residual predicates).
    pub fn has_indexes_for(&self, query: &GroupByQuery) -> bool {
        query
            .preds
            .iter()
            .enumerate()
            .all(|(d, p)| match p.level() {
                None => true,
                Some(pl) => self.index_serves(d, pl),
            })
    }

    /// Builds a bitmap join index on dimension `d` at hierarchy level
    /// `level` (which must be at least as coarse as the stored level).
    ///
    /// # Panics
    /// Panics if dimension `d` is aggregated to All in this table or
    /// `level` is finer than the stored level.
    pub fn build_index(&mut self, schema: &StarSchema, d: DimId, level: u8, index_file: FileId) {
        self.build_index_with_format(schema, d, level, IndexFormat::Plain, index_file);
    }

    /// Like [`build_index`](Self::build_index) with an explicit storage
    /// format (see [`IndexFormat`]).
    pub fn build_index_with_format(
        &mut self,
        schema: &StarSchema,
        d: DimId,
        level: u8,
        format: IndexFormat,
        index_file: FileId,
    ) {
        let stored = self
            .stored_level(d)
            .expect("cannot index a dimension aggregated to All");
        assert!(
            level >= stored,
            "index level {level} finer than stored level {stored}"
        );
        let name = format!("{}.{}", self.name, schema.dim(d).level(level).name);
        let dim = schema.dim(d).clone();
        let idx =
            BitmapJoinIndex::build_with_format(name, index_file, &self.heap, d, format, |k| {
                dim.roll_up(k, stored, level)
            });
        self.indexes[d] = Some(DimIndex { level, index: idx });
    }
}

/// The set of stored tables available to the optimizer.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<StoredTable>,
    next_file: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Allocates a fresh file id (tables and indexes share the space).
    pub fn alloc_file_id(&mut self) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        id
    }

    /// Raises the file-id watermark so future allocations do not collide
    /// with ids assigned elsewhere (used when loading a persisted cube).
    pub fn ensure_file_watermark(&mut self, min_next: u32) {
        self.next_file = self.next_file.max(min_next);
    }

    /// Adds a table, returning its id.
    pub fn add_table(&mut self, table: StoredTable) -> TableId {
        self.tables.push(table);
        TableId(self.tables.len() - 1)
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The table with id `id`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn table(&self, id: TableId) -> &StoredTable {
        &self.tables[id.0]
    }

    /// Mutable access (index building).
    pub fn table_mut(&mut self, id: TableId) -> &mut StoredTable {
        &mut self.tables[id.0]
    }

    /// All `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &StoredTable)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i), t))
    }

    /// Finds a table storing exactly `group_by`.
    pub fn find_by_groupby(&self, group_by: &GroupBy) -> Option<TableId> {
        self.iter()
            .find(|(_, t)| t.group_by() == group_by)
            .map(|(id, _)| id)
    }

    /// Finds a table by name.
    pub fn find_by_name(&self, name: &str) -> Option<TableId> {
        self.iter()
            .find(|(_, t)| t.name() == name)
            .map(|(id, _)| id)
    }

    /// All tables that can answer `query` (levels *and* measure), smallest
    /// first.
    pub fn candidates_for(&self, query: &GroupByQuery) -> Vec<TableId> {
        let mut c: Vec<TableId> = self
            .iter()
            .filter(|(_, t)| t.can_answer(query))
            .map(|(id, _)| id)
            .collect();
        c.sort_by_key(|id| self.table(*id).n_rows());
        c
    }

    /// The finest stored table (the paper's `LL`), if present: a table
    /// whose group-by derives every other table's.
    pub fn base_table(&self) -> Option<TableId> {
        self.iter()
            .find(|(_, t)| {
                self.tables
                    .iter()
                    .all(|o| t.group_by().derives(o.group_by()))
            })
            .map(|(id, _)| id)
    }
}

/// A complete cube: schema plus catalog, plus optional statistics.
#[derive(Debug)]
pub struct Cube {
    /// The star schema.
    pub schema: StarSchema,
    /// The stored tables.
    pub catalog: Catalog,
    /// Optional per-dimension histograms (see [`crate::stats`]); `None` is
    /// the paper-faithful uniform-assumption configuration.
    pub stats: Option<crate::stats::CubeStats>,
    /// Data epoch: bumped by every successful [`crate::append_facts`], so
    /// anything derived from the cube's contents (e.g. a result cache) can
    /// tell at a glance whether it is stale. Starts at 0 for a fresh cube.
    pub epoch: u64,
}

impl Cube {
    /// A cube without statistics, at epoch 0.
    pub fn new(schema: StarSchema, catalog: Catalog) -> Self {
        Cube {
            schema,
            catalog,
            stats: None,
            epoch: 0,
        }
    }

    /// Advances the data epoch (called after every successful mutation of
    /// the cube's contents).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Collects (or refreshes) per-dimension statistics from the base
    /// table.
    ///
    /// # Panics
    /// Panics if the catalog has no leaf-level base table.
    pub fn collect_stats(&mut self) {
        let base = self
            .catalog
            .base_table()
            .expect("statistics need a base table");
        self.stats = Some(crate::stats::CubeStats::collect(
            &self.schema,
            self.catalog.table(base),
        ));
    }

    /// Parses a group-by shorthand against this cube's schema.
    pub fn groupby(&self, s: &str) -> GroupBy {
        GroupBy::parse(&self.schema, s).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// How one source measure folds into a group accumulator, given the
/// aggregate being computed and the source table's measure kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineMode {
    /// `acc += m` (SUM from raw/SUM data; COUNT from a COUNT view, whose
    /// cells are summed).
    Add,
    /// `acc += 1` (COUNT over raw rows).
    CountRows,
    /// `acc = min(acc, m)`.
    TakeMin,
    /// `acc = max(acc, m)`.
    TakeMax,
    /// `sum += m; n += 1`, finalized as `sum / n` (AVG over raw rows).
    Average,
}

/// Picks the fold for `(agg, source)`.
///
/// # Panics
/// Panics if the source cannot answer the aggregate (callers must check
/// [`MeasureKind::answers`] first).
pub fn combine_mode(agg: AggFn, source: MeasureKind) -> CombineMode {
    assert!(
        source.answers(agg),
        "a {source} table cannot answer {agg} queries"
    );
    match (agg, source) {
        (AggFn::Sum, _) => CombineMode::Add,
        (AggFn::Count, MeasureKind::Raw) => CombineMode::CountRows,
        (AggFn::Count, MeasureKind::Aggregated(_)) => CombineMode::Add,
        (AggFn::Min, _) => CombineMode::TakeMin,
        (AggFn::Max, _) => CombineMode::TakeMax,
        (AggFn::Avg, _) => CombineMode::Average,
    }
}

/// Per-group accumulator shared by materialization, the executor's
/// aggregation hash tables, and the reference evaluator.
///
/// `Default` is the *unoccupied* placeholder the executor's dense kernel
/// fills its flat slot array with; a slot's value is only meaningful once
/// its occupancy bit is set (the first real measure arrives via
/// [`AggState::first`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggState {
    acc: f64,
    n: u64,
}

impl AggState {
    /// Starts a group from its first measure.
    pub fn first(mode: CombineMode, m: f64) -> Self {
        match mode {
            CombineMode::Add | CombineMode::TakeMin | CombineMode::TakeMax => {
                AggState { acc: m, n: 1 }
            }
            CombineMode::CountRows => AggState { acc: 1.0, n: 1 },
            CombineMode::Average => AggState { acc: m, n: 1 },
        }
    }

    /// Folds another measure in.
    pub fn fold(&mut self, mode: CombineMode, m: f64) {
        match mode {
            CombineMode::Add => self.acc += m,
            CombineMode::CountRows => self.acc += 1.0,
            CombineMode::TakeMin => self.acc = self.acc.min(m),
            CombineMode::TakeMax => self.acc = self.acc.max(m),
            CombineMode::Average => {
                self.acc += m;
                self.n += 1;
            }
        }
    }

    /// Folds another *partial state* for the same group in (partitioned
    /// aggregation: each partition accumulates privately, then partials are
    /// merged in partition order so floating-point sums stay deterministic).
    pub fn merge(&mut self, mode: CombineMode, other: &AggState) {
        match mode {
            CombineMode::Add | CombineMode::CountRows | CombineMode::Average => {
                self.acc += other.acc;
                self.n += other.n;
            }
            CombineMode::TakeMin => self.acc = self.acc.min(other.acc),
            CombineMode::TakeMax => self.acc = self.acc.max(other.acc),
        }
    }

    /// The group's final value.
    pub fn value(&self, mode: CombineMode) -> f64 {
        match mode {
            CombineMode::Average => self.acc / self.n as f64,
            _ => self.acc,
        }
    }
}

/// Aggregates `source` to `target` levels, producing a new stored table.
///
/// This is load-time work (building the precomputed group-bys the optimizer
/// chooses among), so it reads the source raw. Measures are SUM-combined —
/// the setting the paper evaluates; re-aggregating a SUM view is always
/// sound.
///
/// Output rows are stored in *deterministic hash order*: the order a
/// hash-aggregation operator of the paper's era would emit them, which is
/// effectively random with respect to the key. This matters for fidelity:
/// it leaves views unclustered, so bitmap-directed probes really do touch
/// ~one page per candidate tuple — the same assumption the §5.1 cost
/// model's random-I/O term makes. (A key-sorted layout would make index
/// plans far cheaper than the optimizer estimates and distort every
/// hash-vs-index crossover.) The order depends only on the key set, so two
/// materializations of the same target agree row-for-row regardless of
/// source.
///
/// # Panics
/// Panics if `source` cannot derive `target`.
pub fn materialize(
    schema: &StarSchema,
    source: &StoredTable,
    target: GroupBy,
    name: impl Into<String>,
    file_id: FileId,
) -> StoredTable {
    materialize_agg(schema, source, target, AggFn::Sum, name, file_id)
}

/// Like [`materialize`] but for an arbitrary re-aggregatable function:
/// the view's cells hold `agg` of the underlying facts and its measure
/// kind is `Aggregated(agg)`.
///
/// # Panics
/// Panics if `source` cannot derive `target`, the source's measure cannot
/// answer `agg`, or `agg` is AVG (an AVG view could never be used —
/// averages do not re-aggregate).
pub fn materialize_agg(
    schema: &StarSchema,
    source: &StoredTable,
    target: GroupBy,
    agg: AggFn,
    name: impl Into<String>,
    file_id: FileId,
) -> StoredTable {
    assert!(
        source.group_by().derives(&target),
        "cannot materialize {} from {}",
        target.display(schema),
        source.group_by().display(schema)
    );
    assert!(agg != AggFn::Avg, "AVG views are not re-aggregatable");
    let mode = combine_mode(agg, source.measure());
    let n_dims = schema.n_dims();
    let layout = TupleLayout::new(n_dims);
    let mut acc: std::collections::HashMap<Vec<u32>, AggState> = std::collections::HashMap::new();
    let mut keys = vec![0u32; n_dims];
    let mut out_keys = vec![0u32; n_dims];
    for pos in 0..source.n_rows() {
        let m = source.heap().read_at(pos, &mut keys);
        for d in 0..n_dims {
            out_keys[d] = roll_key(
                schema,
                d,
                source.group_by().level(d),
                target.level(d),
                keys[d],
            );
        }
        match acc.get_mut(out_keys.as_slice()) {
            Some(st) => st.fold(mode, m),
            None => {
                acc.insert(out_keys.clone(), AggState::first(mode, m));
            }
        }
    }
    let mut rows: Vec<(Vec<u32>, f64)> =
        acc.into_iter().map(|(k, st)| (k, st.value(mode))).collect();
    rows.sort_by_cached_key(|(k, _)| (hash_order(k), k.clone()));
    let heap = HeapFile::from_rows(file_id, layout, rows);
    StoredTable::with_measure(name, target, heap, MeasureKind::Aggregated(agg))
}

/// The deterministic "hash order" rank of a group key (see [`materialize`]).
fn hash_order(key: &[u32]) -> u64 {
    // FNV-1a over the key words: stable across runs and platforms, unlike
    // `DefaultHasher`'s unspecified algorithm.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &k in key {
        for b in k.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Rolls one stored key from `from` to `to` (All stores key 0).
///
/// # Panics
/// Panics if `from` cannot provide `to`.
pub fn roll_key(schema: &StarSchema, d: DimId, from: LevelRef, to: LevelRef, key: u32) -> u32 {
    match (from, to) {
        (_, LevelRef::All) => 0,
        (LevelRef::Level(f), LevelRef::Level(t)) => {
            assert!(f <= t, "stored level coarser than requested");
            schema.dim(d).roll_up(key, f, t)
        }
        (LevelRef::All, LevelRef::Level(_)) => {
            panic!("cannot refine an All dimension")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::MemberPred;
    use crate::schema::Dimension;

    #[test]
    fn agg_state_merge_equals_unpartitioned_fold() {
        let measures = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        for mode in [
            CombineMode::Add,
            CombineMode::CountRows,
            CombineMode::TakeMin,
            CombineMode::TakeMax,
            CombineMode::Average,
        ] {
            let mut whole = AggState::first(mode, measures[0]);
            for &m in &measures[1..] {
                whole.fold(mode, m);
            }
            // Same stream split at every cut point: merge(left, right) must
            // finalize to the same value.
            for cut in 1..measures.len() {
                let mut left = AggState::first(mode, measures[0]);
                for &m in &measures[1..cut] {
                    left.fold(mode, m);
                }
                let mut right = AggState::first(mode, measures[cut]);
                for &m in &measures[cut + 1..] {
                    right.fold(mode, m);
                }
                left.merge(mode, &right);
                assert_eq!(
                    left.value(mode),
                    whole.value(mode),
                    "{mode:?} split at {cut}"
                );
            }
        }
    }

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 2, &[2]),
                Dimension::uniform("B", 2, &[3]),
            ],
            "m",
        )
    }

    /// 24 rows: every (a, b) in 4×6, measure = a*10 + b.
    fn base_table(s: &StarSchema) -> StoredTable {
        let layout = TupleLayout::new(2);
        let rows = (0..4u32).flat_map(|a| (0..6u32).map(move |b| ([a, b], (a * 10 + b) as f64)));
        let heap = HeapFile::from_rows(FileId(0), layout, rows);
        StoredTable::new("AB", GroupBy::finest(s.n_dims()), heap)
    }

    #[test]
    fn materialize_aggregates_correctly() {
        let s = schema();
        let base = base_table(&s);
        let target = GroupBy::parse(&s, "A'B").unwrap();
        let t = materialize(&s, &base, target.clone(), "A'B", FileId(1));
        // 2 A' members × 6 B members = 12 rows.
        assert_eq!(t.n_rows(), 12);
        let mut keys = [0u32; 2];
        let mut total = 0.0;
        for pos in 0..t.n_rows() {
            total += t.heap().read_at(pos, &mut keys);
        }
        let expect: f64 = (0..4)
            .flat_map(|a| (0..6).map(move |b| (a * 10 + b) as f64))
            .sum();
        assert_eq!(total, expect);
        // Row for (A'=0, B=0) should sum a∈{0,1}: 0 + 10 = 10.
        let mut found = false;
        for pos in 0..t.n_rows() {
            let m = t.heap().read_at(pos, &mut keys);
            if keys == [0, 0] {
                assert_eq!(m, 10.0);
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn materialize_to_all_collapses_dimension() {
        let s = schema();
        let base = base_table(&s);
        let target = GroupBy::new(vec![LevelRef::All, LevelRef::Level(0)]);
        let t = materialize(&s, &base, target, "A*B", FileId(1));
        assert_eq!(t.n_rows(), 6);
        let mut keys = [0u32; 2];
        t.heap().read_at(0, &mut keys);
        assert_eq!(keys[0], 0); // All stores 0
    }

    #[test]
    fn materialize_is_deterministic_and_unclustered() {
        let s = schema();
        let base = base_table(&s);
        let target = GroupBy::parse(&s, "A'B").unwrap();
        let t1 = materialize(&s, &base, target.clone(), "v", FileId(1));
        let t2 = materialize(&s, &base, target, "v", FileId(1));
        let mut k1 = [0u32; 2];
        let mut k2 = [0u32; 2];
        let mut keys_seen = std::collections::HashSet::new();
        let mut sorted_runs = 0u32;
        let mut prev: Option<[u32; 2]> = None;
        for pos in 0..t1.n_rows() {
            let m1 = t1.heap().read_at(pos, &mut k1);
            let m2 = t2.heap().read_at(pos, &mut k2);
            assert_eq!(k1, k2, "two materializations must agree row-for-row");
            assert_eq!(m1, m2);
            assert!(keys_seen.insert(k1), "keys must be unique");
            if prev.is_some_and(|p| p < k1) {
                sorted_runs += 1;
            }
            prev = Some(k1);
        }
        // Hash order is not key order: with 12 rows, far fewer than 11
        // ascending adjacencies.
        assert!(
            sorted_runs < t1.n_rows() as u32 - 1,
            "rows should be in hash order, not key-sorted"
        );
    }

    #[test]
    #[should_panic(expected = "cannot materialize")]
    fn materialize_rejects_underivable_target() {
        let s = schema();
        let base = base_table(&s);
        let coarse = materialize(
            &s,
            &base,
            GroupBy::parse(&s, "A'B'").unwrap(),
            "v",
            FileId(1),
        );
        // Refining A' back to A is impossible.
        materialize(&s, &coarse, GroupBy::finest(2), "bad", FileId(2));
    }

    #[test]
    fn catalog_candidates_sorted_by_size() {
        let s = schema();
        let mut cat = Catalog::new();
        let base = base_table(&s);
        let f1 = cat.alloc_file_id();
        let v1 = materialize(&s, &base, GroupBy::parse(&s, "A'B").unwrap(), "A'B", f1);
        let f2 = cat.alloc_file_id();
        let v2 = materialize(&s, &base, GroupBy::parse(&s, "A'B'").unwrap(), "A'B'", f2);
        let base_id = cat.add_table(base);
        let v1_id = cat.add_table(v1);
        let v2_id = cat.add_table(v2);

        let q = GroupByQuery::unfiltered(GroupBy::parse(&s, "A'B'").unwrap());
        let c = cat.candidates_for(&q);
        // All three can answer; smallest (A'B', 4 rows) first, base last.
        assert_eq!(c, vec![v2_id, v1_id, base_id]);

        // A query needing leaf A only answerable from base.
        let q2 = GroupByQuery::unfiltered(GroupBy::finest(2));
        assert_eq!(cat.candidates_for(&q2), vec![base_id]);

        assert_eq!(cat.base_table(), Some(base_id));
        assert_eq!(cat.find_by_name("A'B"), Some(v1_id));
        assert_eq!(
            cat.find_by_groupby(&GroupBy::parse(&s, "A'B'").unwrap()),
            Some(v2_id)
        );
        assert_eq!(cat.find_by_name("nope"), None);
    }

    #[test]
    fn candidates_respect_predicate_levels() {
        let s = schema();
        let mut cat = Catalog::new();
        let base = base_table(&s);
        let v = materialize(
            &s,
            &base,
            GroupBy::parse(&s, "A'B").unwrap(),
            "A'B",
            FileId(5),
        );
        let base_id = cat.add_table(base);
        let v_id = cat.add_table(v);
        // Target is coarse (A') but the predicate is at leaf A → only base.
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A'B").unwrap(),
            vec![MemberPred::eq(0, 1), MemberPred::All],
        );
        assert_eq!(cat.candidates_for(&q), vec![base_id]);
        // Predicate at A' → both.
        let q2 = GroupByQuery::new(
            GroupBy::parse(&s, "A'B").unwrap(),
            vec![MemberPred::eq(1, 1), MemberPred::All],
        );
        let c = cat.candidates_for(&q2);
        assert!(c.contains(&base_id) && c.contains(&v_id));
    }

    #[test]
    fn build_index_on_stored_level() {
        let s = schema();
        let mut base = base_table(&s);
        base.build_index(&s, 0, 0, FileId(50));
        let idx = base.index(0).unwrap();
        assert_eq!(idx.level, 0);
        assert_eq!(idx.index.n_members(), 4);
        assert_eq!(idx.index.n_rows(), 24);
        assert!(base.index(1).is_none());
        let q = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(0, 1), MemberPred::All],
        );
        assert!(base.has_indexes_for(&q));
        let q2 = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(0, 1), MemberPred::eq(0, 2)],
        );
        assert!(!base.has_indexes_for(&q2));
    }

    #[test]
    fn coarse_index_serves_only_coarse_predicates() {
        let s = schema();
        let mut base = base_table(&s);
        // Index A at level A' (coarser than the stored leaf level).
        base.build_index(&s, 0, 1, FileId(50));
        let ix = base.index(0).unwrap();
        assert_eq!(ix.level, 1);
        assert_eq!(ix.index.n_members(), 2);
        // Every leaf rolls into its parent's bitmap.
        let bm0 = ix.index.peek(0).unwrap();
        assert_eq!(bm0.count_ones(), 12); // leaves 0,1 → parent 0: half of 24 rows
        assert!(base.index_serves(0, 1));
        assert!(!base.index_serves(0, 0)); // leaf predicate too fine
                                           // has_indexes_for respects predicate level.
        let q_coarse = GroupByQuery::new(
            GroupBy::parse(&s, "A'B").unwrap(),
            vec![MemberPred::eq(1, 0), MemberPred::All],
        );
        assert!(base.has_indexes_for(&q_coarse));
        let q_fine = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(0, 0), MemberPred::All],
        );
        assert!(!base.has_indexes_for(&q_fine));
    }

    #[test]
    fn roll_key_all_cases() {
        let s = schema();
        assert_eq!(
            roll_key(&s, 0, LevelRef::Level(0), LevelRef::Level(1), 3),
            1
        );
        assert_eq!(
            roll_key(&s, 0, LevelRef::Level(1), LevelRef::Level(1), 1),
            1
        );
        assert_eq!(roll_key(&s, 0, LevelRef::Level(0), LevelRef::All, 3), 0);
        assert_eq!(roll_key(&s, 0, LevelRef::All, LevelRef::All, 0), 0);
    }

    #[test]
    fn file_id_allocation_is_unique() {
        let mut cat = Catalog::new();
        let a = cat.alloc_file_id();
        let b = cat.alloc_file_id();
        assert_ne!(a, b);
    }
}
