//! Materialized-view selection: the Harinarayan–Rajaraman–Ullman greedy
//! algorithm ("Implementing Data Cubes Efficiently", SIGMOD 1996 — cited
//! by the paper as [HRU96]).
//!
//! The paper *assumes* a set of precomputed group-bys and optimizes query
//! sets against it; this module answers the upstream question of **which
//! group-bys to precompute**. The classic HRU model: answering a query at
//! lattice node `w` costs the size of the smallest materialized ancestor,
//! so the benefit of materializing `v` is the total size saving it brings
//! to every node it derives. Greedy selection of the top-`k` views is
//! within (1 − 1/e) of optimal for this benefit function.
//!
//! Sizes are estimated with Cardenas' formula over the hierarchy lattice
//! (the same estimator the §5.1 cost model uses), so the advisor needs no
//! data — just the schema and the base row count.

use crate::estimate::groupby_rows;
use crate::query::{GroupBy, LevelRef};
use crate::schema::StarSchema;

/// One recommended view.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The group-by to materialize.
    pub group_by: GroupBy,
    /// Estimated rows.
    pub est_rows: f64,
    /// HRU benefit at selection time (total estimated rows saved across
    /// the lattice, given everything selected before it).
    pub benefit: f64,
}

/// Configuration for [`recommend_views`].
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Maximum number of views to recommend.
    pub max_views: usize,
    /// Optional budget on the total estimated rows across recommended
    /// views (a crude space budget; rows × tuple width = bytes).
    pub row_budget: Option<f64>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            max_views: 4,
            row_budget: None,
        }
    }
}

/// Enumerates every node of the group-by lattice (each dimension at any
/// level or `All`), excluding the all-leaf base itself.
pub fn lattice_nodes(schema: &StarSchema) -> Vec<GroupBy> {
    let n = schema.n_dims();
    let options: Vec<Vec<LevelRef>> = (0..n)
        .map(|d| {
            let mut o: Vec<LevelRef> = (0..schema.dim(d).n_levels()).map(LevelRef::Level).collect();
            o.push(LevelRef::All);
            o
        })
        .collect();
    let mut nodes = Vec::new();
    let mut choice = vec![0usize; n];
    loop {
        let gb = GroupBy::new((0..n).map(|d| options[d][choice[d]]).collect());
        if gb != GroupBy::finest(n) {
            nodes.push(gb);
        }
        let mut d = n;
        loop {
            if d == 0 {
                return nodes;
            }
            d -= 1;
            choice[d] += 1;
            if choice[d] < options[d].len() {
                break;
            }
            choice[d] = 0;
        }
    }
}

/// Runs HRU greedy selection over the full lattice.
///
/// Stops when `max_views` views are selected, the row budget is exhausted,
/// or no remaining view has positive benefit.
pub fn recommend_views(
    schema: &StarSchema,
    base_rows: u64,
    cfg: AdvisorConfig,
) -> Vec<Recommendation> {
    let nodes = lattice_nodes(schema);
    let sizes: Vec<f64> = nodes
        .iter()
        .map(|gb| groupby_rows(schema, gb, base_rows as f64))
        .collect();

    // cost[w] = size of the cheapest selected ancestor (base to start).
    let mut cost: Vec<f64> = vec![base_rows as f64; nodes.len()];
    let mut selected: Vec<usize> = Vec::new();
    let mut budget = cfg.row_budget.unwrap_or(f64::INFINITY);
    let mut out = Vec::new();

    for _ in 0..cfg.max_views {
        let mut best: Option<(usize, f64)> = None;
        for (v, gb_v) in nodes.iter().enumerate() {
            if selected.contains(&v) || sizes[v] > budget {
                continue;
            }
            // Benefit: sum over nodes w derivable from v of the saving.
            let mut benefit = 0.0;
            for (w, gb_w) in nodes.iter().enumerate() {
                if gb_v.derives(gb_w) {
                    benefit += (cost[w] - sizes[v]).max(0.0);
                }
            }
            if best.is_none_or(|(_, b)| benefit > b) {
                best = Some((v, benefit));
            }
        }
        let Some((v, benefit)) = best else { break };
        if benefit <= 0.0 {
            break;
        }
        selected.push(v);
        budget -= sizes[v];
        for (w, gb_w) in nodes.iter().enumerate() {
            if nodes[v].derives(gb_w) {
                cost[w] = cost[w].min(sizes[v]);
            }
        }
        out.push(Recommendation {
            group_by: nodes[v].clone(),
            est_rows: sizes[v],
            benefit,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::paper_schema;
    use crate::schema::Dimension;

    #[test]
    fn lattice_enumerates_all_level_combinations() {
        let s = StarSchema::new(
            vec![
                Dimension::uniform("X", 2, &[2]),
                Dimension::uniform("Y", 2, &[3]),
            ],
            "m",
        );
        let nodes = lattice_nodes(&s);
        // (2 levels + All)² minus the base = 8.
        assert_eq!(nodes.len(), 8);
        assert!(!nodes.contains(&GroupBy::finest(2)));
    }

    #[test]
    fn greedy_benefits_are_monotone_nonincreasing() {
        let s = paper_schema(96);
        let recs = recommend_views(
            &s,
            100_000,
            AdvisorConfig {
                max_views: 6,
                row_budget: None,
            },
        );
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(
                w[0].benefit >= w[1].benefit,
                "{} then {}",
                w[0].benefit,
                w[1].benefit
            );
        }
        // Every recommendation is strictly smaller than the base.
        for r in &recs {
            assert!(r.est_rows < 100_000.0, "{}", r.group_by.display(&s));
        }
    }

    #[test]
    fn first_pick_is_a_high_coverage_mid_view() {
        // HRU's signature: the first view picked sits near the middle of
        // the lattice (covers much, costs little). On the paper schema it
        // must at least derive the majority of nodes it could serve.
        let s = paper_schema(96);
        let recs = recommend_views(
            &s,
            50_000,
            AdvisorConfig {
                max_views: 1,
                row_budget: None,
            },
        );
        let first = &recs[0].group_by;
        let covered = lattice_nodes(&s)
            .iter()
            .filter(|w| first.derives(w))
            .count();
        assert!(covered >= 50, "first pick covers only {covered} nodes");
    }

    #[test]
    fn row_budget_is_respected() {
        let s = paper_schema(96);
        let unbounded = recommend_views(
            &s,
            100_000,
            AdvisorConfig {
                max_views: 8,
                row_budget: None,
            },
        );
        let total_unbounded: f64 = unbounded.iter().map(|r| r.est_rows).sum();
        let budget = total_unbounded / 3.0;
        let bounded = recommend_views(
            &s,
            100_000,
            AdvisorConfig {
                max_views: 8,
                row_budget: Some(budget),
            },
        );
        let total: f64 = bounded.iter().map(|r| r.est_rows).sum();
        assert!(total <= budget, "{total} > {budget}");
        assert!(!bounded.is_empty());
        // The budget forces a different (cheaper) selection than the
        // unconstrained run's expensive first pick.
        assert!(
            bounded[0].est_rows <= budget,
            "first pick {} exceeds budget {budget}",
            bounded[0].est_rows
        );
        assert!(bounded[0].est_rows <= unbounded[0].est_rows);
    }

    #[test]
    fn zero_views_allowed() {
        let s = paper_schema(96);
        let recs = recommend_views(
            &s,
            1_000,
            AdvisorConfig {
                max_views: 0,
                row_budget: None,
            },
        );
        assert!(recs.is_empty());
    }

    #[test]
    fn recommended_views_actually_help_a_workload() {
        // Materializing the advisor's picks must reduce the size of the
        // smallest table answering a mid-lattice query.
        let s = paper_schema(96);
        let recs = recommend_views(
            &s,
            20_000,
            AdvisorConfig {
                max_views: 3,
                row_budget: None,
            },
        );
        let target = GroupBy::parse(&s, "A''B''C''D''").unwrap();
        let best_source = recs
            .iter()
            .filter(|r| r.group_by.derives(&target))
            .map(|r| r.est_rows)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_source < 20_000.0,
            "no recommended view helps the coarse query"
        );
    }
}
