//! The [`Engine`]: end-to-end MDX evaluation.

use std::collections::HashMap;

use starshare_exec::{
    shared_hybrid_join, shared_index_join, ExecContext, ExecError, ExecReport, QueryResult,
};
use starshare_mdx::{bind, parse, BoundMdx};
use starshare_olap::{paper_cube, Cube, GroupByQuery, PaperCubeSpec};
use starshare_opt::{CostModel, GlobalPlan, JoinMethod, OptimizerKind};
use starshare_storage::{FaultPlan, FaultStats, HardwareModel};

use crate::error::{Error, Result};

/// The result of executing one [`GlobalPlan`].
#[derive(Debug)]
pub struct PlanExecution {
    /// One result per query, in the plan's assignment order.
    pub results: Vec<QueryResult>,
    /// One report per class, in class order.
    pub per_class: Vec<ExecReport>,
    /// Totals across classes.
    pub total: ExecReport,
}

/// The outcome of one MDX round trip.
#[derive(Debug)]
pub struct MdxOutcome {
    /// What the expression bound to.
    pub bound: BoundMdx,
    /// The global plan the optimizer chose.
    pub plan: GlobalPlan,
    /// One result per bound query, in binding order.
    pub results: Vec<QueryResult>,
    /// Execution totals.
    pub report: ExecReport,
}

/// One expression's share of a batched MDX round trip: its binding plus a
/// per-query outcome for each bound query, in binding order.
#[derive(Debug)]
pub struct ExprOutcome {
    /// What the expression bound to.
    pub bound: BoundMdx,
    /// One outcome per bound query: the result, or the typed error that
    /// took that query (and only that query) down.
    pub results: Vec<Result<QueryResult>>,
}

impl ExprOutcome {
    /// True when every query of this expression answered.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }
}

/// The outcome of a batched MDX round trip ([`Engine::mdx_many`]).
///
/// Failure is *per query*, not first-error-wins: a parse/bind error fails
/// only its expression's slot, and an execution fault fails only the
/// queries it actually touched — every other query in the batch still
/// carries its result. Only batch-level failures (the optimizer rejecting
/// the pooled query set) surface as `Err` from
/// [`mdx_many`](Engine::mdx_many) itself.
#[derive(Debug)]
pub struct MdxManyOutcome {
    /// The single global plan covering every successfully bound
    /// expression's queries.
    pub plan: GlobalPlan,
    /// One outcome per input expression, in input order: `Err` when the
    /// expression failed to parse or bind, otherwise its per-query
    /// results.
    pub outcomes: Vec<Result<ExprOutcome>>,
    /// Execution totals (the classes that ran).
    pub report: ExecReport,
}

impl MdxManyOutcome {
    /// True when every expression bound and every query answered.
    pub fn all_ok(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.as_ref().is_ok_and(ExprOutcome::all_ok))
    }

    /// Total failed queries plus failed expressions.
    pub fn n_failed(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match o {
                Ok(oc) => oc.results.iter().filter(|r| r.is_err()).count(),
                Err(_) => 1,
            })
            .sum()
    }
}

/// The result of executing one [`GlobalPlan`] with per-query degradation
/// ([`Engine::execute_plan_degraded`]): a failure takes down exactly the
/// queries of the class it struck, never the whole plan.
#[derive(Debug)]
pub struct DegradedExecution {
    /// One outcome per query, in the plan's assignment order.
    pub results: Vec<Result<QueryResult>>,
    /// One report per class, in class order (a failed class reports only
    /// the defaults — its partial work is not separable).
    pub per_class: Vec<ExecReport>,
    /// Totals across the classes that completed.
    pub total: ExecReport,
}

/// An OLAP engine over one cube.
///
/// Holds the buffer pool across calls (repeated queries benefit from cached
/// pages) — call [`flush`](Engine::flush) to model a cold start, as the
/// paper does before each test.
#[derive(Debug)]
pub struct Engine {
    cube: Cube,
    ctx: ExecContext,
    optimizer: OptimizerKind,
    /// Opt-in query-result cache (see [`EngineBuilder::result_cache`]).
    cache: Option<HashMap<GroupByQuery, QueryResult>>,
    /// Worker threads for plan execution (1 = the sequential legacy path).
    threads: usize,
    /// Pages per morsel for the parallel path (see
    /// [`EngineBuilder::morsel_pages`]).
    morsel_pages: u32,
}

/// Builds an [`Engine`]: cube + hardware model, plus the optional knobs
/// (optimizer, result cache, worker threads) that used to live on consuming
/// `with_*` methods.
///
/// ```
/// use starshare_core::{EngineBuilder, OptimizerKind, PaperCubeSpec};
///
/// let engine = EngineBuilder::paper(PaperCubeSpec::scaled(0.002))
///     .optimizer(OptimizerKind::Tplo)
///     .result_cache(true)
///     .threads(4)
///     .build();
/// assert_eq!(engine.threads(), 4);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    cube: Cube,
    model: HardwareModel,
    optimizer: OptimizerKind,
    cache: bool,
    threads: usize,
    morsel_pages: u32,
}

impl EngineBuilder {
    /// Starts a builder over an existing cube and hardware model.
    ///
    /// The thread count defaults to the host's available parallelism:
    /// results and simulated times are identical at any thread count (the
    /// determinism contract in `starshare_exec::parallel`), so running as
    /// wide as the hardware allows is free. Use
    /// [`paper`](EngineBuilder::paper) — which pins one thread — when
    /// reproducing the paper's uniprocessor experiments.
    pub fn new(cube: Cube, model: HardwareModel) -> Self {
        EngineBuilder {
            cube,
            model,
            optimizer: OptimizerKind::Gg,
            cache: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            morsel_pages: starshare_exec::DEFAULT_MORSEL_PAGES,
        }
    }

    /// Starts a builder over the paper's test database (§7.2) under the
    /// 1998 hardware model.
    ///
    /// Pins `threads` to 1: the paper's experiments model a 1998
    /// uniprocessor, and the sequential in-place path additionally lets
    /// later queries in a session reuse the shared pool's residency —
    /// exactly the behavior the paper experiments measure. Chain
    /// [`threads`](EngineBuilder::threads) after this to opt back into
    /// parallel execution.
    pub fn paper(spec: PaperCubeSpec) -> Self {
        Self::new(paper_cube(spec), HardwareModel::paper_1998()).threads(1)
    }

    /// Selects the optimizer used by [`Engine::mdx`] (default: GG).
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Enables (or disables) the query-result cache: a repeated
    /// [`GroupByQuery`] is answered from memory with zero simulated cost.
    /// The cache is invalidated wholesale by [`Engine::append_facts`].
    /// Off by default — the experiment harness must re-execute.
    pub fn result_cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Sets the worker-thread count for plan execution (clamped to ≥ 1).
    /// Results and simulated times are identical at any thread count; only
    /// wall time changes. Defaults to the host's available parallelism
    /// ([`new`](EngineBuilder::new)) or 1 ([`paper`](EngineBuilder::paper)).
    /// 1 selects the sequential in-place path.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the pages-per-morsel size for parallel execution (clamped to
    /// ≥ 1). Smaller morsels balance load better at the price of more
    /// per-morsel overhead; `u32::MAX` degenerates to one morsel per
    /// class. Results are invariant to within float reassociation; I/O
    /// counters are exactly invariant (morsels are page-aligned).
    pub fn morsel_pages(mut self, pages: u32) -> Self {
        self.morsel_pages = pages.max(1);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        Engine {
            cube: self.cube,
            ctx: ExecContext::new(self.model),
            optimizer: self.optimizer,
            cache: self.cache.then(HashMap::new),
            threads: self.threads,
            morsel_pages: self.morsel_pages,
        }
    }
}

impl Engine {
    /// An engine over an existing cube with the given hardware model.
    pub fn new(cube: Cube, model: HardwareModel) -> Self {
        EngineBuilder::new(cube, model).build()
    }

    /// An engine over the paper's test database (§7.2) under the 1998
    /// hardware model.
    pub fn paper(spec: PaperCubeSpec) -> Self {
        EngineBuilder::paper(spec).build()
    }

    /// Starts an [`EngineBuilder`] (the non-consuming way to configure an
    /// engine before construction).
    pub fn builder(cube: Cube, model: HardwareModel) -> EngineBuilder {
        EngineBuilder::new(cube, model)
    }

    /// Selects the optimizer used by [`mdx`](Engine::mdx) (default: GG).
    #[deprecated(since = "0.2.0", note = "use `EngineBuilder::optimizer`")]
    pub fn with_optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Enables the query-result cache.
    #[deprecated(since = "0.2.0", note = "use `EngineBuilder::result_cache`")]
    pub fn with_result_cache(mut self) -> Self {
        self.cache = Some(HashMap::new());
        self
    }

    /// Switches the optimizer on a live engine (e.g. a CLI session).
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.optimizer = kind;
    }

    /// The optimizer [`mdx`](Engine::mdx) currently uses.
    pub fn optimizer(&self) -> OptimizerKind {
        self.optimizer
    }

    /// Worker threads used for plan execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count on a live engine (clamped to ≥ 1).
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Pages per morsel used by the parallel path.
    pub fn morsel_pages(&self) -> u32 {
        self.morsel_pages
    }

    /// Sets the pages-per-morsel size on a live engine (clamped to ≥ 1).
    pub fn set_morsel_pages(&mut self, pages: u32) {
        self.morsel_pages = pages.max(1);
    }

    /// The [`starshare_exec::ExecStrategy`] the engine's parallel path
    /// runs under: morsel-driven, at the engine's morsel size.
    fn exec_strategy(&self) -> starshare_exec::ExecStrategy {
        starshare_exec::ExecStrategy::Morsel(starshare_exec::MorselSpec::with_pages(
            self.morsel_pages,
        ))
    }

    /// Cached results currently held (0 when the cache is disabled).
    pub fn cached_results(&self) -> usize {
        self.cache.as_ref().map_or(0, HashMap::len)
    }

    /// The cube.
    pub fn cube(&self) -> &Cube {
        &self.cube
    }

    /// The execution context (buffer pool + hardware model).
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Empties the buffer pool.
    pub fn flush(&mut self) {
        self.ctx.flush();
    }

    /// Appends new fact rows, incrementally maintaining every materialized
    /// view, bitmap join index, and statistic (see
    /// [`starshare_olap::maintain`]). The buffer pool is flushed: appended
    /// pages invalidate resident images of the grown tables.
    pub fn append_facts(&mut self, rows: &[(Vec<u32>, f64)]) -> Result<u64> {
        let n = starshare_olap::append_facts(&mut self.cube, rows)?;
        self.ctx.flush();
        if let Some(c) = &mut self.cache {
            c.clear();
        }
        Ok(n)
    }

    /// The cost model over this engine's cube and hardware.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.cube, self.ctx.model)
    }

    /// Full round trip: parse, bind, optimize (with the engine's configured
    /// algorithm), execute.
    ///
    /// A thin wrapper over [`mdx_many`](Engine::mdx_many) with a singleton
    /// batch — both paths share one implementation. With only one
    /// expression there is nothing to degrade to, so the first per-query
    /// error (if any) becomes the call's error.
    pub fn mdx(&mut self, text: &str) -> Result<MdxOutcome> {
        let mut many = self.mdx_many(&[text])?;
        let outcome = many.outcomes.pop().expect("one expression in, one out")?;
        let results = outcome.results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(MdxOutcome {
            bound: outcome.bound,
            plan: many.plan,
            results,
            report: many.report,
        })
    }

    /// Like [`mdx`](Engine::mdx) but over a whole *batch* of MDX
    /// expressions: all their queries are pooled and optimized as one unit,
    /// so sharing can cross expression boundaries (the paper optimizes per
    /// expression; a multi-user OLAP server sees exactly this batch shape).
    ///
    /// Failures degrade per query, not per batch: an expression that fails
    /// to parse or bind occupies an `Err` outcome slot, and an execution
    /// fault (see [`inject_faults`](Engine::inject_faults)) fails only the
    /// queries sharing the struck operator — everything else still
    /// answers. The call itself errs only on batch-level failures (the
    /// optimizer rejecting the pooled query set).
    ///
    /// When the result cache is enabled and *every* query in the batch is
    /// cached, the whole batch is served from memory with zero simulated
    /// cost.
    pub fn mdx_many(&mut self, texts: &[&str]) -> Result<MdxManyOutcome> {
        let mut bounds: Vec<Result<BoundMdx>> = Vec::with_capacity(texts.len());
        let mut all_queries = Vec::new();
        for text in texts {
            match parse(text)
                .map_err(Error::from)
                .and_then(|expr| bind(&self.cube.schema, &expr).map_err(Error::from))
            {
                Ok(bound) => {
                    all_queries.extend(bound.queries.clone());
                    bounds.push(Ok(bound));
                }
                Err(e) => bounds.push(Err(e)),
            }
        }
        type TakeFn<'a> = Box<dyn FnMut(&GroupByQuery) -> Result<QueryResult> + 'a>;
        let finish = |bounds: Vec<Result<BoundMdx>>,
                      plan: GlobalPlan,
                      mut take: TakeFn<'_>,
                      report: ExecReport| {
            let outcomes = bounds
                .into_iter()
                .map(|b| {
                    b.map(|bound| {
                        let results = bound.queries.iter().map(&mut take).collect();
                        ExprOutcome { bound, results }
                    })
                })
                .collect();
            MdxManyOutcome {
                plan,
                outcomes,
                report,
            }
        };
        // A fully-cached batch is served from memory.
        if let Some(cache) = &self.cache {
            if all_queries.iter().all(|q| cache.contains_key(q)) && !all_queries.is_empty() {
                return Ok(finish(
                    bounds,
                    GlobalPlan::default(),
                    Box::new(|q| Ok(cache.get(q).cloned().expect("checked above"))),
                    ExecReport::default(),
                ));
            }
        }
        if all_queries.is_empty() {
            // Every expression failed to parse/bind (or bound to nothing):
            // no plan to run.
            return Ok(finish(
                bounds,
                GlobalPlan::default(),
                Box::new(|_| Err(Error::Exec(ExecError::new("expression bound no queries")))),
                ExecReport::default(),
            ));
        }
        let plan = self.optimizer.run(&self.cost_model(), &all_queries)?;
        let exec = self.execute_plan_degraded(&plan);
        // Distribute outcomes back to expressions (binding order within
        // each). Duplicate queries across expressions each consume one plan
        // slot, in plan order.
        let mut pool: Vec<Option<Result<QueryResult>>> =
            exec.results.into_iter().map(Some).collect();
        let plan_queries: Vec<GroupByQuery> =
            plan.assignments().map(|(_, q, _)| q.clone()).collect();
        let out = finish(
            bounds,
            plan,
            Box::new(|q| {
                let slot = plan_queries
                    .iter()
                    .enumerate()
                    .position(|(i, pq)| pool[i].is_some() && pq == q)
                    .ok_or_else(|| Error::Exec(ExecError::new("plan lost a query")))?;
                pool[slot].take().expect("checked above")
            }),
            exec.total,
        );
        if let Some(cache) = &mut self.cache {
            for oc in out.outcomes.iter().flatten() {
                for r in oc.results.iter().flatten() {
                    cache.insert(r.query.clone(), r.clone());
                }
            }
        }
        Ok(out)
    }

    /// Optimizes a query set with a specific algorithm.
    pub fn optimize(&self, queries: &[GroupByQuery], kind: OptimizerKind) -> Result<GlobalPlan> {
        Ok(kind.run(&self.cost_model(), queries)?)
    }

    /// Executes a global plan: each class runs as one shared operator
    /// (hybrid scan if any member is hash-based, shared index join
    /// otherwise).
    ///
    /// With [`threads`](Engine::threads) > 1 the classes run through the
    /// partitioned parallel subsystem
    /// ([`execute_plan_threads`](Engine::execute_plan_threads)); the default
    /// of 1 keeps the sequential in-place path, whose pool accounting
    /// existing experiments depend on.
    pub fn execute_plan(&mut self, plan: &GlobalPlan) -> Result<PlanExecution> {
        if self.threads > 1 {
            return self.execute_plan_threads(plan, self.threads);
        }
        let mut results = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for class in &plan.classes {
            let hash_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .map(|p| p.query.clone())
                .collect();
            let index_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Index)
                .map(|p| p.query.clone())
                .collect();
            let (rs, rep) = if hash_qs.is_empty() {
                shared_index_join(&mut self.ctx, &self.cube, class.table, &index_qs)?
            } else {
                shared_hybrid_join(&mut self.ctx, &self.cube, class.table, &hash_qs, &index_qs)?
            };
            // rs is ordered: hash queries first, then index queries — map
            // back to class plan order.
            let mut hash_iter = rs.iter().take(hash_qs.len());
            let mut index_iter = rs.iter().skip(hash_qs.len());
            for p in &class.plans {
                let r = match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("operator returns one result per query");
                results.push(r.clone());
            }
            per_class.push(rep);
            total.merge(&rep);
        }
        Ok(PlanExecution {
            results,
            per_class,
            total,
        })
    }

    /// Executes a global plan with **per-query graceful degradation**: each
    /// class runs independently, and a class that fails — an unrecovered
    /// storage fault (see [`inject_faults`](Engine::inject_faults)) or a
    /// plan-level operator error — yields `Err` for exactly its member
    /// queries while every other class still executes and answers.
    ///
    /// Because a denied page access charges nothing (see
    /// `starshare_storage::fault`), the surviving queries' results are
    /// bit-identical to a fault-free run of the same plan.
    ///
    /// A failed class's report stays at the defaults: its partial work is
    /// interleaved into the shared pool and not separable per class.
    pub fn execute_plan_degraded(&mut self, plan: &GlobalPlan) -> DegradedExecution {
        let mut results: Vec<Result<QueryResult>> = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for class in &plan.classes {
            let hash_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .map(|p| p.query.clone())
                .collect();
            let index_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Index)
                .map(|p| p.query.clone())
                .collect();
            let strategy = self.exec_strategy();
            let class_run: std::result::Result<(Vec<QueryResult>, ExecReport), ExecError> =
                if self.threads > 1 {
                    // One class per call, so a faulted class cannot take
                    // its neighbours down with it.
                    starshare_exec::execute_classes_with(
                        &mut self.ctx,
                        &self.cube,
                        std::slice::from_ref(&starshare_exec::ClassSpec {
                            table: class.table,
                            hash_queries: hash_qs.clone(),
                            index_queries: index_qs.clone(),
                        }),
                        self.threads,
                        strategy,
                    )
                    .map(|mut outs| {
                        let out = outs.pop().expect("one class in, one out");
                        (out.results, out.report)
                    })
                } else if hash_qs.is_empty() {
                    shared_index_join(&mut self.ctx, &self.cube, class.table, &index_qs)
                } else {
                    shared_hybrid_join(&mut self.ctx, &self.cube, class.table, &hash_qs, &index_qs)
                };
            match class_run {
                Ok((rs, rep)) => {
                    // rs is ordered hash-then-index — map back to class
                    // plan order.
                    let mut hash_iter = rs.iter().take(hash_qs.len());
                    let mut index_iter = rs.iter().skip(hash_qs.len());
                    for p in &class.plans {
                        let r = match p.method {
                            JoinMethod::Hash => hash_iter.next(),
                            JoinMethod::Index => index_iter.next(),
                        }
                        .expect("operator returns one result per query");
                        results.push(Ok(r.clone()));
                    }
                    total.merge(&rep);
                    per_class.push(rep);
                }
                Err(e) => {
                    for _ in &class.plans {
                        results.push(Err(Error::from(e.clone())));
                    }
                    per_class.push(ExecReport::default());
                }
            }
        }
        DegradedExecution {
            results,
            per_class,
            total,
        }
    }

    /// Arms deterministic fault injection on the engine's buffer pool: from
    /// now on, fault-checked page reads on the sequential execution path
    /// draw from `plan`'s seeded schedule (see
    /// `starshare_storage::FaultPlan`). Queries whose reads fault past the
    /// executor's bounded retry fail individually — see
    /// [`mdx_many`](Engine::mdx_many) and
    /// [`execute_plan_degraded`](Engine::execute_plan_degraded).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.ctx.pool.inject_faults(plan);
    }

    /// Disarms fault injection, returning the injector's tally (None if
    /// none was armed).
    pub fn clear_faults(&mut self) -> Option<FaultStats> {
        self.ctx.pool.clear_faults()
    }

    /// The armed injector's running tally, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.ctx.pool.fault_stats()
    }

    /// Executes a global plan on `threads` worker threads through the
    /// partitioned subsystem (`starshare_exec::parallel`), **regardless of
    /// the engine's own thread setting** — `threads = 1` still partitions,
    /// so runs at different thread counts are comparable unit-for-unit.
    ///
    /// The returned results and simulated times (`sim` and the
    /// critical-path `critical`) are bit-identical at every thread count;
    /// only host wall time responds to `threads`. The total's `critical`
    /// treats classes as fully concurrent (the slowest class bounds the
    /// plan), matching the fixed-partition model's idealized machine.
    pub fn execute_plan_threads(
        &mut self,
        plan: &GlobalPlan,
        threads: usize,
    ) -> Result<PlanExecution> {
        let specs: Vec<starshare_exec::ClassSpec> = plan
            .classes
            .iter()
            .map(|class| starshare_exec::ClassSpec {
                table: class.table,
                hash_queries: class
                    .plans
                    .iter()
                    .filter(|p| p.method == JoinMethod::Hash)
                    .map(|p| p.query.clone())
                    .collect(),
                index_queries: class
                    .plans
                    .iter()
                    .filter(|p| p.method == JoinMethod::Index)
                    .map(|p| p.query.clone())
                    .collect(),
            })
            .collect();
        let strategy = self.exec_strategy();
        let wall_start = std::time::Instant::now();
        let outcomes = starshare_exec::execute_classes_with(
            &mut self.ctx,
            &self.cube,
            &specs,
            threads,
            strategy,
        )?;
        let wall = wall_start.elapsed();

        let mut results = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for (class, outcome) in plan.classes.iter().zip(outcomes) {
            let n_hash = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .count();
            // Outcome results are hash-then-index — map back to plan order.
            let mut hash_iter = outcome.results.iter().take(n_hash);
            let mut index_iter = outcome.results.iter().skip(n_hash);
            for p in &class.plans {
                let r = match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("one result per query");
                results.push(r.clone());
            }
            total.merge_concurrent(&outcome.report);
            per_class.push(outcome.report);
        }
        // Worker walls overlap; the plan's wall is what the host measured.
        total.wall = wall;
        Ok(PlanExecution {
            results,
            per_class,
            total,
        })
    }

    /// Executes each query completely independently (no shared operators,
    /// buffer pool flushed before each) — the naive baseline the paper's
    /// dotted bars show.
    pub fn execute_separately(
        &mut self,
        plans: &[(starshare_olap::TableId, GroupByQuery, JoinMethod)],
    ) -> Result<(Vec<QueryResult>, ExecReport)> {
        let mut results = Vec::with_capacity(plans.len());
        let mut total = ExecReport::default();
        for (t, q, m) in plans {
            self.ctx.flush();
            let qs = std::slice::from_ref(q);
            let (mut rs, rep) = match m {
                JoinMethod::Hash => shared_hybrid_join(&mut self.ctx, &self.cube, *t, qs, &[])?,
                JoinMethod::Index => shared_index_join(&mut self.ctx, &self.cube, *t, qs)?,
            };
            results.push(rs.pop().expect("one result"));
            total.merge(&rep);
        }
        Ok((results, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_exec::reference_eval;
    use starshare_mdx::paper_queries::{bind_paper_query, bind_paper_test};

    fn engine() -> Engine {
        Engine::paper(PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        })
    }

    #[test]
    fn mdx_round_trip_matches_reference() {
        let mut e = engine();
        let out = e
            .mdx(starshare_mdx::paper_queries::paper_query_text(1))
            .unwrap();
        assert_eq!(out.results.len(), 1);
        let q = bind_paper_query(&e.cube().schema, 1).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expect = reference_eval(e.cube(), base, &q);
        assert!(out.results[0].approx_eq(&expect, 1e-9));
        assert!(out.report.sim > starshare_storage::SimTime::ZERO);
        assert_eq!(out.plan.n_queries(), 1);
    }

    #[test]
    fn multi_level_mdx_returns_results_in_binding_order() {
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1.CHILDREN, A''.A2} on COLUMNS {B''.B1} on ROWS \
                 CONTEXT ABCD FILTER (D.DD1);",
            )
            .unwrap();
        assert_eq!(out.bound.queries.len(), 2);
        assert_eq!(out.results.len(), 2);
        for (q, r) in out.bound.queries.iter().zip(&out.results) {
            assert_eq!(&r.query, q, "result order must match binding order");
            let base = e.cube().catalog.base_table().unwrap();
            let expect = reference_eval(e.cube(), base, q);
            assert!(r.approx_eq(&expect, 1e-9));
        }
    }

    #[test]
    fn all_optimizers_execute_test4_identically() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expects: Vec<_> = queries
            .iter()
            .map(|q| reference_eval(e.cube(), base, q))
            .collect();
        for kind in OptimizerKind::ALL {
            let plan = e.optimize(&queries, kind).unwrap();
            e.flush();
            let exec = e.execute_plan(&plan).unwrap();
            assert_eq!(exec.results.len(), queries.len(), "{kind}");
            // Match each plan result to its query's reference.
            for r in &exec.results {
                let i = queries.iter().position(|q| *q == r.query).unwrap();
                assert!(r.approx_eq(&expects[i], 1e-9), "{kind}");
            }
            assert_eq!(exec.per_class.len(), plan.classes.len());
        }
    }

    #[test]
    fn separate_execution_baseline_costs_more_than_planned() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 1).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        e.flush();
        let shared = e.execute_plan(&plan).unwrap();
        let separate_plans: Vec<_> = plan
            .assignments()
            .map(|(t, q, m)| (t, q.clone(), m))
            .collect();
        let (rs, sep_report) = e.execute_separately(&separate_plans).unwrap();
        assert_eq!(rs.len(), queries.len());
        assert!(
            shared.total.sim <= sep_report.sim,
            "shared {} vs separate {}",
            shared.total.sim,
            sep_report.sim
        );
    }

    #[test]
    fn mdx_many_crosses_expression_boundaries() {
        let mut e = engine();
        let texts = [
            starshare_mdx::paper_queries::paper_query_text(1),
            starshare_mdx::paper_queries::paper_query_text(2),
            starshare_mdx::paper_queries::paper_query_text(3),
        ];
        let out = e.mdx_many(&texts).unwrap();
        assert_eq!(out.outcomes.len(), 3);
        assert!(out.all_ok());
        let base = e.cube().catalog.base_table().unwrap();
        for outcome in &out.outcomes {
            let oc = outcome.as_ref().unwrap();
            for (q, r) in oc.bound.queries.iter().zip(&oc.results) {
                let expect = reference_eval(e.cube(), base, q);
                assert!(r.as_ref().unwrap().approx_eq(&expect, 1e-9));
            }
        }
        // Batch plan shares across the three expressions: fewer classes
        // than queries (GG consolidates the Test-4 trio).
        assert!(out.plan.classes.len() < 3, "{}", out.plan.explain(e.cube()));
        // Batched evaluation costs no more than sequential evaluation.
        let mut e2 = engine();
        let mut seq = starshare_exec::ExecReport::default();
        for t in &texts {
            e2.flush();
            seq.merge(&e2.mdx(t).unwrap().report);
        }
        assert!(
            out.report.sim <= seq.sim,
            "{} vs {}",
            out.report.sim,
            seq.sim
        );
    }

    #[test]
    fn mdx_many_handles_duplicate_expressions() {
        let mut e = engine();
        let t = starshare_mdx::paper_queries::paper_query_text(1);
        let out = e.mdx_many(&[t, t]).unwrap();
        assert_eq!(out.outcomes.len(), 2);
        let a = out.outcomes[0].as_ref().unwrap().results[0]
            .as_ref()
            .unwrap();
        let b = out.outcomes[1].as_ref().unwrap().results[0]
            .as_ref()
            .unwrap();
        assert!(a.approx_eq(b, 1e-12));
    }

    #[test]
    fn mdx_error_paths_are_reported() {
        let mut e = engine();
        assert!(e.mdx("this is not MDX").is_err());
        assert!(e.mdx("{Z1} on COLUMNS CONTEXT ABCD;").is_err());
    }

    #[test]
    fn mdx_many_degrades_per_expression_on_parse_and_bind_errors() {
        // One bad expression must not take the batch down: its slot errs,
        // every other expression still answers (the satellite regression
        // for the old first-error-wins behaviour).
        let mut e = engine();
        let good = starshare_mdx::paper_queries::paper_query_text(1);
        let out = e
            .mdx_many(&[
                good,
                "this is not MDX",
                "{Z9} on COLUMNS CONTEXT ABCD;",
                good,
            ])
            .unwrap();
        assert_eq!(out.outcomes.len(), 4);
        assert_eq!(out.n_failed(), 2);
        assert!(!out.all_ok());
        assert!(matches!(out.outcomes[1], Err(Error::Parse(_))));
        assert!(matches!(out.outcomes[2], Err(Error::Bind(_))));
        let base = e.cube().catalog.base_table().unwrap();
        for i in [0, 3] {
            let oc = out.outcomes[i].as_ref().unwrap();
            assert!(oc.all_ok());
            let r = oc.results[0].as_ref().unwrap();
            let expect = reference_eval(e.cube(), base, &r.query);
            assert!(r.approx_eq(&expect, 1e-9));
        }
    }

    #[test]
    fn all_parse_failures_still_return_per_expression_outcomes() {
        let mut e = engine();
        let out = e.mdx_many(&["nope", "also nope"]).unwrap();
        assert_eq!(out.outcomes.len(), 2);
        assert_eq!(out.n_failed(), 2);
        assert_eq!(out.plan.n_queries(), 0);
    }

    #[test]
    fn degraded_execution_matches_strict_execution_when_nothing_faults() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        e.flush();
        let strict = e.execute_plan(&plan).unwrap();
        e.flush();
        let degraded = e.execute_plan_degraded(&plan);
        assert_eq!(degraded.results.len(), strict.results.len());
        for (d, s) in degraded.results.iter().zip(&strict.results) {
            assert_eq!(d.as_ref().unwrap().rows, s.rows, "bit-identical");
        }
        assert_eq!(degraded.total.sim, strict.total.sim);
        assert_eq!(degraded.per_class.len(), plan.classes.len());
    }

    #[test]
    fn threaded_engine_matches_reference_results() {
        let queries = {
            let e = engine();
            bind_paper_test(&e.cube().schema, 4).unwrap()
        };
        let mut par = EngineBuilder::paper(PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        })
        .threads(4)
        .build();
        let plan = par.optimize(&queries, OptimizerKind::Gg).unwrap();
        let exec = par.execute_plan(&plan).unwrap();
        let base = par.cube().catalog.base_table().unwrap();
        for r in &exec.results {
            let expect = reference_eval(par.cube(), base, &r.query);
            assert!(r.approx_eq(&expect, 1e-9));
        }
        assert!(exec.total.critical <= exec.total.sim);
        assert_eq!(exec.per_class.len(), plan.classes.len());
    }

    #[test]
    fn execute_plan_threads_is_invariant_in_thread_count() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 1).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        let runs: Vec<PlanExecution> = [1, 2, 4]
            .iter()
            .map(|&n| {
                e.flush();
                e.execute_plan_threads(&plan, n).unwrap()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].total.sim, other.total.sim);
            assert_eq!(runs[0].total.critical, other.total.critical);
            for (a, b) in runs[0].results.iter().zip(&other.results) {
                assert_eq!(a.rows, b.rows);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn engine_optimizer_is_configurable() {
        let e = engine().with_optimizer(OptimizerKind::Tplo);
        assert_eq!(e.optimizer, OptimizerKind::Tplo);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use starshare_mdx::paper_queries::paper_query_text;
    use starshare_storage::SimTime;

    fn engine() -> Engine {
        EngineBuilder::paper(starshare_olap::PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 50,
            with_indexes: true,
        })
        .result_cache(true)
        .build()
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let mut e = engine();
        let first = e.mdx(paper_query_text(1)).unwrap();
        assert!(first.report.sim > SimTime::ZERO);
        assert_eq!(e.cached_results(), 1);
        e.flush(); // even cold, the cache answers
        let second = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(second.report.sim, SimTime::ZERO, "cache hit must be free");
        assert_eq!(first.results[0].rows, second.results[0].rows);
    }

    #[test]
    fn append_invalidates_the_cache() {
        let mut e = engine();
        let before = e.mdx(paper_query_text(1)).unwrap();
        e.append_facts(&[(vec![0, 0, 0, 0], 1000.0)]).unwrap();
        assert_eq!(e.cached_results(), 0);
        let after = e.mdx(paper_query_text(1)).unwrap();
        assert!(after.report.sim > SimTime::ZERO, "must re-execute");
        // The appended row falls inside Q1's slice (all-zero keys pass its
        // predicates), so the answer must actually change.
        assert!(
            (after.results[0].grand_total() - before.results[0].grand_total() - 1000.0).abs()
                < 1e-6,
            "{} vs {}",
            after.results[0].grand_total(),
            before.results[0].grand_total()
        );
    }

    #[test]
    fn cache_disabled_by_default() {
        let mut e = Engine::paper(starshare_olap::PaperCubeSpec {
            base_rows: 500,
            d_leaf: 24,
            seed: 50,
            with_indexes: false,
        });
        e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(e.cached_results(), 0);
        e.flush();
        let again = e.mdx(paper_query_text(1)).unwrap();
        assert!(again.report.sim > SimTime::ZERO);
    }
}
