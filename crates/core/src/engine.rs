//! The [`Engine`]: end-to-end MDX evaluation.

use std::collections::HashMap;

use starshare_exec::{shared_hybrid_join, shared_index_join, ExecContext, ExecReport, QueryResult};
use starshare_mdx::{bind, parse, BoundMdx};
use starshare_olap::{paper_cube, Cube, GroupByQuery, PaperCubeSpec};
use starshare_opt::{CostModel, GlobalPlan, JoinMethod, OptimizerKind};
use starshare_storage::HardwareModel;

/// The result of executing one [`GlobalPlan`].
#[derive(Debug)]
pub struct PlanExecution {
    /// One result per query, in the plan's assignment order.
    pub results: Vec<QueryResult>,
    /// One report per class, in class order.
    pub per_class: Vec<ExecReport>,
    /// Totals across classes.
    pub total: ExecReport,
}

/// The outcome of one MDX round trip.
#[derive(Debug)]
pub struct MdxOutcome {
    /// What the expression bound to.
    pub bound: BoundMdx,
    /// The global plan the optimizer chose.
    pub plan: GlobalPlan,
    /// One result per bound query, in binding order.
    pub results: Vec<QueryResult>,
    /// Execution totals.
    pub report: ExecReport,
}

/// The outcome of a batched MDX round trip ([`Engine::mdx_many`]).
#[derive(Debug)]
pub struct MdxManyOutcome {
    /// Per-expression bindings, in input order.
    pub bounds: Vec<BoundMdx>,
    /// The single global plan covering every expression's queries.
    pub plan: GlobalPlan,
    /// Per-expression results, each in that expression's binding order.
    pub results: Vec<Vec<QueryResult>>,
    /// Execution totals.
    pub report: ExecReport,
}

/// An OLAP engine over one cube.
///
/// Holds the buffer pool across calls (repeated queries benefit from cached
/// pages) — call [`flush`](Engine::flush) to model a cold start, as the
/// paper does before each test.
#[derive(Debug)]
pub struct Engine {
    cube: Cube,
    ctx: ExecContext,
    optimizer: OptimizerKind,
    /// Opt-in query-result cache (see [`Engine::with_result_cache`]).
    cache: Option<HashMap<GroupByQuery, QueryResult>>,
}

impl Engine {
    /// An engine over an existing cube with the given hardware model.
    pub fn new(cube: Cube, model: HardwareModel) -> Self {
        Engine {
            cube,
            ctx: ExecContext::new(model),
            optimizer: OptimizerKind::Gg,
            cache: None,
        }
    }

    /// An engine over the paper's test database (§7.2) under the 1998
    /// hardware model.
    pub fn paper(spec: PaperCubeSpec) -> Self {
        Self::new(paper_cube(spec), HardwareModel::paper_1998())
    }

    /// Selects the optimizer used by [`mdx`](Engine::mdx) (default: GG).
    pub fn with_optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Enables the query-result cache: a repeated [`GroupByQuery`] is
    /// answered from memory with zero simulated cost. The cache is
    /// invalidated wholesale by [`append_facts`](Engine::append_facts).
    /// Off by default — the experiment harness must re-execute.
    pub fn with_result_cache(mut self) -> Self {
        self.cache = Some(HashMap::new());
        self
    }

    /// Cached results currently held (0 when the cache is disabled).
    pub fn cached_results(&self) -> usize {
        self.cache.as_ref().map_or(0, HashMap::len)
    }

    /// The cube.
    pub fn cube(&self) -> &Cube {
        &self.cube
    }

    /// The execution context (buffer pool + hardware model).
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Empties the buffer pool.
    pub fn flush(&mut self) {
        self.ctx.flush();
    }

    /// Appends new fact rows, incrementally maintaining every materialized
    /// view, bitmap join index, and statistic (see
    /// [`starshare_olap::maintain`]). The buffer pool is flushed: appended
    /// pages invalidate resident images of the grown tables.
    pub fn append_facts(&mut self, rows: &[(Vec<u32>, f64)]) -> Result<u64, String> {
        let n = starshare_olap::append_facts(&mut self.cube, rows)?;
        self.ctx.flush();
        if let Some(c) = &mut self.cache {
            c.clear();
        }
        Ok(n)
    }

    /// The cost model over this engine's cube and hardware.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.cube, self.ctx.model)
    }

    /// Full round trip: parse, bind, optimize (with the engine's configured
    /// algorithm), execute.
    pub fn mdx(&mut self, text: &str) -> Result<MdxOutcome, String> {
        let expr = parse(text).map_err(|e| e.to_string())?;
        let bound = bind(&self.cube.schema, &expr).map_err(|e| e.to_string())?;
        // Fully-cached expressions are served from memory.
        if let Some(cache) = &self.cache {
            if let Some(results) = bound
                .queries
                .iter()
                .map(|q| cache.get(q).cloned())
                .collect::<Option<Vec<_>>>()
            {
                return Ok(MdxOutcome {
                    plan: GlobalPlan::default(),
                    bound,
                    results,
                    report: ExecReport::default(),
                });
            }
        }
        let plan = self
            .optimizer
            .run(&self.cost_model(), &bound.queries)
            .map_err(|e| e.to_string())?;
        let exec = self.execute_plan(&plan)?;
        // Re-order results to binding order (plans may permute queries).
        let mut results: Vec<Option<QueryResult>> = vec![None; bound.queries.len()];
        let plan_queries: Vec<&GroupByQuery> =
            plan.assignments().map(|(_, q, _)| q).collect();
        for (pq, r) in plan_queries.iter().zip(exec.results) {
            // Find the first unfilled matching slot (duplicates allowed).
            let slot = bound
                .queries
                .iter()
                .enumerate()
                .find(|(i, q)| results[*i].is_none() && q == pq)
                .map(|(i, _)| i)
                .ok_or("plan produced a query the binder did not")?;
            results[slot] = Some(r);
        }
        let results: Vec<QueryResult> = results
            .into_iter()
            .collect::<Option<_>>()
            .ok_or("plan lost a query")?;
        if let Some(cache) = &mut self.cache {
            for r in &results {
                cache.insert(r.query.clone(), r.clone());
            }
        }
        Ok(MdxOutcome {
            bound,
            plan,
            results,
            report: exec.total,
        })
    }

    /// Like [`mdx`](Engine::mdx) but over a whole *batch* of MDX
    /// expressions: all their queries are pooled and optimized as one unit,
    /// so sharing can cross expression boundaries (the paper optimizes per
    /// expression; a multi-user OLAP server sees exactly this batch shape).
    ///
    /// Returns one result list per input expression, in order.
    pub fn mdx_many(&mut self, texts: &[&str]) -> Result<MdxManyOutcome, String> {
        let mut bounds = Vec::with_capacity(texts.len());
        let mut all_queries = Vec::new();
        for text in texts {
            let expr = parse(text).map_err(|e| e.to_string())?;
            let bound = bind(&self.cube.schema, &expr).map_err(|e| e.to_string())?;
            all_queries.extend(bound.queries.clone());
            bounds.push(bound);
        }
        let plan = self
            .optimizer
            .run(&self.cost_model(), &all_queries)
            .map_err(|e| e.to_string())?;
        let exec = self.execute_plan(&plan)?;
        // Distribute results back to expressions (binding order within each).
        let mut pool: Vec<Option<QueryResult>> = exec.results.into_iter().map(Some).collect();
        let plan_queries: Vec<&GroupByQuery> = plan.assignments().map(|(_, q, _)| q).collect();
        let mut per_expr = Vec::with_capacity(bounds.len());
        for bound in &bounds {
            let mut rs = Vec::with_capacity(bound.queries.len());
            for q in &bound.queries {
                let slot = plan_queries
                    .iter()
                    .enumerate()
                    .position(|(i, pq)| pool[i].is_some() && *pq == q)
                    .ok_or("plan lost a query")?;
                rs.push(pool[slot].take().expect("checked above"));
            }
            per_expr.push(rs);
        }
        Ok(MdxManyOutcome {
            bounds,
            plan,
            results: per_expr,
            report: exec.total,
        })
    }

    /// Optimizes a query set with a specific algorithm.
    pub fn optimize(
        &self,
        queries: &[GroupByQuery],
        kind: OptimizerKind,
    ) -> Result<GlobalPlan, String> {
        kind.run(&self.cost_model(), queries)
    }

    /// Executes a global plan: each class runs as one shared operator
    /// (hybrid scan if any member is hash-based, shared index join
    /// otherwise).
    pub fn execute_plan(&mut self, plan: &GlobalPlan) -> Result<PlanExecution, String> {
        let mut results = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for class in &plan.classes {
            let hash_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .map(|p| p.query.clone())
                .collect();
            let index_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Index)
                .map(|p| p.query.clone())
                .collect();
            let (rs, rep) = if hash_qs.is_empty() {
                shared_index_join(&mut self.ctx, &self.cube, class.table, &index_qs)?
            } else {
                shared_hybrid_join(&mut self.ctx, &self.cube, class.table, &hash_qs, &index_qs)?
            };
            // rs is ordered: hash queries first, then index queries — map
            // back to class plan order.
            let mut hash_iter = rs.iter().take(hash_qs.len());
            let mut index_iter = rs.iter().skip(hash_qs.len());
            for p in &class.plans {
                let r = match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("operator returns one result per query");
                results.push(r.clone());
            }
            per_class.push(rep);
            total.merge(&rep);
        }
        Ok(PlanExecution {
            results,
            per_class,
            total,
        })
    }

    /// Executes each query completely independently (no shared operators,
    /// buffer pool flushed before each) — the naive baseline the paper's
    /// dotted bars show.
    pub fn execute_separately(
        &mut self,
        plans: &[(starshare_olap::TableId, GroupByQuery, JoinMethod)],
    ) -> Result<(Vec<QueryResult>, ExecReport), String> {
        let mut results = Vec::with_capacity(plans.len());
        let mut total = ExecReport::default();
        for (t, q, m) in plans {
            self.ctx.flush();
            let qs = std::slice::from_ref(q);
            let (mut rs, rep) = match m {
                JoinMethod::Hash => {
                    shared_hybrid_join(&mut self.ctx, &self.cube, *t, qs, &[])?
                }
                JoinMethod::Index => shared_index_join(&mut self.ctx, &self.cube, *t, qs)?,
            };
            results.push(rs.pop().expect("one result"));
            total.merge(&rep);
        }
        Ok((results, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_exec::reference_eval;
    use starshare_mdx::paper_queries::{bind_paper_query, bind_paper_test};

    fn engine() -> Engine {
        Engine::paper(PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        })
    }

    #[test]
    fn mdx_round_trip_matches_reference() {
        let mut e = engine();
        let out = e
            .mdx(starshare_mdx::paper_queries::paper_query_text(1))
            .unwrap();
        assert_eq!(out.results.len(), 1);
        let q = bind_paper_query(&e.cube().schema, 1).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expect = reference_eval(e.cube(), base, &q);
        assert!(out.results[0].approx_eq(&expect, 1e-9));
        assert!(out.report.sim > starshare_storage::SimTime::ZERO);
        assert_eq!(out.plan.n_queries(), 1);
    }

    #[test]
    fn multi_level_mdx_returns_results_in_binding_order() {
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1.CHILDREN, A''.A2} on COLUMNS {B''.B1} on ROWS \
                 CONTEXT ABCD FILTER (D.DD1);",
            )
            .unwrap();
        assert_eq!(out.bound.queries.len(), 2);
        assert_eq!(out.results.len(), 2);
        for (q, r) in out.bound.queries.iter().zip(&out.results) {
            assert_eq!(&r.query, q, "result order must match binding order");
            let base = e.cube().catalog.base_table().unwrap();
            let expect = reference_eval(e.cube(), base, q);
            assert!(r.approx_eq(&expect, 1e-9));
        }
    }

    #[test]
    fn all_optimizers_execute_test4_identically() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expects: Vec<_> = queries
            .iter()
            .map(|q| reference_eval(e.cube(), base, q))
            .collect();
        for kind in OptimizerKind::ALL {
            let plan = e.optimize(&queries, kind).unwrap();
            e.flush();
            let exec = e.execute_plan(&plan).unwrap();
            assert_eq!(exec.results.len(), queries.len(), "{kind}");
            // Match each plan result to its query's reference.
            for r in &exec.results {
                let i = queries.iter().position(|q| *q == r.query).unwrap();
                assert!(r.approx_eq(&expects[i], 1e-9), "{kind}");
            }
            assert_eq!(exec.per_class.len(), plan.classes.len());
        }
    }

    #[test]
    fn separate_execution_baseline_costs_more_than_planned() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 1).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        e.flush();
        let shared = e.execute_plan(&plan).unwrap();
        let separate_plans: Vec<_> = plan
            .assignments()
            .map(|(t, q, m)| (t, q.clone(), m))
            .collect();
        let (rs, sep_report) = e.execute_separately(&separate_plans).unwrap();
        assert_eq!(rs.len(), queries.len());
        assert!(
            shared.total.sim <= sep_report.sim,
            "shared {} vs separate {}",
            shared.total.sim,
            sep_report.sim
        );
    }

    #[test]
    fn mdx_many_crosses_expression_boundaries() {
        let mut e = engine();
        let texts = [
            starshare_mdx::paper_queries::paper_query_text(1),
            starshare_mdx::paper_queries::paper_query_text(2),
            starshare_mdx::paper_queries::paper_query_text(3),
        ];
        let out = e.mdx_many(&texts).unwrap();
        assert_eq!(out.results.len(), 3);
        let base = e.cube().catalog.base_table().unwrap();
        for (bound, rs) in out.bounds.iter().zip(&out.results) {
            for (q, r) in bound.queries.iter().zip(rs) {
                let expect = reference_eval(e.cube(), base, q);
                assert!(r.approx_eq(&expect, 1e-9));
            }
        }
        // Batch plan shares across the three expressions: fewer classes
        // than queries (GG consolidates the Test-4 trio).
        assert!(out.plan.classes.len() < 3, "{}", out.plan.explain(e.cube()));
        // Batched evaluation costs no more than sequential evaluation.
        let mut e2 = engine();
        let mut seq = starshare_exec::ExecReport::default();
        for t in &texts {
            e2.flush();
            seq.merge(&e2.mdx(t).unwrap().report);
        }
        assert!(out.report.sim <= seq.sim, "{} vs {}", out.report.sim, seq.sim);
    }

    #[test]
    fn mdx_many_handles_duplicate_expressions() {
        let mut e = engine();
        let t = starshare_mdx::paper_queries::paper_query_text(1);
        let out = e.mdx_many(&[t, t]).unwrap();
        assert_eq!(out.results.len(), 2);
        assert!(out.results[0][0].approx_eq(&out.results[1][0], 1e-12));
    }

    #[test]
    fn mdx_error_paths_are_reported() {
        let mut e = engine();
        assert!(e.mdx("this is not MDX").is_err());
        assert!(e.mdx("{Z1} on COLUMNS CONTEXT ABCD;").is_err());
    }

    #[test]
    fn engine_optimizer_is_configurable() {
        let e = engine().with_optimizer(OptimizerKind::Tplo);
        assert_eq!(e.optimizer, OptimizerKind::Tplo);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use starshare_mdx::paper_queries::paper_query_text;
    use starshare_storage::SimTime;

    fn engine() -> Engine {
        Engine::paper(starshare_olap::PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 50,
            with_indexes: true,
        })
        .with_result_cache()
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let mut e = engine();
        let first = e.mdx(paper_query_text(1)).unwrap();
        assert!(first.report.sim > SimTime::ZERO);
        assert_eq!(e.cached_results(), 1);
        e.flush(); // even cold, the cache answers
        let second = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(second.report.sim, SimTime::ZERO, "cache hit must be free");
        assert_eq!(first.results[0].rows, second.results[0].rows);
    }

    #[test]
    fn append_invalidates_the_cache() {
        let mut e = engine();
        let before = e.mdx(paper_query_text(1)).unwrap();
        e.append_facts(&[(vec![0, 0, 0, 0], 1000.0)]).unwrap();
        assert_eq!(e.cached_results(), 0);
        let after = e.mdx(paper_query_text(1)).unwrap();
        assert!(after.report.sim > SimTime::ZERO, "must re-execute");
        // The appended row falls inside Q1's slice (all-zero keys pass its
        // predicates), so the answer must actually change.
        assert!(
            (after.results[0].grand_total() - before.results[0].grand_total() - 1000.0).abs()
                < 1e-6,
            "{} vs {}",
            after.results[0].grand_total(),
            before.results[0].grand_total()
        );
    }

    #[test]
    fn cache_disabled_by_default() {
        let mut e = Engine::paper(starshare_olap::PaperCubeSpec {
            base_rows: 500,
            d_leaf: 24,
            seed: 50,
            with_indexes: false,
        });
        e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(e.cached_results(), 0);
        e.flush();
        let again = e.mdx(paper_query_text(1)).unwrap();
        assert!(again.report.sim > SimTime::ZERO);
    }
}
