//! The [`Engine`]: end-to-end MDX evaluation.

use std::time::Duration;

use starshare_bitmap::IndexFormat;
use starshare_exec::{
    shared_hybrid_join, shared_index_join, CacheHit, CacheStats, ExecContext, ExecError,
    ExecReport, ExecStrategy, MetricsSnapshot, MorselSpec, Provenance, QueryProfile, QueryResult,
    ResultCache, Telemetry, TelemetryConfig, WindowReport, WindowTimer,
};
use starshare_mdx::{bind, parse, BoundMdx};
use starshare_olap::{paper_cube, Cube, GroupByQuery, PaperCubeSpec};
use starshare_opt::{
    plan_window, CostModel, GlobalPlan, JoinMethod, OptimizerKind, PlanClass, SharingStats,
};
use starshare_storage::{CpuCounters, FaultPlan, FaultStats, HardwareModel, SimTime};

use crate::error::{Error, Result};

/// Per-field saturating difference of two CPU counter sets — used to
/// split a class's fold (merge) charge out of its total CPU when
/// building per-query profiles.
fn cpu_minus(a: &CpuCounters, b: &CpuCounters) -> CpuCounters {
    CpuCounters {
        hash_builds: a.hash_builds.saturating_sub(b.hash_builds),
        hash_probes: a.hash_probes.saturating_sub(b.hash_probes),
        agg_updates: a.agg_updates.saturating_sub(b.agg_updates),
        tuple_copies: a.tuple_copies.saturating_sub(b.tuple_copies),
        predicate_evals: a.predicate_evals.saturating_sub(b.predicate_evals),
        bitmap_words: a.bitmap_words.saturating_sub(b.bitmap_words),
        bitmap_tests: a.bitmap_tests.saturating_sub(b.bitmap_tests),
        index_lookups: a.index_lookups.saturating_sub(b.index_lookups),
    }
}

/// The result of executing one [`GlobalPlan`].
#[derive(Debug)]
pub struct PlanExecution {
    /// One result per query, in the plan's assignment order.
    pub results: Vec<QueryResult>,
    /// One report per class, in class order.
    pub per_class: Vec<ExecReport>,
    /// Totals across classes.
    pub total: ExecReport,
}

/// One expression's share of an MDX round trip: its binding plus a
/// per-query outcome for each bound query, in binding order.
#[derive(Debug)]
pub struct ExprOutcome {
    /// What the expression bound to.
    pub bound: BoundMdx,
    /// One outcome per bound query: the result, or the typed error that
    /// took that query (and only that query) down.
    pub results: Vec<Result<QueryResult>>,
}

impl ExprOutcome {
    /// True when every query of this expression answered.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }

    /// The `i`-th query's result (binding order).
    ///
    /// # Panics
    /// If that query failed — match on [`results`](ExprOutcome::results)
    /// for error handling.
    pub fn result(&self, i: usize) -> &QueryResult {
        self.results[i]
            .as_ref()
            .expect("query failed; match on `results` for error handling")
    }

    /// The successful results, in binding order.
    pub fn ok_results(&self) -> impl Iterator<Item = &QueryResult> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// The outcome of an MDX round trip — one expression
/// ([`Engine::mdx`]) or a whole batch ([`Engine::mdx_many`]); both paths
/// share this one type.
///
/// Failure is *per query*, not first-error-wins: a parse/bind error fails
/// only its expression's slot, and an execution fault fails only the
/// queries it actually touched — every other query in the batch still
/// carries its result. Only batch-level failures (the optimizer rejecting
/// the pooled query set) surface as `Err` from the call itself.
/// [`Engine::mdx`] additionally promotes any per-query error to a
/// call-level `Err` (a singleton batch has nothing to degrade to), so an
/// `Outcome` it returns is all-`Ok` by construction.
#[derive(Debug)]
pub struct Outcome {
    /// The single global plan covering every successfully bound
    /// expression's queries.
    pub plan: GlobalPlan,
    /// One outcome per input expression, in input order: `Err` when the
    /// expression failed to parse or bind, otherwise its per-query
    /// results.
    pub outcomes: Vec<Result<ExprOutcome>>,
    /// Execution totals (the classes that ran).
    pub report: ExecReport,
    /// One profile per bound query, flattened across expressions in input
    /// order (binding order within each): where the answer came from and
    /// which phases the simulated time went to. Empty when telemetry is
    /// off ([`EngineConfig::telemetry`]).
    pub profiles: Vec<QueryProfile>,
}

impl Outcome {
    /// True when every expression bound and every query answered.
    pub fn all_ok(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.as_ref().is_ok_and(ExprOutcome::all_ok))
    }

    /// Total failed queries plus failed expressions.
    pub fn n_failed(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match o {
                Ok(oc) => oc.results.iter().filter(|r| r.is_err()).count(),
                Err(_) => 1,
            })
            .sum()
    }

    /// The `i`-th expression's outcome (input order).
    ///
    /// # Panics
    /// If that expression failed to parse or bind — match on
    /// [`outcomes`](Outcome::outcomes) for error handling. Always safe on
    /// an outcome returned by [`Engine::mdx`].
    pub fn expr(&self, i: usize) -> &ExprOutcome {
        self.outcomes[i]
            .as_ref()
            .expect("expression failed; match on `outcomes` for error handling")
    }

    /// Every successful result, flattened across expressions in input
    /// order (binding order within each). After a strict [`Engine::mdx`]
    /// call this is *all* results of the expression.
    pub fn results(&self) -> Vec<&QueryResult> {
        self.outcomes
            .iter()
            .flatten()
            .flat_map(ExprOutcome::ok_results)
            .collect()
    }

    /// The `i`-th successful result (see [`results`](Outcome::results)).
    ///
    /// # Panics
    /// If there are fewer than `i + 1` successful results.
    pub fn result(&self, i: usize) -> &QueryResult {
        self.results()
            .get(i)
            .copied()
            .expect("no such result; match on `outcomes` for error handling")
    }
}

/// The outcome of one optimization **window** ([`Engine::mdx_window`]): a
/// batch of *submissions* (each its own list of MDX expressions, e.g. one
/// per serving session) planned as a single pooled query set, executed
/// once, and routed back per submission.
#[derive(Debug)]
pub struct WindowOutcome {
    /// The shared plan over the union of every submission's queries.
    pub plan: GlobalPlan,
    /// Per submission, in input order: one outcome per expression (the
    /// same shape as [`Outcome::outcomes`]).
    pub submissions: Vec<Vec<Result<ExprOutcome>>>,
    /// Per submission: the simulated cost its query set would have cost
    /// *alone* under the same optimizer — the window's cost-attribution
    /// figure, independent of window-mates by construction. With the
    /// result cache on, this is the submission's cache charges (zero for
    /// exact hits, rollup CPU for subsumption hits) plus the solo cost of
    /// its misses; zero for submissions with no bound queries.
    pub attributed: Vec<SimTime>,
    /// How much cross-submission sharing the plan achieved.
    pub sharing: SharingStats,
    /// What the result cache did for this window: exact and subsumption
    /// hits, misses, insertions, evictions (all zero when the cache is
    /// disabled).
    pub cache: CacheStats,
    /// Window-level accounting (plan wall, execution totals, envelope).
    pub report: WindowReport,
    /// Per submission, one profile per bound query (binding order): cache
    /// provenance plus phase attribution of the simulated time. Empty
    /// when telemetry is off ([`EngineConfig::telemetry`]).
    pub profiles: Vec<Vec<QueryProfile>>,
}

impl WindowOutcome {
    /// The `i`-th submission's expression outcomes.
    pub fn submission(&self, i: usize) -> &[Result<ExprOutcome>] {
        &self.submissions[i]
    }

    /// True when every expression of every submission fully answered.
    pub fn all_ok(&self) -> bool {
        self.submissions
            .iter()
            .flatten()
            .all(|o| o.as_ref().is_ok_and(ExprOutcome::all_ok))
    }
}

/// What one [`Engine::append_facts`] call did: the rows landed, the data
/// epoch the cube moved to, and what the result cache did to stay fresh —
/// either delta-patching its entries ([`EngineConfig::cache_patching`], the
/// default) or dropping them wholesale.
#[derive(Debug)]
pub struct AppendOutcome {
    /// Fact rows appended (all views, indexes, and stats maintained).
    pub appended: u64,
    /// The cube's data epoch after the append.
    pub epoch: u64,
    /// What the cache did for this append: `patched`/`patch_drops` under
    /// delta patching, `invalidations` under epoch-drop (all zero when the
    /// cache is disabled).
    pub cache: CacheStats,
    /// The patch work, charged as pure CPU on the simulated clock (empty
    /// under epoch-drop — dropping is free; recomputation pays later).
    pub report: ExecReport,
}

/// The result of executing one [`GlobalPlan`] with per-query degradation
/// ([`Engine::execute_plan_degraded`]): a failure takes down exactly the
/// queries of the class it struck, never the whole plan.
#[derive(Debug)]
pub struct DegradedExecution {
    /// One outcome per query, in the plan's assignment order.
    pub results: Vec<Result<QueryResult>>,
    /// One report per class, in class order (a failed class reports only
    /// the defaults — its partial work is not separable).
    pub per_class: Vec<ExecReport>,
    /// One merge-phase CPU counter set per class, in class order — the
    /// parallel executor's fold charge, already included in the class's
    /// `per_class` report but broken out so per-query profiles can
    /// attribute it to the merge phase (all-zero on the sequential path
    /// and for failed classes).
    pub merge_cpu: Vec<CpuCounters>,
    /// Totals across the classes that completed.
    pub total: ExecReport,
}

/// How a serving layer batches submissions into optimization windows and
/// guards its own capacity (`starshare-serve`; carried by
/// [`EngineConfig::window`]).
///
/// A window *closes* — freezing the submissions that will be planned and
/// executed together — as soon as any of the three close conditions
/// trips: expression count ([`max_exprs`](WindowConfig::max_exprs)), MDX
/// byte budget ([`max_bytes`](WindowConfig::max_bytes)), or deadline
/// since the first submission ([`max_wait`](WindowConfig::max_wait)).
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Close the window once it holds this many expressions (≥ 1).
    pub max_exprs: usize,
    /// Close the window once its pooled MDX text reaches this many bytes.
    pub max_bytes: usize,
    /// Close the window this long after its first submission arrived,
    /// even if count/byte budgets have room — the latency bound a
    /// submission pays for sharing.
    pub max_wait: Duration,
    /// Capacity of the server's submission queue; a submission arriving
    /// when it is full is rejected with
    /// [`Overload::Queue`](crate::Overload::Queue).
    pub queue_depth: usize,
    /// Per-tenant in-flight submission budget; beyond it a tenant's
    /// submissions are rejected with
    /// [`Overload::Tenant`](crate::Overload::Tenant).
    pub tenant_inflight: usize,
    /// Optimizer for window plans. Defaults to TPLO — the only algorithm
    /// whose per-query assignments are independent of window-mates, which
    /// is what makes windowed results bit-identical to solo runs (see
    /// `starshare_opt::window`).
    pub optimizer: OptimizerKind,
    /// Pages per morsel for window execution. Defaults to `u32::MAX`
    /// (whole-table morsels): probe-morsel boundaries depend on the
    /// class's *combined* candidate bitmap, so smaller morsels would let
    /// window-mates shift float summation order. Whole-table units keep
    /// windowed results bit-identical to solo runs at any thread count.
    pub morsel_pages: u32,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            max_exprs: 16,
            max_bytes: 64 * 1024,
            max_wait: Duration::from_millis(2),
            queue_depth: 256,
            tenant_inflight: 32,
            optimizer: OptimizerKind::Tplo,
            morsel_pages: u32::MAX,
        }
    }
}

impl WindowConfig {
    /// Sets the expression-count close condition (clamped to ≥ 1).
    pub fn max_exprs(mut self, n: usize) -> Self {
        self.max_exprs = n.max(1);
        self
    }

    /// Sets the pooled-byte close condition.
    pub fn max_bytes(mut self, n: usize) -> Self {
        self.max_bytes = n;
        self
    }

    /// Sets the deadline close condition.
    pub fn max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d;
        self
    }

    /// Sets the submission-queue capacity (clamped to ≥ 1).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Sets the per-tenant in-flight budget (clamped to ≥ 1).
    pub fn tenant_inflight(mut self, n: usize) -> Self {
        self.tenant_inflight = n.max(1);
        self
    }

    /// Sets the window optimizer. Anything but
    /// [`Tplo`](OptimizerKind::Tplo) trades the windowed-equals-solo
    /// bit-identity guarantee for more aggressive sharing.
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Sets the pages-per-morsel for window execution (clamped to ≥ 1).
    /// Anything but `u32::MAX` trades the windowed-equals-solo
    /// bit-identity guarantee for finer parallel load balancing.
    pub fn morsel_pages(mut self, pages: u32) -> Self {
        self.morsel_pages = pages.max(1);
        self
    }
}

/// Everything configurable about an [`Engine`], as one plain, clonable
/// value — optimizer, result cache, worker threads, execution strategy,
/// and the serving-window knobs ([`WindowConfig`]).
///
/// This replaces the old `Engine::new(..)` vs `EngineBuilder` split: a
/// config is built once (and can be cloned, stored, and shared — unlike a
/// builder holding the cube), then applied to a cube with
/// [`build`](EngineConfig::build) or [`build_paper`](EngineConfig::build_paper).
///
/// ```
/// use starshare_core::{EngineConfig, OptimizerKind, PaperCubeSpec};
///
/// let engine = EngineConfig::paper()
///     .optimizer(OptimizerKind::Tplo)
///     .result_cache(true)
///     .threads(4)
///     .build_paper(PaperCubeSpec::scaled(0.002));
/// assert_eq!(engine.threads(), 4);
/// assert_eq!(engine.optimizer(), OptimizerKind::Tplo);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Optimizer used by [`Engine::mdx`]/[`Engine::mdx_many`].
    pub optimizer: OptimizerKind,
    /// Whether the subsumption-aware result cache
    /// ([`starshare_exec::cache`]) answers repeated queries from memory:
    /// an identical query is free, and a coarser query covered by a cached
    /// finer result is answered by rolling that result up (charged as CPU
    /// over the cached rows on the simulated clock). Invalidated by the
    /// cube epoch [`Engine::append_facts`] bumps. Off by default — the
    /// experiment harness must re-execute.
    pub result_cache: bool,
    /// Byte budget for the result cache's payloads
    /// ([`cache_bytes`](EngineConfig::cache_bytes)); beyond it the entry
    /// with the lowest saved-sim-time-per-byte is evicted.
    pub cache_bytes: usize,
    /// Whether [`Engine::append_facts`] carries cached results across the
    /// epoch bump by **delta patching** them with the appended rows
    /// (`true`, the default) instead of dropping every entry and paying
    /// full recomputation on the next probe (`false` — the epoch-drop
    /// baseline the streaming bench compares against). Patching is sound
    /// for SUM/COUNT always and MIN/MAX under the engine's insert-only
    /// append model; AVG entries are dropped either way.
    pub cache_patching: bool,
    /// Worker threads for plan execution (1 = the sequential in-place
    /// path). Results and simulated times are identical at any thread
    /// count; only wall time changes.
    pub threads: usize,
    /// How the parallel path carves classes into work units.
    pub strategy: ExecStrategy,
    /// Serving-window behavior (used by `starshare-serve`).
    pub window: WindowConfig,
    /// Deterministic telemetry (structured tracing, the unified metrics
    /// registry, and per-query profiles). Off by default: every hook is
    /// an inlined no-op, and results, `IoStats`, and the simulated clock
    /// are bit-identical whether telemetry is armed or not.
    pub telemetry: TelemetryConfig,
    /// Storage format for every bitmap join index
    /// ([`build`](EngineConfig::build) relays out existing indexes whose
    /// format differs). `Compressed` stores roaring/RLE containers and
    /// charges index I/O by compressed page count; results are
    /// bit-identical either way. Default: `Plain` — the escape hatch back
    /// to uncompressed indexes.
    pub index_format: IndexFormat,
    /// Whether heap pages are stored compressed (bit-packed keys,
    /// quantized measures, per-zone min/max maps enabling partition
    /// pruning). Applied to every table heap at
    /// [`build`](EngineConfig::build) time. Results are bit-identical;
    /// scans charge fewer I/O bytes plus a decompression CPU term.
    /// Default: `false` — the uncompressed escape hatch.
    pub compression: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineConfig {
    /// The general-purpose default: GG optimizer, no result cache, and as
    /// many worker threads as the host offers — results and simulated
    /// times are identical at any thread count (the determinism contract
    /// in `starshare_exec::parallel`), so running wide is free. Use
    /// [`paper`](EngineConfig::paper) when reproducing the paper's
    /// uniprocessor experiments.
    pub fn new() -> Self {
        EngineConfig {
            optimizer: OptimizerKind::Gg,
            result_cache: false,
            cache_bytes: Self::DEFAULT_CACHE_BYTES,
            cache_patching: true,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            strategy: ExecStrategy::Morsel(MorselSpec::default()),
            window: WindowConfig::default(),
            telemetry: TelemetryConfig::default(),
            index_format: IndexFormat::Plain,
            compression: false,
        }
    }

    /// Default result-cache byte budget (1 MiB).
    pub const DEFAULT_CACHE_BYTES: usize = 1 << 20;

    /// The paper-experiment default: like [`new`](EngineConfig::new) but
    /// pinned to one thread — the paper's experiments model a 1998
    /// uniprocessor, and the sequential in-place path additionally lets
    /// later queries in a session reuse the shared pool's residency,
    /// exactly the behavior the paper's experiments measure.
    pub fn paper() -> Self {
        Self::new().threads(1)
    }

    /// Selects the optimizer used by [`Engine::mdx`] (default: GG).
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Enables (or disables) the subsumption-aware result cache.
    pub fn result_cache(mut self, on: bool) -> Self {
        self.result_cache = on;
        self
    }

    /// Sets the result cache's byte budget (see
    /// [`cache_bytes`](EngineConfig::cache_bytes); implies nothing about
    /// [`result_cache`](EngineConfig::result_cache), which still switches
    /// the cache on).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Selects how [`Engine::append_facts`] keeps the result cache fresh:
    /// delta patching (`true`, default) or wholesale epoch-drop (`false`).
    /// See [`cache_patching`](EngineConfig::cache_patching).
    pub fn cache_patching(mut self, on: bool) -> Self {
        self.cache_patching = on;
        self
    }

    /// Sets the worker-thread count for plan execution (clamped to ≥ 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the pages-per-morsel size for parallel execution (clamped to
    /// ≥ 1) by selecting a morsel strategy of that granularity. Smaller
    /// morsels balance load better at the price of more per-morsel
    /// overhead; `u32::MAX` degenerates to one morsel per class. Results
    /// are invariant to within float reassociation; I/O counters are
    /// exactly invariant (morsels are page-aligned).
    pub fn morsel_pages(mut self, pages: u32) -> Self {
        self.strategy = ExecStrategy::Morsel(MorselSpec::with_pages(pages));
        self
    }

    /// Sets the execution strategy directly (e.g.
    /// [`ExecStrategy::LegacyFixed8`] for the pre-morsel baseline).
    pub fn strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the serving-window knobs.
    pub fn window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Arms (or disarms) the deterministic telemetry layer — structured
    /// tracing, the unified metrics registry, and per-query profiles
    /// (see [`Engine::telemetry`], [`Engine::metrics`],
    /// [`Engine::drain_trace`], [`Engine::explain_last`]). Off by
    /// default; when off every hook is a no-op and results, `IoStats`,
    /// and the simulated clock are bit-identical to a telemetry-free
    /// engine.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = cfg;
        self
    }

    /// Selects the storage format for every bitmap join index (default:
    /// [`IndexFormat::Plain`]). See
    /// [`index_format`](EngineConfig::index_format).
    pub fn index_format(mut self, format: IndexFormat) -> Self {
        self.index_format = format;
        self
    }

    /// Turns compressed heap storage on or off (default: off). See
    /// [`compression`](EngineConfig::compression).
    pub fn compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builds an engine over an existing cube and hardware model.
    pub fn build(self, mut cube: Cube, model: HardwareModel) -> Engine {
        if self.compression || self.index_format != IndexFormat::Plain {
            let schema = cube.schema.clone();
            let ids: Vec<_> = cube.catalog.iter().map(|(id, _)| id).collect();
            for id in ids {
                if self.compression {
                    cube.catalog.table_mut(id).heap_mut().compress();
                }
                // Relay out only the indexes whose stored format differs —
                // rebuilding from the heap is deterministic, so a matching
                // format is already byte-identical.
                let relayouts: Vec<_> = (0..schema.n_dims())
                    .filter_map(|d| {
                        let ix = cube.catalog.table(id).index(d)?;
                        (ix.index.format() != self.index_format)
                            .then(|| (d, ix.level, ix.index.file_id()))
                    })
                    .collect();
                for (d, level, file) in relayouts {
                    cube.catalog.table_mut(id).build_index_with_format(
                        &schema,
                        d,
                        level,
                        self.index_format,
                        file,
                    );
                }
            }
        }
        self.finish(cube, model)
    }

    /// [`build`](EngineConfig::build) minus the format passes (shared tail).
    fn finish(self, cube: Cube, model: HardwareModel) -> Engine {
        let mut cache = self
            .result_cache
            .then(|| ResultCache::new(self.cache_bytes));
        if let Some(c) = &mut cache {
            c.advance_epoch(cube.epoch);
        }
        let mut ctx = ExecContext::new(model);
        ctx.telemetry = Telemetry::new(self.telemetry);
        Engine {
            cube,
            ctx,
            cache,
            config: self,
        }
    }

    /// Builds an engine over the paper's test database (§7.2) under the
    /// 1998 hardware model.
    pub fn build_paper(self, spec: PaperCubeSpec) -> Engine {
        self.build(paper_cube(spec), HardwareModel::paper_1998())
    }
}

/// An OLAP engine over one cube.
///
/// Holds the buffer pool across calls (repeated queries benefit from cached
/// pages) — call [`flush`](Engine::flush) to model a cold start, as the
/// paper does before each test.
#[derive(Debug)]
pub struct Engine {
    cube: Cube,
    ctx: ExecContext,
    /// Opt-in subsumption-aware result cache (see
    /// [`EngineConfig::result_cache`] / [`EngineConfig::cache_bytes`]).
    cache: Option<ResultCache>,
    config: EngineConfig,
}

impl Engine {
    /// An engine over an existing cube with the given hardware model and
    /// the default [`EngineConfig`].
    pub fn new(cube: Cube, model: HardwareModel) -> Self {
        EngineConfig::new().build(cube, model)
    }

    /// An engine over the paper's test database (§7.2) under the 1998
    /// hardware model and the paper [`EngineConfig`] (one thread).
    pub fn paper(spec: PaperCubeSpec) -> Self {
        EngineConfig::paper().build_paper(spec)
    }

    /// An engine over an existing cube with an explicit configuration
    /// (equivalent to [`EngineConfig::build`]).
    pub fn with_config(cube: Cube, model: HardwareModel, config: EngineConfig) -> Self {
        config.build(cube, model)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Switches the optimizer on a live engine (e.g. a CLI session).
    pub fn set_optimizer(&mut self, kind: OptimizerKind) {
        self.config.optimizer = kind;
    }

    /// The optimizer [`mdx`](Engine::mdx) currently uses.
    pub fn optimizer(&self) -> OptimizerKind {
        self.config.optimizer
    }

    /// Worker threads used for plan execution.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Sets the worker-thread count on a live engine (clamped to ≥ 1).
    pub fn set_threads(&mut self, n: usize) {
        self.config.threads = n.max(1);
    }

    /// Pages per morsel used by the parallel path (the morsel default if
    /// a non-morsel strategy is selected).
    pub fn morsel_pages(&self) -> u32 {
        match self.config.strategy {
            ExecStrategy::Morsel(spec) => spec.pages,
            _ => starshare_exec::DEFAULT_MORSEL_PAGES,
        }
    }

    /// Sets the pages-per-morsel size on a live engine (clamped to ≥ 1).
    pub fn set_morsel_pages(&mut self, pages: u32) {
        self.config.strategy = ExecStrategy::Morsel(MorselSpec::with_pages(pages));
    }

    /// The [`ExecStrategy`] the engine's parallel path runs under.
    fn exec_strategy(&self) -> ExecStrategy {
        self.config.strategy
    }

    /// Cached results currently held (0 when the cache is disabled).
    pub fn cached_results(&self) -> usize {
        self.cache.as_ref().map_or(0, ResultCache::len)
    }

    /// Result-payload bytes the cache currently holds (0 when disabled);
    /// never exceeds [`EngineConfig::cache_bytes`].
    pub fn cache_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, ResultCache::bytes)
    }

    /// Lifetime result-cache counters (all zero when disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map_or_else(CacheStats::default, |c| c.stats())
    }

    /// The engine's telemetry handle (disabled unless
    /// [`EngineConfig::telemetry`] armed it — then every hook is a
    /// no-op). Clones share state with the engine.
    pub fn telemetry(&self) -> &Telemetry {
        &self.ctx.telemetry
    }

    /// A point-in-time snapshot of the unified metrics registry (`None`
    /// when telemetry is off).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.ctx.telemetry.snapshot()
    }

    /// Drains the trace ring buffer as JSONL, one record per line plus a
    /// trailer (`None` when telemetry is off). Same seed and workload ⇒
    /// byte-identical output, at any thread count on the partitioned
    /// executor path.
    pub fn drain_trace(&self) -> Option<String> {
        self.ctx.telemetry.drain_jsonl()
    }

    /// Per-query profiles of the most recent [`mdx`](Engine::mdx) /
    /// [`mdx_many`](Engine::mdx_many) / [`mdx_window`](Engine::mdx_window)
    /// call, flattened in routing order (empty when telemetry is off or
    /// before the first call) — the `explain_last()` view.
    pub fn explain_last(&self) -> Vec<QueryProfile> {
        self.ctx.telemetry.last_profiles()
    }

    /// The cube.
    pub fn cube(&self) -> &Cube {
        &self.cube
    }

    /// The execution context (buffer pool + hardware model).
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Empties the buffer pool.
    pub fn flush(&mut self) {
        self.ctx.flush();
    }

    /// Appends new fact rows, incrementally maintaining every materialized
    /// view, bitmap join index, and statistic (see
    /// [`starshare_olap::maintain`]). The buffer pool is flushed: appended
    /// pages invalidate resident images of the grown tables.
    ///
    /// The result cache is carried across the epoch bump by delta-patching
    /// its entries with the appended rows (the returned
    /// [`AppendOutcome::report`] charges the patch CPU on the simulated
    /// clock), unless [`EngineConfig::cache_patching`] is off — then every
    /// stale entry is dropped and recomputation pays on the next probe. A
    /// failed append (bad arity, out-of-range key) mutates nothing: not
    /// the cube, not the cache, not the epoch.
    pub fn append_facts(&mut self, rows: &[(Vec<u32>, f64)]) -> Result<AppendOutcome> {
        let appended = starshare_olap::append_facts(&mut self.cube, rows)?;
        let tele = self.ctx.telemetry.clone();
        tele.trace(|t| t.start("engine.append", vec![("rows", appended.into())]));
        self.ctx.flush();
        let stats_before = self.cache_stats();
        let mut report = ExecReport::default();
        if let Some(c) = &mut self.cache {
            if self.config.cache_patching {
                report = c.apply_append(&self.cube.schema, self.cube.epoch, rows, &self.ctx.model);
            } else {
                c.advance_epoch(self.cube.epoch);
            }
        }
        let cache = self.cache_stats().since(stats_before);
        tele.metrics(|m| {
            m.observe_append(appended);
            m.observe_cache(
                cache.exact_hits,
                cache.subsumption_hits,
                cache.misses,
                cache.insertions,
                cache.evictions,
                cache.invalidations,
                cache.patched,
                cache.patch_drops,
            );
        });
        tele.trace(|t| {
            t.advance(report.sim);
            if self.cache.is_some() {
                t.event(
                    "cache.patch",
                    vec![
                        ("patched", cache.patched.into()),
                        ("dropped", cache.patch_drops.into()),
                        ("invalidated", cache.invalidations.into()),
                        ("sim_ns", report.sim.into()),
                    ],
                );
            }
            t.end(
                "engine.append",
                vec![
                    ("epoch", self.cube.epoch.into()),
                    ("sim_ns", report.sim.into()),
                ],
            );
        });
        Ok(AppendOutcome {
            appended,
            epoch: self.cube.epoch,
            cache,
            report,
        })
    }

    /// The cost model over this engine's cube and hardware.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.cube, self.ctx.model)
    }

    /// Full round trip: parse, bind, optimize (with the engine's configured
    /// algorithm), execute.
    ///
    /// A thin wrapper over [`mdx_many`](Engine::mdx_many) with a singleton
    /// batch — both paths share one implementation. With only one
    /// expression there is nothing to degrade to, so the first per-query
    /// error (if any) becomes the call's error; a returned [`Outcome`] is
    /// therefore all-`Ok`, and [`Outcome::expr`]/[`Outcome::result`] are
    /// safe on it.
    pub fn mdx(&mut self, text: &str) -> Result<Outcome> {
        let mut out = self.mdx_many(&[text])?;
        let expr = out.outcomes.pop().expect("one expression in, one out")?;
        if let Some(e) = expr.results.iter().find_map(|r| r.as_ref().err()) {
            return Err(e.clone());
        }
        out.outcomes.push(Ok(expr));
        Ok(out)
    }

    /// Like [`mdx`](Engine::mdx) but over a whole *batch* of MDX
    /// expressions: all their queries are pooled and optimized as one unit,
    /// so sharing can cross expression boundaries (the paper optimizes per
    /// expression; a multi-user OLAP server sees exactly this batch shape).
    ///
    /// A thin wrapper over [`mdx_window`](Engine::mdx_window) with a
    /// single submission, the engine's optimizer, and the engine's
    /// execution strategy.
    ///
    /// Failures degrade per query, not per batch: an expression that fails
    /// to parse or bind occupies an `Err` outcome slot, and an execution
    /// fault (see [`inject_faults`](Engine::inject_faults)) fails only the
    /// queries sharing the struck operator — everything else still
    /// answers. The call itself errs only on batch-level failures (the
    /// optimizer rejecting the pooled query set).
    ///
    /// With the result cache enabled, queries it can answer (exactly, or
    /// by rolling up a cached finer result) never reach the planner — an
    /// all-exact-hit batch is served from memory with zero simulated cost.
    pub fn mdx_many(&mut self, texts: &[&str]) -> Result<Outcome> {
        let window = self.mdx_window(&[texts], self.config.optimizer, self.exec_strategy())?;
        let mut submissions = window.submissions;
        let mut profiles = window.profiles;
        Ok(Outcome {
            plan: window.plan,
            outcomes: submissions.pop().expect("one submission in, one out"),
            report: window.report.exec,
            profiles: profiles.pop().unwrap_or_default(),
        })
    }

    /// Evaluates one optimization **window**: several independent
    /// *submissions* (each its own batch of MDX expressions — e.g. one
    /// per serving session), planned as a single pooled query set with
    /// `optimizer`, executed once under `strategy`, and routed back per
    /// submission. This is the entry point `starshare-serve` drives; the
    /// engine's own [`mdx_many`](Engine::mdx_many) is the single-submission
    /// special case.
    ///
    /// Per-submission isolation inside the shared run:
    ///
    /// * parse/bind errors fail only their expression's slot;
    /// * an execution failure (e.g. an injected storage fault) in a class
    ///   shared by several submissions triggers a **per-owner re-run** of
    ///   that class, so one submission's fault cannot fail a window-mate —
    ///   each owner's sub-class either answers or fails alone (a window
    ///   with a single submission skips this and keeps plain per-class
    ///   degradation);
    /// * [`WindowOutcome::attributed`] prices each submission's query set
    ///   *as if it ran alone* — independent of window-mates.
    ///
    /// Determinism: with an assignment-stable optimizer
    /// ([`Tplo`](OptimizerKind::Tplo)) and whole-table morsels
    /// ([`MorselSpec::whole_table`]), a submission's results are
    /// bit-identical to running it alone — see `starshare_opt::window`
    /// for the argument and [`WindowConfig`] for the defaults that pin
    /// this.
    pub fn mdx_window<S: AsRef<str>>(
        &mut self,
        submissions: &[&[S]],
        optimizer: OptimizerKind,
        strategy: ExecStrategy,
    ) -> Result<WindowOutcome> {
        // Routes executed (or cached) per-query outcomes back to their
        // submissions, preserving expression input order and binding
        // order within each expression.
        fn route(
            bounds: Vec<Vec<Result<BoundMdx>>>,
            take: &mut dyn FnMut(usize, &GroupByQuery) -> Result<QueryResult>,
        ) -> Vec<Vec<Result<ExprOutcome>>> {
            bounds
                .into_iter()
                .enumerate()
                .map(|(si, sub)| {
                    sub.into_iter()
                        .map(|b| {
                            b.map(|bound| {
                                let results = bound.queries.iter().map(|q| take(si, q)).collect();
                                ExprOutcome { bound, results }
                            })
                        })
                        .collect()
                })
                .collect()
        }

        let mut timer = WindowTimer::start();
        let mut bounds: Vec<Vec<Result<BoundMdx>>> = Vec::with_capacity(submissions.len());
        let mut sets: Vec<Vec<GroupByQuery>> = Vec::with_capacity(submissions.len());
        for texts in submissions {
            let mut sub_bounds = Vec::with_capacity(texts.len());
            let mut set = Vec::new();
            for text in texts.iter() {
                match parse(text.as_ref())
                    .map_err(Error::from)
                    .and_then(|expr| bind(&self.cube.schema, &expr).map_err(Error::from))
                {
                    Ok(bound) => {
                        set.extend(bound.queries.clone());
                        sub_bounds.push(Ok(bound));
                    }
                    Err(e) => sub_bounds.push(Err(e)),
                }
            }
            bounds.push(sub_bounds);
            sets.push(set);
        }
        let n_queries: usize = sets.iter().map(Vec::len).sum();
        let n_exprs: usize = submissions.iter().map(|s| s.len()).sum();
        let degenerate_sharing = SharingStats {
            n_submissions: submissions.len(),
            n_queries,
            n_classes: 0,
            cross_submission_classes: 0,
            shared_scan_ratio: 1.0,
        };

        let tele = self.ctx.telemetry.clone();
        tele.trace(|t| {
            t.start(
                "window.close",
                vec![
                    ("n_submissions", submissions.len().into()),
                    ("n_exprs", n_exprs.into()),
                    ("n_queries", n_queries.into()),
                ],
            )
        });

        if n_queries == 0 {
            // Every expression failed to parse/bind (or bound to nothing):
            // no plan to run.
            let routed = route(bounds, &mut |_, _| {
                Err(Error::Exec(ExecError::new("expression bound no queries")))
            });
            tele.metrics(|m| m.observe_window(submissions.len() as u64, 0, 0, 0, n_exprs as u64));
            tele.trace(|t| {
                t.end(
                    "window.close",
                    vec![("n_classes", 0u64.into()), ("sim_ns", SimTime::ZERO.into())],
                )
            });
            tele.store_profiles(Vec::new());
            let n_subs = sets.len();
            return Ok(WindowOutcome {
                plan: GlobalPlan::default(),
                submissions: routed,
                attributed: vec![SimTime::ZERO; n_subs],
                sharing: degenerate_sharing,
                cache: CacheStats::default(),
                report: timer.finish(ExecReport::default(), n_subs, 0, 0),
                profiles: vec![Vec::new(); n_subs],
            });
        }

        // Split the window into cache-answerable queries and misses: only
        // the misses are planned and executed. `cached[si][j]` parallels
        // `sets[si][j]`; subsumption rollups are charged (per owning
        // submission and on the window total) as CPU over cached rows.
        let stats_before = self
            .cache
            .as_ref()
            .map_or_else(CacheStats::default, |c| c.stats());
        let mut cached: Vec<Vec<Option<QueryResult>>> = Vec::with_capacity(sets.len());
        // Parallels `cached`: how each hit was obtained plus its rollup
        // charge, for per-query profiles (`None` for misses).
        let mut hit_info: Vec<Vec<Option<(Provenance, SimTime)>>> = Vec::with_capacity(sets.len());
        let mut cache_charges: Vec<SimTime> = vec![SimTime::ZERO; sets.len()];
        let mut cache_total = ExecReport::default();
        let mut miss_sets: Vec<Vec<GroupByQuery>> = Vec::with_capacity(sets.len());
        if let Some(cache) = &mut self.cache {
            cache.advance_epoch(self.cube.epoch);
            let model = self.ctx.model;
            for (si, set) in sets.iter().enumerate() {
                let mut hits = Vec::with_capacity(set.len());
                let mut info = Vec::with_capacity(set.len());
                let mut misses = Vec::new();
                for q in set {
                    match cache.lookup(&self.cube.schema, q, &model) {
                        Some(CacheHit::Exact { result, patched }) => {
                            let prov = if patched {
                                Provenance::DeltaPatched
                            } else {
                                Provenance::ExactHit
                            };
                            tele.trace(|t| {
                                t.event(
                                    "cache.probe",
                                    vec![
                                        ("submission", si.into()),
                                        ("outcome", prov.as_str().into()),
                                    ],
                                )
                            });
                            hits.push(Some(result));
                            info.push(Some((prov, SimTime::ZERO)));
                        }
                        Some(CacheHit::Subsumption { result, report }) => {
                            cache_charges[si] += report.sim;
                            cache_total.merge(&report);
                            tele.trace(|t| {
                                t.advance(report.sim);
                                t.event(
                                    "cache.probe",
                                    vec![
                                        ("submission", si.into()),
                                        ("outcome", Provenance::SubsumptionRollup.as_str().into()),
                                        ("rollup_ns", report.sim.into()),
                                    ],
                                );
                            });
                            hits.push(Some(result));
                            info.push(Some((Provenance::SubsumptionRollup, report.sim)));
                        }
                        None => {
                            tele.trace(|t| {
                                t.event(
                                    "cache.probe",
                                    vec![("submission", si.into()), ("outcome", "miss".into())],
                                )
                            });
                            misses.push(q.clone());
                            hits.push(None);
                            info.push(None);
                        }
                    }
                }
                cached.push(hits);
                hit_info.push(info);
                miss_sets.push(misses);
            }
        } else {
            cached = sets.iter().map(|s| vec![None; s.len()]).collect();
            hit_info = sets.iter().map(|s| vec![None; s.len()]).collect();
            miss_sets = sets.clone();
        }

        let n_miss: usize = miss_sets.iter().map(Vec::len).sum();
        tele.trace(|t| {
            t.start(
                "opt.plan",
                vec![
                    ("heuristic", optimizer.to_string().into()),
                    ("n_miss_queries", n_miss.into()),
                ],
            )
        });
        let planned = (|| -> Result<_> {
            let cm = self.cost_model();
            let wp = plan_window(&cm, &miss_sets, optimizer)?;
            // Price each submission as if it ran alone — the window's
            // cost-attribution figure, independent of window-mates: the
            // charge for its cache hits plus the solo cost of its misses.
            // A single-submission window's miss plan *is* its own solo run.
            let attributed: Vec<SimTime> = if miss_sets.len() == 1 {
                vec![cache_charges[0] + wp.plan.estimated_cost]
            } else {
                miss_sets
                    .iter()
                    .zip(&cache_charges)
                    .map(|(set, &charge)| {
                        if set.is_empty() {
                            Ok(charge)
                        } else {
                            Ok(charge + optimizer.run(&cm, set)?.estimated_cost)
                        }
                    })
                    .collect::<Result<_>>()?
            };
            Ok((wp, attributed))
        })();
        let (wp, attributed) = match planned {
            Ok(v) => v,
            Err(e) => {
                // Close the open spans so a failed window cannot skew the
                // nesting of later ones.
                tele.trace(|t| {
                    t.end("opt.plan", Vec::new());
                    t.end("window.close", Vec::new());
                });
                return Err(e);
            }
        };
        timer.planned();
        let plan = wp.plan;
        let owners = wp.owners;
        // The plan covers only the misses; report the window's full query
        // count (the serving layer counts queries served, not scanned).
        let mut sharing = wp.sharing;
        sharing.n_queries = n_queries;
        tele.trace(|t| {
            t.end(
                "opt.plan",
                vec![
                    ("n_classes", sharing.n_classes.into()),
                    (
                        "cross_submission_classes",
                        sharing.cross_submission_classes.into(),
                    ),
                    ("shared_scan_ratio", sharing.shared_scan_ratio.into()),
                    ("estimated_cost_ns", plan.estimated_cost.into()),
                ],
            )
        });

        let exec = self.execute_plan_degraded_with(&plan, strategy);
        let mut results = exec.results;
        let per_class = exec.per_class;
        let class_merge_cpu = exec.merge_cpu;
        let mut total = exec.total;
        // The subsumption rollups' CPU is window work too.
        total.merge(&cache_total);

        // One profile per plan slot: a query's profile is the phase
        // attribution of the shared operator pass that produced its
        // answer (class counters minus the fold charge, which gets its
        // own merge phase) — members of a multi-query class share it.
        let mut slot_profile: Vec<QueryProfile> = Vec::new();
        if tele.enabled() {
            let model = self.ctx.model;
            for (ci, class) in plan.classes.iter().enumerate() {
                let prov = if class.plans.len() > 1 {
                    Provenance::WindowShared
                } else {
                    Provenance::Direct
                };
                let merge_cpu = class_merge_cpu.get(ci).copied().unwrap_or_default();
                let scan_cpu = cpu_minus(&per_class[ci].cpu, &merge_cpu);
                let profile =
                    QueryProfile::executed(prov, &model, &per_class[ci].io, &scan_cpu, &merge_cpu);
                slot_profile.extend(std::iter::repeat_n(profile, class.plans.len()));
            }
        }

        // Fault isolation across submissions: a failed class whose slots
        // belong to more than one submission is re-run once per owner, so
        // one submission's fault cannot take a window-mate's queries
        // down. Single-owner failures stand — they are that submission's
        // own degradation (PR 3 semantics).
        if sharing.n_submissions > 1 {
            let mut base = 0usize;
            for class in &plan.classes {
                let len = class.plans.len();
                let slots = base..base + len;
                base += len;
                if len == 0 || !results[slots.clone()].iter().all(|r| r.is_err()) {
                    continue;
                }
                let owner_slice = &owners[slots.clone()];
                let mut distinct: Vec<usize> = Vec::new();
                for &o in owner_slice {
                    if !distinct.contains(&o) {
                        distinct.push(o);
                    }
                }
                if distinct.len() < 2 {
                    continue;
                }
                for &o in &distinct {
                    let sub = PlanClass {
                        table: class.table,
                        plans: class
                            .plans
                            .iter()
                            .zip(owner_slice)
                            .filter(|&(_, po)| *po == o)
                            .map(|(p, _)| p.clone())
                            .collect(),
                    };
                    match self.run_class(&sub, strategy) {
                        Ok((rs, rep, _)) => {
                            let mut it = rs.into_iter();
                            for (slot, &po) in slots.clone().zip(owner_slice) {
                                if po == o {
                                    results[slot] = Ok(it.next().expect("one result per query"));
                                }
                            }
                            total.merge(&rep);
                        }
                        Err(e) => {
                            for (slot, &po) in slots.clone().zip(owner_slice) {
                                if po == o {
                                    results[slot] = Err(Error::from(e.clone()));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Distribute outcomes back to expressions (binding order within
        // each): cache answers serve their slots directly — the take
        // calls for submission `si` arrive in exactly `sets[si]` order —
        // and every miss consumes one owned plan slot, in plan order
        // (duplicate queries each consume their own slot).
        let plan_queries: Vec<GroupByQuery> =
            plan.assignments().map(|(_, q, _)| q.clone()).collect();
        let mut pool: Vec<Option<Result<QueryResult>>> = results.into_iter().map(Some).collect();
        let mut next_q: Vec<usize> = vec![0; sets.len()];
        let tele_on = tele.enabled();
        let mut profiles: Vec<Vec<QueryProfile>> =
            sets.iter().map(|s| Vec::with_capacity(s.len())).collect();
        let routed = route(bounds, &mut |si, q| {
            let j = next_q[si];
            next_q[si] += 1;
            if let Some(r) = cached[si][j].take() {
                debug_assert_eq!(&r.query, q, "cache answer routed to the wrong slot");
                if tele_on {
                    let (prov, rollup) = hit_info[si][j].expect("hit info parallels cache answers");
                    profiles[si].push(QueryProfile::cached(prov, rollup));
                }
                return Ok(r);
            }
            let slot = plan_queries
                .iter()
                .enumerate()
                .position(|(i, pq)| pool[i].is_some() && owners[i] == si && pq == q)
                .ok_or_else(|| Error::Exec(ExecError::new("plan lost a query")))?;
            if tele_on {
                profiles[si].push(slot_profile[slot]);
            }
            pool[slot].take().expect("checked above")
        });
        if tele_on {
            tele.store_profiles(profiles.iter().flatten().copied().collect());
        }
        // Admit every fresh result (executed misses and subsumption
        // rollups — exact hits are already resident), seeded with its
        // estimated solo production cost: the simulated time a future hit
        // saves, which is what eviction ranks by.
        if let Some(cache) = &mut self.cache {
            let cm = CostModel::new(&self.cube, self.ctx.model);
            for oc in routed.iter().flatten().flatten() {
                for r in oc.results.iter().flatten() {
                    if cache.contains_exact(&r.query) {
                        continue;
                    }
                    let cost = optimizer
                        .run(&cm, std::slice::from_ref(&r.query))
                        .map_or(SimTime::ZERO, |p| p.estimated_cost);
                    cache.insert(r.query.clone(), r.clone(), cost);
                }
            }
        }
        let cache_stats = self
            .cache
            .as_ref()
            .map_or_else(CacheStats::default, |c| c.stats())
            .since(stats_before);
        let n_classes = plan.classes.len();
        tele.metrics(|m| {
            m.observe_window(
                sets.len() as u64,
                n_queries as u64,
                n_classes as u64,
                sharing.cross_submission_classes as u64,
                n_exprs as u64,
            );
            m.observe_exec(&total.io, total.sim, total.critical);
            m.observe_cache(
                cache_stats.exact_hits,
                cache_stats.subsumption_hits,
                cache_stats.misses,
                cache_stats.insertions,
                cache_stats.evictions,
                cache_stats.invalidations,
                cache_stats.patched,
                cache_stats.patch_drops,
            );
        });
        if let Some(fs) = self.fault_stats() {
            tele.metrics(|m| {
                m.set_faults(
                    fs.checked,
                    fs.transient,
                    fs.poisoned_pages,
                    fs.poison_denials,
                )
            });
        }
        tele.trace(|t| {
            if cache_stats.insertions > 0 {
                t.event(
                    "cache.admit",
                    vec![("count", cache_stats.insertions.into())],
                );
            }
            if cache_stats.evictions > 0 {
                t.event("cache.evict", vec![("count", cache_stats.evictions.into())]);
            }
            t.end(
                "window.close",
                vec![
                    ("n_classes", n_classes.into()),
                    ("sim_ns", total.sim.into()),
                    ("critical_ns", total.critical.into()),
                ],
            );
        });
        Ok(WindowOutcome {
            plan,
            submissions: routed,
            attributed,
            sharing,
            cache: cache_stats,
            report: timer.finish(total, sets.len(), n_queries, n_classes),
            profiles,
        })
    }

    /// Optimizes a query set with a specific algorithm.
    pub fn optimize(&self, queries: &[GroupByQuery], kind: OptimizerKind) -> Result<GlobalPlan> {
        Ok(kind.run(&self.cost_model(), queries)?)
    }

    /// Executes a global plan: each class runs as one shared operator
    /// (hybrid scan if any member is hash-based, shared index join
    /// otherwise).
    ///
    /// With [`threads`](Engine::threads) > 1 the classes run through the
    /// partitioned parallel subsystem
    /// ([`execute_plan_threads`](Engine::execute_plan_threads)); the default
    /// of 1 keeps the sequential in-place path, whose pool accounting
    /// existing experiments depend on.
    pub fn execute_plan(&mut self, plan: &GlobalPlan) -> Result<PlanExecution> {
        if self.config.threads > 1 {
            return self.execute_plan_threads(plan, self.config.threads);
        }
        let mut results = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for class in &plan.classes {
            let hash_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .map(|p| p.query.clone())
                .collect();
            let index_qs: Vec<GroupByQuery> = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Index)
                .map(|p| p.query.clone())
                .collect();
            let (rs, rep) = if hash_qs.is_empty() {
                shared_index_join(&mut self.ctx, &self.cube, class.table, &index_qs)?
            } else {
                shared_hybrid_join(&mut self.ctx, &self.cube, class.table, &hash_qs, &index_qs)?
            };
            // rs is ordered: hash queries first, then index queries — map
            // back to class plan order.
            let mut hash_iter = rs.iter().take(hash_qs.len());
            let mut index_iter = rs.iter().skip(hash_qs.len());
            for p in &class.plans {
                let r = match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("operator returns one result per query");
                results.push(r.clone());
            }
            per_class.push(rep);
            total.merge(&rep);
        }
        Ok(PlanExecution {
            results,
            per_class,
            total,
        })
    }

    /// Executes a global plan with **per-query graceful degradation**: each
    /// class runs independently, and a class that fails — an unrecovered
    /// storage fault (see [`inject_faults`](Engine::inject_faults)) or a
    /// plan-level operator error — yields `Err` for exactly its member
    /// queries while every other class still executes and answers.
    ///
    /// Because a denied page access charges nothing (see
    /// `starshare_storage::fault`), the surviving queries' results are
    /// bit-identical to a fault-free run of the same plan.
    ///
    /// A failed class's report stays at the defaults: its partial work is
    /// interleaved into the shared pool and not separable per class.
    pub fn execute_plan_degraded(&mut self, plan: &GlobalPlan) -> DegradedExecution {
        self.execute_plan_degraded_with(plan, self.exec_strategy())
    }

    /// [`execute_plan_degraded`](Engine::execute_plan_degraded) under an
    /// explicit [`ExecStrategy`] — the window path uses this to pin
    /// whole-table morsels regardless of the engine's own strategy. With
    /// one worker thread the strategy is irrelevant: the sequential
    /// in-place path runs the shared joins directly.
    pub fn execute_plan_degraded_with(
        &mut self,
        plan: &GlobalPlan,
        strategy: ExecStrategy,
    ) -> DegradedExecution {
        let mut results: Vec<Result<QueryResult>> = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut merge_cpu = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for class in &plan.classes {
            match self.run_class(class, strategy) {
                Ok((rs, rep, mc)) => {
                    results.extend(rs.into_iter().map(Ok));
                    total.merge(&rep);
                    per_class.push(rep);
                    merge_cpu.push(mc);
                }
                Err(e) => {
                    for _ in &class.plans {
                        results.push(Err(Error::from(e.clone())));
                    }
                    per_class.push(ExecReport::default());
                    merge_cpu.push(CpuCounters::default());
                }
            }
        }
        DegradedExecution {
            results,
            per_class,
            merge_cpu,
            total,
        }
    }

    /// Runs one plan class as a shared operator, returning its results
    /// **in class plan order** plus the class's report. Each call is one
    /// executor invocation, so a faulted class cannot take its neighbours
    /// down with it — both the degraded path and the window path's
    /// per-owner fault-isolation re-runs build on this.
    fn run_class(
        &mut self,
        class: &PlanClass,
        strategy: ExecStrategy,
    ) -> std::result::Result<(Vec<QueryResult>, ExecReport, CpuCounters), ExecError> {
        let hash_qs: Vec<GroupByQuery> = class
            .plans
            .iter()
            .filter(|p| p.method == JoinMethod::Hash)
            .map(|p| p.query.clone())
            .collect();
        let index_qs: Vec<GroupByQuery> = class
            .plans
            .iter()
            .filter(|p| p.method == JoinMethod::Index)
            .map(|p| p.query.clone())
            .collect();
        let (rs, rep, merge_cpu) = if self.config.threads > 1 {
            let mut outs = starshare_exec::execute_classes_with(
                &mut self.ctx,
                &self.cube,
                std::slice::from_ref(&starshare_exec::ClassSpec {
                    table: class.table,
                    hash_queries: hash_qs.clone(),
                    index_queries: index_qs.clone(),
                }),
                self.config.threads,
                strategy,
            )?;
            let out = outs.pop().expect("one class in, one out");
            (out.results, out.report, out.merge_cpu)
        } else if hash_qs.is_empty() {
            let (rs, rep) = shared_index_join(&mut self.ctx, &self.cube, class.table, &index_qs)?;
            (rs, rep, CpuCounters::default())
        } else {
            let (rs, rep) =
                shared_hybrid_join(&mut self.ctx, &self.cube, class.table, &hash_qs, &index_qs)?;
            (rs, rep, CpuCounters::default())
        };
        // rs is ordered hash-then-index — map back to class plan order.
        let mut hash_iter = rs.iter().take(hash_qs.len());
        let mut index_iter = rs.iter().skip(hash_qs.len());
        let ordered = class
            .plans
            .iter()
            .map(|p| {
                match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("operator returns one result per query")
                .clone()
            })
            .collect();
        Ok((ordered, rep, merge_cpu))
    }

    /// Arms deterministic fault injection on the engine's buffer pool: from
    /// now on, fault-checked page reads on the sequential execution path
    /// draw from `plan`'s seeded schedule (see
    /// `starshare_storage::FaultPlan`). Queries whose reads fault past the
    /// executor's bounded retry fail individually — see
    /// [`mdx_many`](Engine::mdx_many) and
    /// [`execute_plan_degraded`](Engine::execute_plan_degraded).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.ctx.pool.inject_faults(plan);
    }

    /// Disarms fault injection, returning the injector's tally (None if
    /// none was armed).
    pub fn clear_faults(&mut self) -> Option<FaultStats> {
        self.ctx.pool.clear_faults()
    }

    /// The armed injector's running tally, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.ctx.pool.fault_stats()
    }

    /// Executes a global plan on `threads` worker threads through the
    /// partitioned subsystem (`starshare_exec::parallel`), **regardless of
    /// the engine's own thread setting** — `threads = 1` still partitions,
    /// so runs at different thread counts are comparable unit-for-unit.
    ///
    /// The returned results and simulated times (`sim` and the
    /// critical-path `critical`) are bit-identical at every thread count;
    /// only host wall time responds to `threads`. The total's `critical`
    /// treats classes as fully concurrent (the slowest class bounds the
    /// plan), matching the fixed-partition model's idealized machine.
    pub fn execute_plan_threads(
        &mut self,
        plan: &GlobalPlan,
        threads: usize,
    ) -> Result<PlanExecution> {
        let specs: Vec<starshare_exec::ClassSpec> = plan
            .classes
            .iter()
            .map(|class| starshare_exec::ClassSpec {
                table: class.table,
                hash_queries: class
                    .plans
                    .iter()
                    .filter(|p| p.method == JoinMethod::Hash)
                    .map(|p| p.query.clone())
                    .collect(),
                index_queries: class
                    .plans
                    .iter()
                    .filter(|p| p.method == JoinMethod::Index)
                    .map(|p| p.query.clone())
                    .collect(),
            })
            .collect();
        let strategy = self.exec_strategy();
        let wall_start = std::time::Instant::now();
        let outcomes = starshare_exec::execute_classes_with(
            &mut self.ctx,
            &self.cube,
            &specs,
            threads,
            strategy,
        )?;
        let wall = wall_start.elapsed();

        let mut results = Vec::with_capacity(plan.n_queries());
        let mut per_class = Vec::with_capacity(plan.classes.len());
        let mut total = ExecReport::default();
        for (class, outcome) in plan.classes.iter().zip(outcomes) {
            let n_hash = class
                .plans
                .iter()
                .filter(|p| p.method == JoinMethod::Hash)
                .count();
            // Outcome results are hash-then-index — map back to plan order.
            let mut hash_iter = outcome.results.iter().take(n_hash);
            let mut index_iter = outcome.results.iter().skip(n_hash);
            for p in &class.plans {
                let r = match p.method {
                    JoinMethod::Hash => hash_iter.next(),
                    JoinMethod::Index => index_iter.next(),
                }
                .expect("one result per query");
                results.push(r.clone());
            }
            total.merge_concurrent(&outcome.report);
            per_class.push(outcome.report);
        }
        // Worker walls overlap; the plan's wall is what the host measured.
        total.wall = wall;
        Ok(PlanExecution {
            results,
            per_class,
            total,
        })
    }

    /// Executes each query completely independently (no shared operators,
    /// buffer pool flushed before each) — the naive baseline the paper's
    /// dotted bars show.
    pub fn execute_separately(
        &mut self,
        plans: &[(starshare_olap::TableId, GroupByQuery, JoinMethod)],
    ) -> Result<(Vec<QueryResult>, ExecReport)> {
        let mut results = Vec::with_capacity(plans.len());
        let mut total = ExecReport::default();
        for (t, q, m) in plans {
            self.ctx.flush();
            let qs = std::slice::from_ref(q);
            let (mut rs, rep) = match m {
                JoinMethod::Hash => shared_hybrid_join(&mut self.ctx, &self.cube, *t, qs, &[])?,
                JoinMethod::Index => shared_index_join(&mut self.ctx, &self.cube, *t, qs)?,
            };
            results.push(rs.pop().expect("one result"));
            total.merge(&rep);
        }
        Ok((results, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_exec::reference_eval;
    use starshare_mdx::paper_queries::{bind_paper_query, bind_paper_test};

    fn engine() -> Engine {
        Engine::paper(PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        })
    }

    #[test]
    fn mdx_round_trip_matches_reference() {
        let mut e = engine();
        let out = e
            .mdx(starshare_mdx::paper_queries::paper_query_text(1))
            .unwrap();
        assert_eq!(out.results().len(), 1);
        let q = bind_paper_query(&e.cube().schema, 1).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expect = reference_eval(e.cube(), base, &q);
        assert!(out.result(0).approx_eq(&expect, 1e-9));
        assert!(out.report.sim > starshare_storage::SimTime::ZERO);
        assert_eq!(out.plan.n_queries(), 1);
    }

    #[test]
    fn multi_level_mdx_returns_results_in_binding_order() {
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1.CHILDREN, A''.A2} on COLUMNS {B''.B1} on ROWS \
                 CONTEXT ABCD FILTER (D.DD1);",
            )
            .unwrap();
        let expr = out.expr(0);
        assert_eq!(expr.bound.queries.len(), 2);
        assert_eq!(out.results().len(), 2);
        for (q, r) in expr.bound.queries.iter().zip(out.results()) {
            assert_eq!(&r.query, q, "result order must match binding order");
            let base = e.cube().catalog.base_table().unwrap();
            let expect = reference_eval(e.cube(), base, q);
            assert!(r.approx_eq(&expect, 1e-9));
        }
    }

    #[test]
    fn all_optimizers_execute_test4_identically() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
        let base = e.cube().catalog.base_table().unwrap();
        let expects: Vec<_> = queries
            .iter()
            .map(|q| reference_eval(e.cube(), base, q))
            .collect();
        for kind in OptimizerKind::ALL {
            let plan = e.optimize(&queries, kind).unwrap();
            e.flush();
            let exec = e.execute_plan(&plan).unwrap();
            assert_eq!(exec.results.len(), queries.len(), "{kind}");
            // Match each plan result to its query's reference.
            for r in &exec.results {
                let i = queries.iter().position(|q| *q == r.query).unwrap();
                assert!(r.approx_eq(&expects[i], 1e-9), "{kind}");
            }
            assert_eq!(exec.per_class.len(), plan.classes.len());
        }
    }

    #[test]
    fn separate_execution_baseline_costs_more_than_planned() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 1).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        e.flush();
        let shared = e.execute_plan(&plan).unwrap();
        let separate_plans: Vec<_> = plan
            .assignments()
            .map(|(t, q, m)| (t, q.clone(), m))
            .collect();
        let (rs, sep_report) = e.execute_separately(&separate_plans).unwrap();
        assert_eq!(rs.len(), queries.len());
        assert!(
            shared.total.sim <= sep_report.sim,
            "shared {} vs separate {}",
            shared.total.sim,
            sep_report.sim
        );
    }

    #[test]
    fn mdx_many_crosses_expression_boundaries() {
        let mut e = engine();
        let texts = [
            starshare_mdx::paper_queries::paper_query_text(1),
            starshare_mdx::paper_queries::paper_query_text(2),
            starshare_mdx::paper_queries::paper_query_text(3),
        ];
        let out = e.mdx_many(&texts).unwrap();
        assert_eq!(out.outcomes.len(), 3);
        assert!(out.all_ok());
        let base = e.cube().catalog.base_table().unwrap();
        for outcome in &out.outcomes {
            let oc = outcome.as_ref().unwrap();
            for (q, r) in oc.bound.queries.iter().zip(&oc.results) {
                let expect = reference_eval(e.cube(), base, q);
                assert!(r.as_ref().unwrap().approx_eq(&expect, 1e-9));
            }
        }
        // Batch plan shares across the three expressions: fewer classes
        // than queries (GG consolidates the Test-4 trio).
        assert!(out.plan.classes.len() < 3, "{}", out.plan.explain(e.cube()));
        // Batched evaluation costs no more than sequential evaluation.
        let mut e2 = engine();
        let mut seq = starshare_exec::ExecReport::default();
        for t in &texts {
            e2.flush();
            seq.merge(&e2.mdx(t).unwrap().report);
        }
        assert!(
            out.report.sim <= seq.sim,
            "{} vs {}",
            out.report.sim,
            seq.sim
        );
    }

    #[test]
    fn mdx_many_handles_duplicate_expressions() {
        let mut e = engine();
        let t = starshare_mdx::paper_queries::paper_query_text(1);
        let out = e.mdx_many(&[t, t]).unwrap();
        assert_eq!(out.outcomes.len(), 2);
        let a = out.outcomes[0].as_ref().unwrap().results[0]
            .as_ref()
            .unwrap();
        let b = out.outcomes[1].as_ref().unwrap().results[0]
            .as_ref()
            .unwrap();
        assert!(a.approx_eq(b, 1e-12));
    }

    #[test]
    fn mdx_error_paths_are_reported() {
        let mut e = engine();
        assert!(e.mdx("this is not MDX").is_err());
        assert!(e.mdx("{Z1} on COLUMNS CONTEXT ABCD;").is_err());
    }

    #[test]
    fn mdx_many_degrades_per_expression_on_parse_and_bind_errors() {
        // One bad expression must not take the batch down: its slot errs,
        // every other expression still answers (the satellite regression
        // for the old first-error-wins behaviour).
        let mut e = engine();
        let good = starshare_mdx::paper_queries::paper_query_text(1);
        let out = e
            .mdx_many(&[
                good,
                "this is not MDX",
                "{Z9} on COLUMNS CONTEXT ABCD;",
                good,
            ])
            .unwrap();
        assert_eq!(out.outcomes.len(), 4);
        assert_eq!(out.n_failed(), 2);
        assert!(!out.all_ok());
        assert!(matches!(out.outcomes[1], Err(Error::Parse(_))));
        assert!(matches!(out.outcomes[2], Err(Error::Bind(_))));
        let base = e.cube().catalog.base_table().unwrap();
        for i in [0, 3] {
            let oc = out.outcomes[i].as_ref().unwrap();
            assert!(oc.all_ok());
            let r = oc.results[0].as_ref().unwrap();
            let expect = reference_eval(e.cube(), base, &r.query);
            assert!(r.approx_eq(&expect, 1e-9));
        }
    }

    #[test]
    fn all_parse_failures_still_return_per_expression_outcomes() {
        let mut e = engine();
        let out = e.mdx_many(&["nope", "also nope"]).unwrap();
        assert_eq!(out.outcomes.len(), 2);
        assert_eq!(out.n_failed(), 2);
        assert_eq!(out.plan.n_queries(), 0);
    }

    #[test]
    fn degraded_execution_matches_strict_execution_when_nothing_faults() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 4).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        e.flush();
        let strict = e.execute_plan(&plan).unwrap();
        e.flush();
        let degraded = e.execute_plan_degraded(&plan);
        assert_eq!(degraded.results.len(), strict.results.len());
        for (d, s) in degraded.results.iter().zip(&strict.results) {
            assert_eq!(d.as_ref().unwrap().rows, s.rows, "bit-identical");
        }
        assert_eq!(degraded.total.sim, strict.total.sim);
        assert_eq!(degraded.per_class.len(), plan.classes.len());
    }

    #[test]
    fn compressed_engine_is_bit_identical_to_plain() {
        let spec = PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        };
        let mut plain = Engine::paper(spec);
        let mut comp = EngineConfig::paper()
            .compression(true)
            .index_format(IndexFormat::Compressed)
            .build_paper(spec);
        let queries = bind_paper_test(&plain.cube().schema, 4).unwrap();
        let plan_a = plain.optimize(&queries, OptimizerKind::Gg).unwrap();
        let plan_b = comp.optimize(&queries, OptimizerKind::Gg).unwrap();
        let a = plain.execute_plan(&plan_a).unwrap();
        let b = comp.execute_plan(&plan_b).unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.rows, y.rows, "compressed engine must not move a bit");
        }
        // Compressed storage never reads *more* bytes than plain.
        assert!(b.total.io.bytes_scanned() <= a.total.io.bytes_scanned());
    }

    #[test]
    fn threaded_engine_matches_reference_results() {
        let queries = {
            let e = engine();
            bind_paper_test(&e.cube().schema, 4).unwrap()
        };
        let mut par = EngineConfig::paper().threads(4).build_paper(PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        });
        let plan = par.optimize(&queries, OptimizerKind::Gg).unwrap();
        let exec = par.execute_plan(&plan).unwrap();
        let base = par.cube().catalog.base_table().unwrap();
        for r in &exec.results {
            let expect = reference_eval(par.cube(), base, &r.query);
            assert!(r.approx_eq(&expect, 1e-9));
        }
        assert!(exec.total.critical <= exec.total.sim);
        assert_eq!(exec.per_class.len(), plan.classes.len());
    }

    #[test]
    fn execute_plan_threads_is_invariant_in_thread_count() {
        let mut e = engine();
        let queries = bind_paper_test(&e.cube().schema, 1).unwrap();
        let plan = e.optimize(&queries, OptimizerKind::Gg).unwrap();
        let runs: Vec<PlanExecution> = [1, 2, 4]
            .iter()
            .map(|&n| {
                e.flush();
                e.execute_plan_threads(&plan, n).unwrap()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].total.sim, other.total.sim);
            assert_eq!(runs[0].total.critical, other.total.critical);
            for (a, b) in runs[0].results.iter().zip(&other.results) {
                assert_eq!(a.rows, b.rows);
            }
        }
    }

    #[test]
    fn engine_optimizer_is_configurable() {
        let e = EngineConfig::paper()
            .optimizer(OptimizerKind::Tplo)
            .build_paper(PaperCubeSpec {
                base_rows: 500,
                d_leaf: 24,
                seed: 17,
                with_indexes: false,
            });
        assert_eq!(e.optimizer(), OptimizerKind::Tplo);
        let mut e = e;
        e.set_optimizer(OptimizerKind::Gg);
        assert_eq!(e.optimizer(), OptimizerKind::Gg);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use starshare_mdx::paper_queries::paper_query_text;
    use starshare_storage::SimTime;

    fn engine() -> Engine {
        EngineConfig::paper()
            .result_cache(true)
            .build_paper(starshare_olap::PaperCubeSpec {
                base_rows: 2_000,
                d_leaf: 24,
                seed: 50,
                with_indexes: true,
            })
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let mut e = engine();
        let first = e.mdx(paper_query_text(1)).unwrap();
        assert!(first.report.sim > SimTime::ZERO);
        assert_eq!(e.cached_results(), 1);
        e.flush(); // even cold, the cache answers
        let second = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(second.report.sim, SimTime::ZERO, "cache hit must be free");
        assert_eq!(first.result(0).rows, second.result(0).rows);
    }

    #[test]
    fn append_patches_the_cache_in_place() {
        let mut e = engine();
        let before = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(e.cached_results(), 1);
        let out = e.append_facts(&[(vec![0, 0, 0, 0], 1000.0)]).unwrap();
        assert_eq!(out.appended, 1);
        assert_eq!(out.epoch, e.cube().epoch);
        assert_eq!(
            out.cache.patched, 1,
            "the entry must be carried, not dropped"
        );
        assert_eq!(out.cache.invalidations, 0);
        assert!(out.report.sim > SimTime::ZERO, "patch CPU is charged");
        assert_eq!(e.cached_results(), 1);
        // The next probe is an exact hit on the *patched* entry: free on
        // the simulated clock, yet it reflects the appended row — the
        // all-zero key falls inside Q1's slice, so the answer must move.
        let after = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(after.report.sim, SimTime::ZERO, "patched entry must hit");
        assert!(
            (after.result(0).grand_total() - before.result(0).grand_total() - 1000.0).abs() < 1e-6,
            "{} vs {}",
            after.result(0).grand_total(),
            before.result(0).grand_total()
        );
    }

    #[test]
    fn append_drops_the_cache_when_patching_is_off() {
        let mut e = EngineConfig::paper()
            .result_cache(true)
            .cache_patching(false)
            .build_paper(starshare_olap::PaperCubeSpec {
                base_rows: 2_000,
                d_leaf: 24,
                seed: 50,
                with_indexes: true,
            });
        let before = e.mdx(paper_query_text(1)).unwrap();
        let out = e.append_facts(&[(vec![0, 0, 0, 0], 1000.0)]).unwrap();
        assert_eq!(out.cache.invalidations, 1);
        assert_eq!(out.cache.patched, 0);
        assert_eq!(out.report.sim, SimTime::ZERO, "dropping is free");
        assert_eq!(e.cached_results(), 0);
        let after = e.mdx(paper_query_text(1)).unwrap();
        assert!(after.report.sim > SimTime::ZERO, "must re-execute");
        assert!(
            (after.result(0).grand_total() - before.result(0).grand_total() - 1000.0).abs() < 1e-6
        );
    }

    /// The keystone end-to-end property: a patched cache answers exactly
    /// like a cache-less engine over the appended cube, bit for bit.
    #[test]
    fn patched_answers_match_a_cacheless_recompute_bitwise() {
        let spec = starshare_olap::PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 50,
            with_indexes: true,
        };
        // Quantized measures keep patched sums exact (see exec::cache).
        let rows: Vec<(Vec<u32>, f64)> = (0..24u32)
            .map(|i| {
                (
                    vec![i % 24, (i * 3) % 24, (i * 5) % 24, i % 24],
                    (i % 40) as f64 * 0.25,
                )
            })
            .collect();
        let exprs = [paper_query_text(1), paper_query_text(2)];

        let mut cached = EngineConfig::paper().result_cache(true).build_paper(spec);
        let mut plain = EngineConfig::paper().build_paper(spec);
        for expr in exprs {
            cached.mdx(expr).unwrap();
        }
        cached.append_facts(&rows).unwrap();
        plain.append_facts(&rows).unwrap();
        for expr in exprs {
            let warm = cached.mdx(expr).unwrap();
            assert_eq!(warm.report.sim, SimTime::ZERO, "patched entries must hit");
            let direct = plain.mdx(expr).unwrap();
            let (w, d) = (warm.result(0), direct.result(0));
            assert_eq!(w.rows.len(), d.rows.len());
            for ((wk, wv), (dk, dv)) in w.rows.iter().zip(&d.rows) {
                assert_eq!(wk, dk);
                assert_eq!(wv.to_bits(), dv.to_bits(), "patched bits drifted");
            }
        }
    }

    #[test]
    fn fully_cached_window_serves_every_submission_from_memory() {
        let mut e = engine();
        e.mdx_many(&[paper_query_text(1), paper_query_text(2)])
            .unwrap();
        let n = e.cached_results();
        assert!(n > 0);
        let sub_a = [paper_query_text(1)];
        let sub_b = [paper_query_text(2)];
        let w = e
            .mdx_window(
                &[&sub_a[..], &sub_b[..]],
                OptimizerKind::Tplo,
                ExecStrategy::Morsel(MorselSpec::whole_table()),
            )
            .unwrap();
        assert!(w.all_ok());
        assert_eq!(w.report.exec.sim, SimTime::ZERO, "cache hit must be free");
        assert_eq!(w.attributed, vec![SimTime::ZERO; 2]);
        assert_eq!(w.plan.n_queries(), 0);
    }

    /// A coarser query derivable from a cached finer result must be
    /// answered by rollup: cheaper than a scan, charged (not free), and
    /// bit-identical to evaluating it directly.
    #[test]
    fn coarser_query_is_answered_by_subsumption_rollup() {
        // Paper Q1 targets A'B''C''D; this coarser probe targets
        // A''B''C''D with the same predicates, so it is derivable from
        // Q1's cached result.
        let coarser = "{A''.A1} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES \
                       CONTEXT ABCD FILTER (D.DD1);";
        let mut e = engine();
        let fine = e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(e.cache_stats().misses, 1);
        e.flush();
        let warm = e.mdx(coarser).unwrap();
        assert_eq!(
            e.cache_stats().subsumption_hits,
            1,
            "must roll up, not scan"
        );
        assert!(
            warm.report.sim > SimTime::ZERO,
            "a subsumption hit is charged rollup CPU"
        );
        assert!(
            warm.report.sim < fine.report.sim,
            "rollup over cached rows must beat the scan: {} vs {}",
            warm.report.sim,
            fine.report.sim
        );
        // Bit-identical to direct evaluation on a cache-less engine.
        let mut cold = Engine::paper(starshare_olap::PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 50,
            with_indexes: true,
        });
        let direct = cold.mdx(coarser).unwrap();
        assert_eq!(warm.result(0).rows, direct.result(0).rows);
        // The rolled-up answer was admitted: the same probe now exact-hits.
        e.flush();
        let again = e.mdx(coarser).unwrap();
        assert_eq!(again.report.sim, SimTime::ZERO);
        assert_eq!(e.cache_stats().exact_hits, 1);
    }

    #[test]
    fn window_outcome_reports_cache_activity() {
        let mut e = engine();
        let sub = [paper_query_text(1)];
        let strategy = ExecStrategy::Morsel(MorselSpec::whole_table());
        let w1 = e
            .mdx_window(&[&sub[..]], OptimizerKind::Tplo, strategy)
            .unwrap();
        assert_eq!(w1.cache.misses, 1);
        assert_eq!(w1.cache.insertions, 1);
        assert_eq!(w1.cache.hits(), 0);
        let w2 = e
            .mdx_window(&[&sub[..]], OptimizerKind::Tplo, strategy)
            .unwrap();
        assert_eq!(w2.cache.exact_hits, 1);
        assert_eq!(w2.cache.misses, 0);
        assert_eq!(w2.cache.insertions, 0);
    }

    #[test]
    fn eviction_keeps_the_cache_within_the_byte_budget() {
        let budget = 320;
        let mut e = EngineConfig::paper()
            .result_cache(true)
            .cache_bytes(budget)
            .build_paper(starshare_olap::PaperCubeSpec {
                base_rows: 2_000,
                d_leaf: 24,
                seed: 50,
                with_indexes: true,
            });
        for n in 1..=9 {
            e.mdx(paper_query_text(n)).unwrap();
            assert!(
                e.cache_bytes() <= budget,
                "query {n} pushed the cache to {} bytes (budget {budget})",
                e.cache_bytes()
            );
        }
        let stats = e.cache_stats();
        assert!(
            stats.evictions > 0,
            "nine distinct results cannot all fit in {budget} bytes"
        );
        assert!(e.cached_results() < stats.insertions as usize);
    }

    #[test]
    fn cache_disabled_by_default() {
        let mut e = Engine::paper(starshare_olap::PaperCubeSpec {
            base_rows: 500,
            d_leaf: 24,
            seed: 50,
            with_indexes: false,
        });
        e.mdx(paper_query_text(1)).unwrap();
        assert_eq!(e.cached_results(), 0);
        e.flush();
        let again = e.mdx(paper_query_text(1)).unwrap();
        assert!(again.report.sim > SimTime::ZERO);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use starshare_mdx::paper_queries::paper_query_text;

    fn spec() -> PaperCubeSpec {
        PaperCubeSpec {
            base_rows: 5_000,
            d_leaf: 48,
            seed: 17,
            with_indexes: true,
        }
    }

    fn engine() -> Engine {
        Engine::paper(spec())
    }

    fn window_strategy() -> ExecStrategy {
        ExecStrategy::Morsel(MorselSpec::whole_table())
    }

    #[test]
    fn window_routes_every_submission_in_order() {
        let mut e = engine();
        let sub_a = [paper_query_text(1), paper_query_text(2)];
        let sub_b = [paper_query_text(3)];
        let subs: Vec<&[&str]> = vec![&sub_a, &sub_b];
        let w = e
            .mdx_window(&subs, OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert!(w.all_ok());
        assert_eq!(w.submissions.len(), 2);
        assert_eq!(w.submission(0).len(), 2);
        assert_eq!(w.submission(1).len(), 1);
        assert_eq!(w.sharing.n_submissions, 2);
        assert_eq!(w.attributed.len(), 2);
        // Each expression's results come back in its own binding order.
        for sub in &w.submissions {
            for oc in sub.iter().flatten() {
                for (q, r) in oc.bound.queries.iter().zip(&oc.results) {
                    assert_eq!(&r.as_ref().unwrap().query, q);
                }
            }
        }
    }

    #[test]
    fn windowed_results_are_bit_identical_to_solo_runs() {
        // The serving determinism contract: under TPLO + whole-table
        // morsels, a submission's answers do not depend on window-mates.
        let texts = [
            paper_query_text(1),
            paper_query_text(2),
            paper_query_text(3),
        ];
        let mut e = engine();
        let subs: Vec<&[&str]> = texts.iter().map(std::slice::from_ref).collect();
        let windowed = e
            .mdx_window(&subs, OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert!(windowed.all_ok());
        for (si, text) in texts.iter().enumerate() {
            let mut solo_engine = engine();
            let solo = solo_engine
                .mdx_window(
                    &[std::slice::from_ref(text)],
                    OptimizerKind::Tplo,
                    window_strategy(),
                )
                .unwrap();
            let w_oc = windowed.submission(si)[0].as_ref().unwrap();
            let s_oc = solo.submission(0)[0].as_ref().unwrap();
            for (wr, sr) in w_oc.results.iter().zip(&s_oc.results) {
                assert_eq!(
                    wr.as_ref().unwrap().rows,
                    sr.as_ref().unwrap().rows,
                    "submission {si} must be bit-identical alone vs windowed"
                );
            }
            assert_eq!(
                windowed.attributed[si], solo.attributed[0],
                "attributed cost must be co-tenant independent"
            );
        }
    }

    #[test]
    fn duplicate_submissions_share_one_class_and_both_answer() {
        let mut e = engine();
        let t = paper_query_text(1);
        let w = e
            .mdx_window(&[&[t], &[t]], OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert!(w.all_ok());
        // Identical queries merge into one class fed by both submitters.
        assert!(w.sharing.cross_submission_classes >= 1);
        assert!(w.sharing.shared_scan_ratio > 1.0);
        let a = w.submission(0)[0].as_ref().unwrap().result(0);
        let b = w.submission(1)[0].as_ref().unwrap().result(0);
        assert_eq!(a.rows, b.rows);
        assert_eq!(w.attributed[0], w.attributed[1]);
    }

    #[test]
    fn parse_errors_stay_inside_their_submission() {
        let mut e = engine();
        let sub_b = [paper_query_text(2)];
        let subs: Vec<&[&str]> = vec![&["this is not MDX"], &sub_b];
        let w = e
            .mdx_window(&subs, OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert!(matches!(w.submission(0)[0], Err(Error::Parse(_))));
        assert!(w.submission(1)[0].as_ref().unwrap().all_ok());
        assert_eq!(w.attributed[0], SimTime::ZERO);
        assert!(w.attributed[1] > SimTime::ZERO);
    }

    #[test]
    fn empty_window_reports_degenerate_sharing() {
        let mut e = engine();
        let subs: Vec<&[&str]> = vec![&["nope"], &[]];
        let w = e
            .mdx_window(&subs, OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert_eq!(w.sharing.n_classes, 0);
        assert_eq!(w.sharing.shared_scan_ratio, 1.0);
        assert!(matches!(w.submission(0)[0], Err(Error::Parse(_))));
        assert!(w.submission(1).is_empty());
    }

    #[test]
    fn one_submissions_fault_cannot_fail_a_window_mate() {
        // Two submissions of the same query share one class; a fault
        // striking that class triggers the per-owner re-run, so failures
        // (if any) are per submission — and survivors stay bit-identical
        // to the clean run.
        let t = paper_query_text(1);
        let clean_rows = {
            let mut e = engine();
            let w = e
                .mdx_window(&[&[t], &[t]], OptimizerKind::Tplo, window_strategy())
                .unwrap();
            w.submission(0)[0].as_ref().unwrap().result(0).rows.clone()
        };
        let mut faulted_submissions = 0usize;
        for seed in 0..24u64 {
            let mut e = engine();
            e.inject_faults(FaultPlan {
                seed,
                transient: 0.05,
                poison: 0.01,
            });
            let w = e
                .mdx_window(&[&[t], &[t]], OptimizerKind::Tplo, window_strategy())
                .unwrap();
            for si in 0..2 {
                match &w.submission(si)[0].as_ref().unwrap().results[0] {
                    Ok(r) => assert_eq!(
                        r.rows, clean_rows,
                        "seed {seed}: survivor must match the clean run bit-for-bit"
                    ),
                    Err(e) => {
                        assert!(e.is_fault(), "seed {seed}: {e}");
                        faulted_submissions += 1;
                    }
                }
            }
        }
        // The sweep must actually exercise the isolation path.
        assert!(faulted_submissions > 0, "no seed produced a fault");
    }

    #[test]
    fn window_report_envelope_covers_planning_and_execution() {
        let mut e = engine();
        let sub_a = [paper_query_text(1)];
        let sub_b = [paper_query_text(3)];
        let subs: Vec<&[&str]> = vec![&sub_a, &sub_b];
        let w = e
            .mdx_window(&subs, OptimizerKind::Tplo, window_strategy())
            .unwrap();
        assert_eq!(w.report.n_submissions, 2);
        assert_eq!(w.report.n_queries, w.sharing.n_queries);
        assert_eq!(w.report.n_classes, w.plan.classes.len());
        assert!(w.report.wall >= w.report.plan_wall);
        assert!(w.report.busy() >= w.report.plan_wall);
        assert!(w.report.exec.sim > SimTime::ZERO);
    }
}
