//! The engine's typed error.
//!
//! Every fallible [`Engine`](crate::Engine) method returns [`Error`], one
//! variant per pipeline stage, wrapping that stage's own error type with
//! full [`std::error::Error::source`] chaining — so callers can match on
//! *where* a request failed (parse vs bind vs optimize vs execute vs
//! storage) without string inspection, while `{}` still renders the whole
//! story.

use std::fmt;

use starshare_exec::ExecError;
use starshare_mdx::{BindError, ParseError};
use starshare_olap::OlapError;
use starshare_opt::OptError;
use starshare_storage::FaultError;

/// Why the serving layer refused a submission (see
/// [`Error::Overloaded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// The server's bounded submission queue was full; `depth` is its
    /// capacity.
    Queue {
        /// The queue's capacity.
        depth: usize,
    },
    /// The submitting tenant already has `budget` submissions in flight.
    Tenant {
        /// The tenant's in-flight budget.
        budget: usize,
    },
}

impl fmt::Display for Overload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Overload::Queue { depth } => {
                write!(f, "submission queue full ({depth} deep)")
            }
            Overload::Tenant { budget } => {
                write!(f, "tenant in-flight budget exhausted ({budget} allowed)")
            }
        }
    }
}

/// An error from any stage of the engine's pipeline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Error {
    /// The MDX text failed to parse.
    Parse(ParseError),
    /// The parsed expression failed to bind against the schema.
    Bind(BindError),
    /// Plan search failed (typically: a query no stored table answers).
    Optimize(OptError),
    /// Physical execution failed for a plan-level reason.
    Exec(ExecError),
    /// A page read failed past the executor's bounded retry (an injected or
    /// real storage fault). Queries failing this way degrade individually
    /// in [`mdx_many`](crate::Engine::mdx_many) — the rest of the batch
    /// still answers.
    Fault(FaultError),
    /// The storage/data-model layer rejected an operation (e.g. an
    /// out-of-range key in [`append_facts`](crate::Engine::append_facts)).
    Storage(OlapError),
    /// The serving layer refused admission: the bounded submission queue or
    /// the tenant's in-flight budget is full (`starshare-serve`). The
    /// submission was not enqueued — retry after draining in-flight work.
    Overloaded(Overload),
    /// The serving layer has shut down; no further submissions are
    /// accepted and no pending reply will arrive.
    Closed,
}

impl Error {
    /// The underlying storage fault, if this is one.
    pub fn fault(&self) -> Option<&FaultError> {
        match self {
            Error::Fault(e) => Some(e),
            _ => None,
        }
    }

    /// True for unrecovered storage faults.
    pub fn is_fault(&self) -> bool {
        matches!(self, Error::Fault(_))
    }

    /// True when the serving layer refused admission
    /// ([`Error::Overloaded`]) — the caller should back off and retry.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, Error::Overloaded(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Bind(e) => write!(f, "bind error: {e}"),
            Error::Optimize(e) => write!(f, "optimize error: {e}"),
            Error::Exec(e) => write!(f, "execution error: {e}"),
            Error::Fault(e) => write!(f, "storage fault: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Overloaded(o) => write!(f, "overloaded: {o}"),
            Error::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Bind(e) => Some(e),
            Error::Optimize(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Overloaded(_) | Error::Closed => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<BindError> for Error {
    fn from(e: BindError) -> Self {
        Error::Bind(e)
    }
}

impl From<OptError> for Error {
    fn from(e: OptError) -> Self {
        Error::Optimize(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::Fault(f) => Error::Fault(f),
            other => Error::Exec(other),
        }
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Self {
        Error::Fault(e)
    }
}

impl From<OlapError> for Error {
    fn from(e: OlapError) -> Self {
        Error::Storage(e)
    }
}

/// Shorthand for engine results.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_names_the_stage_and_chains_the_source() {
        let e = Error::from(OptError::new("no table can answer Q"));
        assert_eq!(e.to_string(), "optimize error: no table can answer Q");
        let src = e.source().expect("chained");
        assert_eq!(src.to_string(), "no table can answer Q");
        assert!(matches!(e, Error::Optimize(_)));
    }

    #[test]
    fn every_variant_converts_from_its_stage_error() {
        assert!(matches!(Error::from(ExecError::new("x")), Error::Exec(_)));
        assert!(matches!(
            Error::from(OlapError::new("x")),
            Error::Storage(_)
        ));
    }

    #[test]
    fn exec_faults_route_to_the_fault_variant() {
        use starshare_storage::{FaultKind, FileId};
        let f = FaultError {
            file: FileId(1),
            page: 2,
            kind: FaultKind::TransientRead,
            access_no: 3,
        };
        let e = Error::from(ExecError::from(f));
        assert!(e.is_fault());
        assert_eq!(e.fault(), Some(&f));
        assert!(e.to_string().starts_with("storage fault:"), "{e}");
        // Plan-level exec errors keep the Exec variant.
        assert!(!Error::from(ExecError::new("bad plan")).is_fault());
    }

    #[test]
    fn overload_names_the_limit_that_tripped() {
        let q = Error::Overloaded(Overload::Queue { depth: 8 });
        assert!(q.is_overloaded());
        assert_eq!(q.to_string(), "overloaded: submission queue full (8 deep)");
        let t = Error::Overloaded(Overload::Tenant { budget: 2 });
        assert!(
            t.to_string().contains("budget exhausted (2 allowed)"),
            "{t}"
        );
        assert!(q.source().is_none());
        assert!(!Error::Closed.is_overloaded());
        assert_eq!(Error::Closed.to_string(), "server closed");
    }
}
