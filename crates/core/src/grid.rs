//! Pivot-grid rendering: the axis-shaped result surface MDX clients
//! display.
//!
//! The engine's [`QueryResult`]s are flat `(group key, value)` lists — one
//! per group-by query of the expansion. An MDX client, though, shows *one
//! grid*: COLUMNS positions across, ROWS positions down, one grid per
//! PAGES position, with every cell filled from whichever query of the
//! expansion owns that cell's level combination (the §2 example's 6
//! queries jointly fill a single 8-column display). [`pivot`] reassembles
//! that surface.

use std::collections::HashMap;

use starshare_exec::QueryResult;
use starshare_mdx::{Axis, BoundMdx};
use starshare_olap::{DimId, LevelRef, StarSchema};

/// One member coordinate: `(dimension, level, member)`.
pub type AxisPosition = (DimId, u8, u32);

/// One axis position: a tuple of member coordinates (NEST axes carry one
/// coordinate per nested dimension).
pub type AxisTuple = Vec<AxisPosition>;

/// An assembled pivot grid (one per PAGES position; a single unnamed page
/// when the expression has no PAGES axis).
#[derive(Debug, Clone)]
pub struct PivotPage {
    /// The PAGES position this grid belongs to, if any.
    pub page: Option<AxisTuple>,
    /// Column positions, display order.
    pub columns: Vec<AxisTuple>,
    /// Row positions, display order (one pseudo-row if no ROWS axis).
    pub rows: Vec<AxisTuple>,
    /// `cells[r][c]`: the aggregated value, `None` where no data exists.
    pub cells: Vec<Vec<Option<f64>>>,
}

/// The full pivot surface of one MDX outcome.
#[derive(Debug, Clone)]
pub struct PivotGrid {
    /// One grid per PAGES position.
    pub pages: Vec<PivotPage>,
}

/// Assembles the pivot surface from a bound expression and its results
/// (`results[i]` must answer `bound.queries[i]`, the order
/// [`Outcome::results`](crate::Outcome::results) yields after a strict
/// [`Engine::mdx`](crate::Engine::mdx) call).
///
/// Returns `None` if the expression has no COLUMNS axis (nothing to pivot).
pub fn pivot(
    _schema: &StarSchema,
    bound: &BoundMdx,
    results: &[&QueryResult],
) -> Option<PivotGrid> {
    let columns = axis_positions(bound, Axis::Columns)?;
    let rows = axis_positions(bound, Axis::Rows).unwrap_or_default();
    let pages = axis_positions(bound, Axis::Pages);

    // Index every result row: (sorted per-dim (dim, level, member) of the
    // grouped dims) → value.
    let mut lookup: HashMap<Vec<AxisPosition>, f64> = HashMap::new();
    for (q, &r) in bound.queries.iter().zip(results) {
        let grouped: Vec<(DimId, u8)> = q
            .group_by
            .levels()
            .iter()
            .enumerate()
            .filter_map(|(d, lr)| match lr {
                LevelRef::Level(l) => Some((d, *l)),
                LevelRef::All => None,
            })
            .collect();
        for (key, v) in &r.rows {
            let cell_key: Vec<AxisPosition> = grouped
                .iter()
                .zip(key)
                .map(|(&(d, l), &m)| (d, l, m))
                .collect();
            lookup.insert(cell_key, *v);
        }
    }

    // Slicer dims appear in every query's group key (they are grouped at
    // leaf level); the display sums them out — so instead of summing here,
    // note that slicer dims contribute *multiple* leaf rows per cell.
    // Aggregate the lookup down to axis dims only.
    let axis_dims: Vec<DimId> = {
        let mut ds: Vec<DimId> = bound
            .axes
            .iter()
            .flat_map(|a| a.positions.iter().flatten().map(|&(d, _, _)| d))
            .collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    };
    let mut cell_values: HashMap<Vec<AxisPosition>, f64> = HashMap::new();
    for (key, v) in &lookup {
        let display_key: Vec<AxisPosition> = key
            .iter()
            .filter(|&&(d, _, _)| axis_dims.contains(&d))
            .copied()
            .collect();
        *cell_values.entry(display_key).or_insert(0.0) += v;
    }

    let cell = |mut parts: Vec<AxisPosition>| -> Option<f64> {
        parts.sort_unstable_by_key(|&(d, _, _)| d);
        cell_values.get(&parts).copied()
    };

    let page_list: Vec<Option<AxisTuple>> = match pages {
        Some(ps) => ps.into_iter().map(Some).collect(),
        None => vec![None],
    };
    let mut out = Vec::new();
    for page in page_list {
        let row_list: Vec<Option<AxisTuple>> = if rows.is_empty() {
            vec![None]
        } else {
            rows.iter().cloned().map(Some).collect()
        };
        let mut cells = Vec::with_capacity(row_list.len());
        for r in &row_list {
            let mut row_cells = Vec::with_capacity(columns.len());
            for c in &columns {
                let mut parts = c.clone();
                if let Some(r) = r {
                    parts.extend(r.iter().copied());
                }
                if let Some(p) = &page {
                    parts.extend(p.iter().copied());
                }
                row_cells.push(cell(parts));
            }
            cells.push(row_cells);
        }
        out.push(PivotPage {
            page: page.clone(),
            columns: columns.clone(),
            rows: rows.clone(),
            cells,
        });
    }
    Some(PivotGrid { pages: out })
}

fn axis_positions(bound: &BoundMdx, which: Axis) -> Option<Vec<AxisTuple>> {
    bound
        .axes
        .iter()
        .find(|a| a.axis == which)
        .map(|a| a.positions.clone())
}

/// Renders a pivot grid as text tables with member names.
pub fn render_pivot(schema: &StarSchema, grid: &PivotGrid) -> String {
    use std::fmt::Write as _;
    let name = |t: &AxisTuple| {
        t.iter()
            .map(|p| schema.dim(p.0).member_name(p.1, p.2))
            .collect::<Vec<_>>()
            .join("·")
    };
    let mut out = String::new();
    for page in &grid.pages {
        if let Some(p) = &page.page {
            let _ = writeln!(out, "== page: {} ==", name(p));
        }
        // Header.
        let col_names: Vec<String> = page.columns.iter().map(&name).collect();
        let width = col_names.iter().map(|s| s.len()).max().unwrap_or(6).max(9);
        let row_width = page
            .rows
            .iter()
            .map(|r| name(r).len())
            .max()
            .unwrap_or(0)
            .max(4);
        let _ = write!(out, "{:row_width$}", "");
        for c in &col_names {
            let _ = write!(out, " {c:>width$}");
        }
        let _ = writeln!(out);
        for (ri, row_cells) in page.cells.iter().enumerate() {
            let label = page.rows.get(ri).map(&name).unwrap_or_default();
            let _ = write!(out, "{label:row_width$}");
            for v in row_cells {
                match v {
                    Some(v) => {
                        let _ = write!(out, " {v:>width$.2}");
                    }
                    None => {
                        let _ = write!(out, " {:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use starshare_olap::PaperCubeSpec;

    fn engine() -> Engine {
        Engine::paper(PaperCubeSpec {
            base_rows: 4_000,
            d_leaf: 48, // D' fan-out 2, so slicer cells sum >1 leaf group
            seed: 8,
            with_indexes: false,
        })
    }

    #[test]
    fn single_level_grid_matches_flat_results() {
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1, A''.A2, A''.A3} on COLUMNS {B''.B1, B''.B2} on ROWS \
                 CONTEXT ABCD;",
            )
            .unwrap();
        let schema = e.cube().schema.clone();
        let grid = pivot(&schema, &out.expr(0).bound, &out.results()).unwrap();
        assert_eq!(grid.pages.len(), 1);
        let page = &grid.pages[0];
        assert_eq!(page.columns.len(), 3);
        assert_eq!(page.rows.len(), 2);
        // Every cell sums the flat result rows for that (A'', B'') pair.
        let q = &out.expr(0).bound.queries[0];
        assert_eq!(out.expr(0).bound.queries.len(), 1);
        for (ri, row) in page.cells.iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                let a = page.columns[ci][0].2;
                let b = page.rows[ri][0].2;
                let expect: f64 = out
                    .result(0)
                    .rows
                    .iter()
                    .filter(|(k, _)| k[0] == a && k[1] == b)
                    .map(|(_, m)| m)
                    .sum();
                let _ = q;
                if expect == 0.0 {
                    // Either truly zero or absent; both render as a value
                    // or a dash — only assert on present cells.
                    continue;
                }
                assert!(
                    (v.unwrap_or(f64::NAN) - expect).abs() < 1e-9 * expect.abs(),
                    "cell ({ri},{ci})"
                );
            }
        }
        // Grid totals equal the flat grand total.
        let grid_total: f64 = page.cells.iter().flatten().filter_map(|v| *v).sum();
        assert!(
            (grid_total - out.result(0).grand_total()).abs() < 1e-6,
            "{grid_total}"
        );
    }

    #[test]
    fn mixed_level_grid_fills_from_multiple_queries() {
        // The §2 situation: one axis mixes levels, so different columns are
        // answered by different queries, all shown in one grid.
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1, A''.A2.CHILDREN} on COLUMNS {B''.B1} on ROWS \
                 CONTEXT ABCD;",
            )
            .unwrap();
        assert_eq!(out.expr(0).bound.queries.len(), 2);
        let schema = e.cube().schema.clone();
        let grid = pivot(&schema, &out.expr(0).bound, &out.results()).unwrap();
        let page = &grid.pages[0];
        // Columns: A1 (top level) + AA3, AA4 (children of A2).
        assert_eq!(page.columns.len(), 3);
        assert_eq!(page.columns[0][0].1, 2, "first column at top level");
        assert_eq!(page.columns[1][0].1, 1, "children at mid level");
        // All three cells are populated (4000 rows cover everything).
        for v in &page.cells[0] {
            assert!(v.is_some());
        }
        // The A1 cell equals AA1+AA2 would equal... check consistency:
        // A1's value must exceed any single child's value on average data.
        let rendered = render_pivot(&schema, &grid);
        assert!(rendered.contains("A1"), "{rendered}");
        assert!(rendered.contains("AA3"), "{rendered}");
    }

    #[test]
    fn pages_axis_produces_one_grid_per_member() {
        let mut e = engine();
        let out = e
            .mdx(
                "{A''.A1} on COLUMNS {B''.B1} on ROWS {C''.C1, C''.C2} on PAGES \
                 CONTEXT ABCD;",
            )
            .unwrap();
        let schema = e.cube().schema.clone();
        let grid = pivot(&schema, &out.expr(0).bound, &out.results()).unwrap();
        assert_eq!(grid.pages.len(), 2);
        assert!(grid.pages[0].page.is_some());
        let rendered = render_pivot(&schema, &grid);
        assert!(rendered.contains("== page: C1 =="), "{rendered}");
        assert!(rendered.contains("== page: C2 =="), "{rendered}");
    }

    #[test]
    fn slicer_dims_are_summed_out_of_the_display() {
        // FILTER(D.DD1) keeps D in the group-by at leaf level; the grid
        // must sum the D leaves away.
        let mut e = engine();
        let out = e
            .mdx("{A''.A1} on COLUMNS CONTEXT ABCD FILTER (D.DD1);")
            .unwrap();
        let schema = e.cube().schema.clone();
        let grid = pivot(&schema, &out.expr(0).bound, &out.results()).unwrap();
        let cell = grid.pages[0].cells[0][0].unwrap();
        assert!(
            (cell - out.result(0).grand_total()).abs() < 1e-9,
            "cell must be the D-summed total"
        );
        // And the flat result has multiple D rows that the cell collapsed.
        assert!(out.result(0).n_groups() > 1);
    }
}
