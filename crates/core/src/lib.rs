//! # starshare-core
//!
//! The engine facade: one type, [`Engine`], that ties the stack together —
//! storage and buffer pool, bitmap indexes, star-schema catalog, MDX
//! parsing/binding, multiple-query optimization, and shared-operator
//! execution.
//!
//! ```
//! use starshare_core::{Engine, OptimizerKind, PaperCubeSpec};
//!
//! // A small instance of the paper's test database.
//! let mut engine = Engine::paper(PaperCubeSpec::scaled(0.002));
//! let outcome = engine
//!     .mdx("{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES \
//!           CONTEXT ABCD FILTER (D.DD1);")
//!     .unwrap();
//! assert_eq!(outcome.results().len(), 1);
//! println!("{}", outcome.plan.explain(engine.cube()));
//! ```
//!
//! Everything the sub-crates export is re-exported here, so depending on
//! `starshare-core` (or the top-level `starshare` crate) gives the whole
//! public API. Concurrent multi-session serving over this facade lives in
//! `starshare-serve` (re-exported from the top-level `starshare` crate).

pub mod engine;
pub mod error;
pub mod grid;

pub use engine::{
    AppendOutcome, DegradedExecution, Engine, EngineConfig, ExprOutcome, Outcome, PlanExecution,
    WindowConfig, WindowOutcome,
};
pub use error::{Error, Overload, Result};
pub use grid::{pivot, render_pivot, PivotGrid, PivotPage};

pub use starshare_bitmap::{
    Bitmap, BitmapJoinIndex, CompressedBitmap, IndexFormat, MemberBits, RleBitmap,
};
pub use starshare_exec::{
    execute_classes, execute_classes_with, hash_star_join, index_star_join, reference_eval,
    result_bytes, shared_hybrid_join, shared_index_join, shared_scan_hash_join, AggKernel,
    CacheHit, CacheStats, ClassOutcome, ClassSpec, DimPipeline, ExecContext, ExecError, ExecReport,
    ExecStrategy, GroupAcc, KernelTier, MetricsRegistry, MetricsSnapshot, MorselSpec, Provenance,
    QueryProfile, QueryResult, ResultCache, Telemetry, TelemetryConfig, WindowReport, WindowTimer,
    DEFAULT_MORSEL_PAGES, DENSE_MAX_GROUPS,
};
pub use starshare_mdx::{
    bind, generate_mdx, paper_queries, parse, Axis, AxisSpec, BindError, BoundAxis, BoundMdx,
    MdxExpr, MemberExpr, ParseError, PathSeg,
};
pub use starshare_olap::{
    append_facts, combine_mode, estimate, lattice_nodes, load_cube, materialize, materialize_agg,
    paper_cube, paper_schema, recommend_views, save_cube, AdvisorConfig, AggFn, AggState, Catalog,
    CombineMode, Cube, CubeBuilder, DimId, Dimension, GroupBy, GroupByQuery, LevelDef, LevelRef,
    MeasureKind, MemberPred, OlapError, PaperCubeSpec, Recommendation, StarSchema, StoredTable,
    TableId,
};
pub use starshare_opt::{
    etplg, explain_tree, explain_tree_with_costs, gg, ggi, ggi_with_passes, optimal, plan_window,
    tplo, CostModel, GlobalPlan, JoinMethod, OptError, OptimizerKind, PlanClass, QueryPlan,
    SharingStats, WindowPlan,
};
pub use starshare_storage::{
    AccessKind, BufferPool, CpuCounters, FaultError, FaultInjector, FaultKind, FaultPlan,
    FaultStats, FileId, HardwareModel, HeapFile, IoStats, ScanBatch, SimTime, TupleLayout,
    PAGE_SIZE,
};
