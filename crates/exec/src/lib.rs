//! # starshare-exec
//!
//! Physical query evaluation for the `starshare` engine: the two classic
//! star-join methods and the paper's three *shared* operators (§3).
//!
//! | paper operator | entry point |
//! |---|---|
//! | hash-based star join (Fig. 1) | [`hash_star_join`] |
//! | bitmap index-based star join (Fig. 3) | [`index_star_join`] |
//! | shared scan hash-based star join (§3.1, Fig. 2) | [`shared_scan_hash_join`] |
//! | shared index join (§3.2, Fig. 4) | [`shared_index_join`] |
//! | shared scan for hash + index plans (§3.3, Fig. 5) | [`shared_hybrid_join`] |
//!
//! Every operator does the real work (real tuples, real bitmaps, real hash
//! aggregation) through an [`ExecContext`] whose buffer pool and CPU
//! counters feed the simulated clock. Results are exact; times are the
//! deterministic 1998-calibrated simulation plus measured wall time.
//!
//! The [`parallel`] module runs whole *sets* of classes on worker threads,
//! carving each base-table pass into work-stealing morsels (see the
//! [`morsel`] module), without perturbing the simulated clock (see its
//! docs for the determinism contract).

pub mod cache;
pub mod context;
pub mod error;
pub mod kernel;
pub mod morsel;
pub mod operators;
pub mod parallel;
pub mod plan_io;
pub mod prune;
pub mod reference;
pub mod result;
pub mod retry;
pub mod rollup;
pub mod window;

pub use cache::{result_bytes, CacheHit, CacheStats, ResultCache};
pub use context::{ExecContext, ExecReport};
pub use error::ExecError;
pub use kernel::{AggKernel, GroupAcc, KernelTier, DENSE_MAX_GROUPS};
pub use operators::{
    hash_star_join, index_star_join, shared_hybrid_join, shared_index_join, shared_scan_hash_join,
};
pub use parallel::{
    execute_classes, execute_classes_with, ClassOutcome, ClassSpec, ExecStrategy, MorselSpec,
    DEFAULT_MORSEL_PAGES,
};
pub use reference::reference_eval;
pub use result::QueryResult;
pub use retry::{with_retry, MAX_READ_RETRIES};
pub use rollup::DimPipeline;
pub use starshare_obs::{
    MetricsRegistry, MetricsSnapshot, Provenance, QueryProfile, Telemetry, TelemetryConfig,
};
pub use window::{WindowReport, WindowTimer};
