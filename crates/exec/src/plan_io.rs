//! Index-side bitmap construction for index-based star joins.
//!
//! This is the paper's §3.2 "build the join bitmap" phase: for every
//! predicated dimension that has a usable bitmap join index, retrieve the
//! member bitmaps (charging index page reads), OR them into a per-dimension
//! bitmap, and AND the per-dimension bitmaps into the query's result
//! bitmap. Predicates on dimensions *without* a usable index are left as
//! residual predicates, reported through
//! [`QueryBitmap::covered_mask`].

use starshare_bitmap::Bitmap;
use starshare_olap::{GroupByQuery, MemberPred, StarSchema, StoredTable};
use starshare_storage::{BufferPool, CpuCounters};

use crate::error::ExecError;
use crate::retry::with_retry;

/// The index-derived filter for one query on one table.
#[derive(Debug, Clone)]
pub struct QueryBitmap {
    /// Positions that may satisfy the indexed predicates; `None` when no
    /// predicate could be served from an index (every row is a candidate).
    pub bitmap: Option<Bitmap>,
    /// Bit `d` set iff dimension `d`'s predicate is fully guaranteed by
    /// `bitmap` (no residual evaluation needed for it).
    pub covered_mask: u64,
}

impl QueryBitmap {
    /// Whether `pos` may qualify.
    pub fn may_match(&self, pos: u64) -> bool {
        self.bitmap.as_ref().is_none_or(|b| b.get(pos))
    }

    /// Candidate count (`None` = all rows).
    pub fn candidates(&self) -> Option<u64> {
        self.bitmap.as_ref().map(|b| b.count_ones())
    }
}

/// Builds the result bitmap for `query` over `table`, charging index page
/// reads to `pool` and bitmap CPU to `cpu`.
///
/// Index page reads go through the pool's fault-checked path with bounded
/// retry; an unrecovered fault surfaces as [`ExecError::Fault`].
pub fn build_query_bitmap(
    schema: &StarSchema,
    table: &StoredTable,
    query: &GroupByQuery,
    pool: &mut BufferPool,
    cpu: &mut CpuCounters,
) -> Result<QueryBitmap, ExecError> {
    let n_rows = table.n_rows();
    let mut total: Option<Bitmap> = None;
    let mut covered_mask = 0u64;
    for (d, pred) in query.preds.iter().enumerate() {
        let MemberPred::In { level, .. } = pred else {
            continue;
        };
        let Some(dim_index) = table.index(d) else {
            continue;
        };
        if !dim_index.serves_level(*level) {
            continue;
        }
        // Expand the predicate's members down to the index's level and OR
        // their bitmaps.
        let members = pred
            .expand_to_level(schema, d, dim_index.level)
            .ok_or_else(|| {
                ExecError::new(format!(
                    "predicate on dim {d} cannot expand to index level {}",
                    dim_index.level
                ))
            })?;
        let mut dim_bitmap = Bitmap::new(n_rows);
        for m in members {
            cpu.index_lookups += 1;
            if let Some(bits) = with_retry(|| dim_index.index.try_lookup(m, pool))? {
                cpu.bitmap_words += bits.or_into(&mut dim_bitmap);
            }
        }
        // AND into the running result.
        match total.as_mut() {
            Some(t) => {
                cpu.bitmap_words += t.and_assign(&dim_bitmap);
            }
            None => total = Some(dim_bitmap),
        }
        covered_mask |= 1 << d;
    }
    Ok(QueryBitmap {
        bitmap: total,
        covered_mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{paper_cube, GroupBy, GroupByQuery, PaperCubeSpec};
    use starshare_storage::HardwareModel;

    fn cube() -> starshare_olap::Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 3_000,
            d_leaf: 24,
            seed: 11,
            with_indexes: true,
        })
    }

    #[test]
    fn bitmap_matches_brute_force() {
        let cube = cube();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let t = cube.catalog.table(tid);
        // Pred: A'' = A1 (index at A' serves it), C' = CC2.
        let q = GroupByQuery::new(
            cube.groupby("A''B''C''D''"),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::eq(1, 1),
                MemberPred::All,
            ],
        );
        let mut pool = BufferPool::for_model(&HardwareModel::paper_1998());
        let mut cpu = CpuCounters::default();
        let qb = build_query_bitmap(&cube.schema, t, &q, &mut pool, &mut cpu).unwrap();
        assert_eq!(qb.covered_mask, 0b0101);
        let bm = qb.bitmap.as_ref().unwrap();
        let mut keys = vec![0u32; 4];
        for pos in 0..t.n_rows() {
            t.heap().read_at(pos, &mut keys);
            let expect = cube.schema.dim(0).roll_up(keys[0], 1, 2) == 0 && keys[2] == 1;
            assert_eq!(bm.get(pos), expect, "pos {pos}");
        }
        assert!(cpu.index_lookups > 0);
        assert!(cpu.bitmap_words > 0);
        assert!(pool.stats().accesses() > 0, "index reads must be charged");
    }

    #[test]
    fn may_match_is_exact_at_heap_page_boundaries() {
        // The scan operators consult `may_match` per row position while the
        // heap hands out rows page by page; the positions most likely to
        // expose an off-by-one are the last row of each page and the first
        // row of the next. Check those against brute-force evaluation.
        let cube = cube();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let t = cube.catalog.table(tid);
        let q = GroupByQuery::new(
            cube.groupby("A''B''C''D''"),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::eq(1, 1),
                MemberPred::All,
            ],
        );
        let mut pool = BufferPool::for_model(&HardwareModel::paper_1998());
        let mut cpu = CpuCounters::default();
        let qb = build_query_bitmap(&cube.schema, t, &q, &mut pool, &mut cpu).unwrap();

        let per_page = t.heap().layout().tuples_per_page() as u64;
        let n = t.n_rows();
        let mut keys = vec![0u32; 4];
        let mut boundary_positions: Vec<u64> = vec![0, n - 1];
        let mut edge = per_page;
        while edge < n {
            boundary_positions.push(edge - 1); // last row of a page
            boundary_positions.push(edge); // first row of the next
            edge += per_page;
        }
        assert!(
            boundary_positions.len() > 4,
            "cube too small to cross a page boundary (per_page {per_page}, rows {n})"
        );
        for &pos in &boundary_positions {
            t.heap().read_at(pos, &mut keys);
            let expect = cube.schema.dim(0).roll_up(keys[0], 1, 2) == 0 && keys[2] == 1;
            assert_eq!(qb.may_match(pos), expect, "pos {pos} (per_page {per_page})");
        }
    }

    #[test]
    fn unindexed_pred_is_left_residual() {
        let cube = cube();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let t = cube.catalog.table(tid);
        // D predicate at leaf level D: index is at D' → not servable.
        let q = GroupByQuery::new(
            GroupBy::finest(4),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::eq(0, 3),
            ],
        );
        let mut pool = BufferPool::for_model(&HardwareModel::paper_1998());
        let mut cpu = CpuCounters::default();
        let qb = build_query_bitmap(&cube.schema, t, &q, &mut pool, &mut cpu).unwrap();
        assert_eq!(qb.covered_mask, 0b0001, "only A covered");
        assert!(qb.bitmap.is_some());
    }

    #[test]
    fn no_indexed_preds_means_no_bitmap() {
        let cube = cube();
        let tid = cube.catalog.find_by_name("A''B''C''D").unwrap();
        let t = cube.catalog.table(tid);
        // This view has no indexes at all.
        let q = GroupByQuery::new(
            cube.groupby("A''B''C''D"),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let mut pool = BufferPool::for_model(&HardwareModel::paper_1998());
        let mut cpu = CpuCounters::default();
        let qb = build_query_bitmap(&cube.schema, t, &q, &mut pool, &mut cpu).unwrap();
        assert!(qb.bitmap.is_none());
        assert_eq!(qb.covered_mask, 0);
        assert!(qb.may_match(0));
        assert_eq!(qb.candidates(), None);
    }
}
