//! Bounded retry over fault-checked storage reads.
//!
//! The executor's answer to a transient read error is the classic one:
//! retry the read, a bounded number of times, then give up and report a
//! typed error for the affected queries. The storage layer guarantees a
//! denied access charges nothing ([`starshare_storage::fault`]), so a
//! retried-then-successful read leaves the simulated clock and the buffer
//! pool exactly as a fault-free run would — which is what lets the
//! differential harness assert bit-identical results between a faulted run
//! and its fault-free twin for every query that survives.
//!
//! Poisoned pages fail immediately: the fault is permanent by definition,
//! so burning retries on it would only inflate the schedule.

use starshare_storage::{FaultError, FaultKind};

use crate::error::ExecError;

/// Read attempts after the first (so a transient fault gets
/// `1 + MAX_READ_RETRIES` chances before surfacing as an error).
pub const MAX_READ_RETRIES: u32 = 3;

/// Runs `read` until it succeeds or the retry budget is spent.
///
/// * `Ok` → passed through.
/// * [`FaultKind::TransientRead`] → retried up to [`MAX_READ_RETRIES`]
///   times, then surfaced as [`ExecError::Fault`].
/// * [`FaultKind::PoisonedPage`] → surfaced immediately (permanent).
pub fn with_retry<T>(mut read: impl FnMut() -> Result<T, FaultError>) -> Result<T, ExecError> {
    let mut last: FaultError;
    let mut attempts = 0;
    loop {
        match read() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = e;
                if e.kind == FaultKind::PoisonedPage || attempts >= MAX_READ_RETRIES {
                    return Err(ExecError::Fault(last));
                }
                attempts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_storage::FileId;

    fn fault(kind: FaultKind) -> FaultError {
        FaultError {
            file: FileId(0),
            page: 0,
            kind,
            access_no: 0,
        }
    }

    #[test]
    fn success_passes_through_untouched() {
        let mut calls = 0;
        let r: Result<u32, _> = with_retry(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let mut calls = 0;
        let r = with_retry(|| {
            calls += 1;
            if calls < 3 {
                Err(fault(FaultKind::TransientRead))
            } else {
                Ok("made it")
            }
        });
        assert_eq!(r.unwrap(), "made it");
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut calls = 0;
        let r: Result<(), _> = with_retry(|| {
            calls += 1;
            Err(fault(FaultKind::TransientRead))
        });
        assert_eq!(calls, 1 + MAX_READ_RETRIES);
        assert!(r.unwrap_err().is_fault());
    }

    #[test]
    fn poisoned_pages_fail_fast() {
        let mut calls = 0;
        let r: Result<(), _> = with_retry(|| {
            calls += 1;
            Err(fault(FaultKind::PoisonedPage))
        });
        assert_eq!(calls, 1, "permanent faults must not burn retries");
        let e = r.unwrap_err();
        assert_eq!(e.fault().unwrap().kind, FaultKind::PoisonedPage);
    }
}
