//! Morsel boundaries and the work-stealing scheduler.
//!
//! A *morsel* is a small page-aligned tuple range — the unit of work the
//! parallel executor hands to worker threads. Boundaries are computed
//! **deterministically from data** before any thread runs:
//!
//! * scan classes carve the heap into fixed-size page chunks
//!   ([`scan_morsels`]);
//! * probe classes balance by *candidate count* instead — a greedy
//!   page-walk over the OR'd candidate bitmap closes a morsel whenever it
//!   has accumulated its fair share of set bits ([`probe_morsels`]) — so a
//!   skewed bitmap no longer leaves one range with all the probes;
//! * page alignment keeps morsels on disjoint pages, so private fault
//!   counts sum to exactly what one sequential pass would fault, no matter
//!   how the table is carved.
//!
//! Dispatch is classic work-stealing: unit `i` is seeded into worker
//! `i % threads`' deque; a worker pops its own deque from the front and,
//! when empty, steals from the *back* of a victim's. Stealing only decides
//! *which thread* runs a unit and *when* — each unit writes into its own
//! pre-assigned slot, so nothing observable depends on the schedule.

use std::collections::VecDeque;
use std::sync::Mutex;

use starshare_bitmap::Bitmap;
use starshare_storage::HeapFile;

/// Default pages per scan morsel. Small enough that a skewed class splits
/// into many units (good load balance), big enough that per-morsel
/// overheads stay in the noise. The binding overhead is not the pool
/// snapshot but the partial accumulators: every morsel allocates one
/// accumulator per query and hands it to the merge tree, so with
/// high-cardinality group-bys (dense arrays near the tier cap, packed
/// hash tables where most tuples open a fresh group) each extra morsel
/// re-merges nearly every group it saw. 128 pages keeps that re-merge
/// tax under the scan work itself while still cutting a paper-scale
/// (2 M row) base table into ~90 units.
pub const DEFAULT_MORSEL_PAGES: u32 = 128;

/// Probe morsels smaller than this many candidates are not worth their
/// per-morsel overhead; the candidate-balancer caps the morsel count so no
/// morsel targets fewer.
const MIN_PROBE_CANDIDATES_PER_MORSEL: u64 = 32;

/// Morsel sizing knob. Boundaries derived from a spec depend only on the
/// spec and the data — never on thread count or scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselSpec {
    /// Pages per scan morsel, and the page-count cap for probe morsels.
    /// `u32::MAX` yields a single whole-table morsel.
    pub pages: u32,
}

impl Default for MorselSpec {
    fn default() -> Self {
        MorselSpec {
            pages: DEFAULT_MORSEL_PAGES,
        }
    }
}

impl MorselSpec {
    /// A spec with the given pages-per-morsel (clamped to at least 1).
    pub fn with_pages(pages: u32) -> Self {
        MorselSpec {
            pages: pages.max(1),
        }
    }

    /// One morsel spanning the whole table: parallelism degenerates to one
    /// unit per class, which is exactly the sequential work split.
    pub fn whole_table() -> Self {
        MorselSpec { pages: u32::MAX }
    }
}

/// Carves `heap` into contiguous `pages`-page tuple ranges `[lo, hi)`.
/// Deterministic in `(heap, pages)`; empty tables yield no morsels.
pub(crate) fn scan_morsels(heap: &HeapFile, pages: u32) -> Vec<(u64, u64)> {
    let n = heap.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let chunk = (pages.max(1) as u64).saturating_mul(heap.layout().tuples_per_page() as u64);
    let mut out = Vec::with_capacity((n / chunk.max(1) + 1) as usize);
    let mut lo = 0u64;
    while lo < n {
        let hi = lo.saturating_add(chunk).min(n);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Like [`scan_morsels`], but only within the given page-aligned tuple
/// `ranges` (the zone-map survivors from [`crate::prune`]): each range is
/// carved into `pages`-page chunks independently, so morsels never span a
/// pruned gap. Since ranges start on zone boundaries (multiples of the
/// zone's page count), every morsel stays page-aligned.
pub(crate) fn scan_morsels_in_ranges(
    heap: &HeapFile,
    pages: u32,
    ranges: &[(u64, u64)],
) -> Vec<(u64, u64)> {
    let chunk = (pages.max(1) as u64).saturating_mul(heap.layout().tuples_per_page() as u64);
    let mut out = Vec::new();
    for &(start, end) in ranges {
        let mut lo = start;
        while lo < end {
            let hi = lo.saturating_add(chunk).min(end);
            out.push((lo, hi));
            lo = hi;
        }
    }
    out
}

/// Carves `heap` into page-aligned ranges balanced by *candidate count*: a
/// greedy walk accumulates the per-page popcount of `total` and closes a
/// morsel once it holds its proportional share of candidates.
///
/// The morsel count targets one morsel per `pages` pages, but never more
/// than one per [`MIN_PROBE_CANDIDATES_PER_MORSEL`] candidates — a sparse
/// bitmap over a huge table must not shatter into thousands of nearly-empty
/// units. Trailing candidate-free pages are dropped (nothing to probe
/// there); a bitmap with no set bits yields no morsels at all.
pub(crate) fn probe_morsels(heap: &HeapFile, total: &Bitmap, pages: u32) -> Vec<(u64, u64)> {
    let n = heap.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let candidates = total.count_ones_in(0, n);
    if candidates == 0 {
        return Vec::new();
    }
    let per_page = heap.layout().tuples_per_page() as u64;
    let page_cap = (heap.page_count() as u64).div_ceil(pages.max(1) as u64);
    let cand_cap = candidates.div_ceil(MIN_PROBE_CANDIDATES_PER_MORSEL);
    let target = candidates.div_ceil(page_cap.min(cand_cap).max(1));

    let mut out = Vec::new();
    let mut lo = 0u64;
    let mut acc = 0u64;
    let mut page = 0u64;
    while page * per_page < n {
        let plo = page * per_page;
        let phi = ((page + 1) * per_page).min(n);
        acc += total.count_ones_in(plo, phi);
        if acc >= target {
            out.push((lo, phi));
            lo = phi;
            acc = 0;
        }
        page += 1;
    }
    if acc > 0 {
        out.push((lo, n));
    }
    out
}

/// Runs units `0..n_units` across `threads` workers with work-stealing.
///
/// Each worker owns a scratch value from `make_scratch` (reused across all
/// units it runs). `run(scratch, unit)` must write its output somewhere
/// unit-indexed; the scheduler guarantees each unit runs exactly once but
/// promises nothing about *where* or *in what order* — that is the whole
/// determinism bargain.
///
/// Returns the number of successful steals — a scheduling accident, not a
/// data-derived quantity: callers may count it in metrics but must never
/// let it into traces or anything priced on the simulated clock.
pub(crate) fn run_units<S>(
    threads: usize,
    n_units: usize,
    make_scratch: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) + Sync,
) -> u64 {
    if n_units == 0 {
        return 0;
    }
    let threads = threads.max(1).min(n_units);
    if threads == 1 {
        let mut scratch = make_scratch();
        for u in 0..n_units {
            run(&mut scratch, u);
        }
        return 0;
    }
    // Seed round-robin: unit u starts in deque u % threads. All units exist
    // up front (none are spawned mid-run), so "every deque empty" is a
    // sound termination condition: a worker exits after a full sweep finds
    // nothing, and any unit it missed was already claimed by someone else.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..n_units).step_by(threads).collect()))
        .collect();
    let pop = |d: &Mutex<VecDeque<usize>>| d.lock().expect("no panics hold deques").pop_front();
    let steal = |d: &Mutex<VecDeque<usize>>| d.lock().expect("no panics hold deques").pop_back();
    let steals = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..threads {
            let (deques, run, make_scratch) = (&deques, &run, &make_scratch);
            let (pop, steal, steals) = (&pop, &steal, &steals);
            s.spawn(move || {
                let mut scratch = make_scratch();
                loop {
                    let unit = pop(&deques[w]).or_else(|| {
                        (1..threads).find_map(|v| {
                            let u = steal(&deques[(w + v) % threads]);
                            if u.is_some() {
                                steals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            u
                        })
                    });
                    match unit {
                        Some(u) => run(&mut scratch, u),
                        None => break,
                    }
                }
            });
        }
    });
    steals.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn heap_with_rows(rows: u64) -> HeapFile {
        use starshare_storage::{FileId, TupleLayout};
        HeapFile::from_rows(
            FileId(0),
            TupleLayout::new(2),
            (0..rows).map(|i| (vec![i as u32, 0], 1.0)),
        )
    }

    #[test]
    fn scan_morsels_are_aligned_contiguous_and_cover() {
        let heap = heap_with_rows(10_000);
        let per_page = heap.layout().tuples_per_page() as u64;
        for pages in [1u32, 4, 16, u32::MAX] {
            let ms = scan_morsels(&heap, pages);
            assert!(!ms.is_empty(), "pages={pages}");
            let mut expect_lo = 0;
            for &(lo, hi) in &ms {
                assert_eq!(lo, expect_lo, "contiguous");
                assert_eq!(lo % per_page, 0, "page-aligned start");
                assert!(lo < hi);
                expect_lo = hi;
            }
            assert_eq!(expect_lo, heap.n_tuples(), "full coverage");
        }
        assert_eq!(scan_morsels(&heap, u32::MAX).len(), 1);
        assert!(scan_morsels(&heap_with_rows(0), 16).is_empty());
    }

    #[test]
    fn probe_morsels_balance_candidates() {
        let heap = heap_with_rows(50_000);
        let n = heap.n_tuples();
        // All candidates clustered in the last 2% of the table.
        let start = n - n / 50;
        let positions: Vec<u64> = (start..n).step_by(3).collect();
        let bm = Bitmap::from_positions(n, &positions);
        let ms = probe_morsels(&heap, &bm, 1);
        assert!(ms.len() > 1, "clustered candidates must split");
        let per_page = heap.layout().tuples_per_page() as u64;
        let total: u64 = ms.iter().map(|&(lo, hi)| bm.count_ones_in(lo, hi)).sum();
        assert_eq!(total, positions.len() as u64, "every candidate covered");
        for window in ms.windows(2) {
            assert!(window[0].1 <= window[1].0, "ordered and disjoint");
        }
        for &(lo, _) in &ms {
            assert_eq!(lo % per_page, 0, "page-aligned start");
        }
        // Page-balanced would put all candidates in the final range; the
        // candidate-balancer must spread them instead.
        let max_share = ms
            .iter()
            .map(|&(lo, hi)| bm.count_ones_in(lo, hi))
            .max()
            .unwrap();
        assert!(
            max_share < positions.len() as u64,
            "no morsel holds every candidate"
        );
    }

    #[test]
    fn probe_morsels_cap_the_unit_count_for_sparse_bitmaps() {
        let heap = heap_with_rows(100_000);
        let n = heap.n_tuples();
        // 64 candidates spread across the whole table: at most
        // 64 / MIN_PROBE_CANDIDATES_PER_MORSEL = 2 morsels, even at
        // 1-page granularity.
        let positions: Vec<u64> = (0..64).map(|i| i * (n / 64)).collect();
        let bm = Bitmap::from_positions(n, &positions);
        let ms = probe_morsels(&heap, &bm, 1);
        assert!(ms.len() <= 2, "sparse bitmap must not shatter: {ms:?}");
        let total: u64 = ms.iter().map(|&(lo, hi)| bm.count_ones_in(lo, hi)).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn probe_morsels_empty_bitmap_yields_no_units() {
        let heap = heap_with_rows(5_000);
        let bm = Bitmap::new(heap.n_tuples());
        assert!(probe_morsels(&heap, &bm, 16).is_empty());
    }

    #[test]
    fn boundaries_are_deterministic() {
        let heap = heap_with_rows(30_000);
        let n = heap.n_tuples();
        let positions: Vec<u64> = (0..n).step_by(97).collect();
        let bm = Bitmap::from_positions(n, &positions);
        for pages in [1u32, 16] {
            assert_eq!(scan_morsels(&heap, pages), scan_morsels(&heap, pages));
            assert_eq!(
                probe_morsels(&heap, &bm, pages),
                probe_morsels(&heap, &bm, pages)
            );
        }
    }

    #[test]
    fn run_units_runs_each_unit_exactly_once() {
        for threads in [1usize, 2, 7, 16] {
            for n_units in [0usize, 1, 5, 64] {
                let counts: Vec<AtomicUsize> = (0..n_units).map(|_| AtomicUsize::new(0)).collect();
                run_units(
                    threads,
                    n_units,
                    || (),
                    |_, u| {
                        counts[u].fetch_add(1, Ordering::Relaxed);
                    },
                );
                for (u, c) in counts.iter().enumerate() {
                    assert_eq!(
                        c.load(Ordering::Relaxed),
                        1,
                        "unit {u} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn run_units_scratch_is_per_worker() {
        // Workers mutate their scratch freely; totals still cover all units.
        let sum = AtomicUsize::new(0);
        run_units(
            4,
            100,
            || 0usize,
            |acc, u| {
                *acc += u;
                sum.fetch_add(u, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<usize>());
    }
}
