//! Window-level execution accounting.
//!
//! An optimization *window* (see `starshare-serve`) executes one shared
//! plan on behalf of several submissions. [`WindowReport`] wraps the
//! executor's [`ExecReport`] with the window's own envelope — how long
//! planning took, the window's total start-to-finish latency, and how much
//! work it carried — so the serving layer can report per-window
//! busy/wall/throughput without re-deriving it from per-class reports.
//!
//! [`WindowTimer`] is the matching stopwatch: start it when the window
//! closes (submissions frozen), mark [`planned`](WindowTimer::planned)
//! when the optimizer hands back the shared plan, and
//! [`finish`](WindowTimer::finish) once results are routed.

use std::time::{Duration, Instant};

use crate::context::ExecReport;

/// What one optimization window cost, end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowReport {
    /// The executor's accounting for the shared plan run (simulated clock,
    /// I/O, CPU, per-run wall/busy).
    pub exec: ExecReport,
    /// Host wall time spent in parse/bind/optimize before execution began.
    pub plan_wall: Duration,
    /// Host wall time for the whole window: close → plan → execute →
    /// route. Always ≥ `exec.wall + plan_wall`.
    pub wall: Duration,
    /// Submissions the window carried.
    pub n_submissions: usize,
    /// Queries across all submissions (after binding).
    pub n_queries: usize,
    /// Classes in the shared plan (shared-operator runs).
    pub n_classes: usize,
}

impl WindowReport {
    /// Total host CPU time the window consumed: the executor's summed
    /// worker busy time plus the single-threaded planning envelope.
    pub fn busy(&self) -> Duration {
        self.exec.busy + self.plan_wall
    }
}

/// Stopwatch for one window's phases. Phases are cumulative from
/// [`start`](WindowTimer::start); [`planned`](WindowTimer::planned) may be
/// skipped (e.g. a full cache hit), leaving `plan_wall` zero.
#[derive(Debug)]
pub struct WindowTimer {
    started: Instant,
    plan_wall: Duration,
}

impl WindowTimer {
    /// Starts timing a window (call when the window closes).
    pub fn start() -> Self {
        WindowTimer {
            started: Instant::now(),
            plan_wall: Duration::ZERO,
        }
    }

    /// Marks the end of the planning phase (parse/bind/optimize done).
    pub fn planned(&mut self) {
        self.plan_wall = self.started.elapsed();
    }

    /// Finishes the window and assembles its report.
    pub fn finish(
        self,
        exec: ExecReport,
        n_submissions: usize,
        n_queries: usize,
        n_classes: usize,
    ) -> WindowReport {
        WindowReport {
            exec,
            plan_wall: self.plan_wall,
            wall: self.started.elapsed(),
            n_submissions,
            n_queries,
            n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_cumulative_and_ordered() {
        let mut t = WindowTimer::start();
        std::thread::sleep(Duration::from_millis(1));
        t.planned();
        std::thread::sleep(Duration::from_millis(1));
        let r = t.finish(ExecReport::default(), 2, 5, 3);
        assert!(r.plan_wall >= Duration::from_millis(1));
        assert!(r.wall > r.plan_wall);
        assert_eq!((r.n_submissions, r.n_queries, r.n_classes), (2, 5, 3));
        // With a default exec report, window busy is just the plan phase.
        assert_eq!(r.busy(), r.plan_wall);
    }

    #[test]
    fn skipping_planned_leaves_plan_wall_zero() {
        let t = WindowTimer::start();
        let r = t.finish(ExecReport::default(), 1, 0, 0);
        assert_eq!(r.plan_wall, Duration::ZERO);
    }
}
