//! The executor's error type.

use std::fmt;

use starshare_storage::FaultError;

/// An error from physical evaluation.
///
/// Two families, so callers can tell a *plan* problem (an operator asked to
/// answer a query its table cannot derive, an empty/malformed query set —
/// deterministic, retrying is pointless) from a *storage* fault (an
/// injected or real read failure that survived the executor's bounded
/// retry — see [`crate::retry`]). The engine maps the latter to its own
/// `Error::Fault` variant so one faulted query can degrade gracefully
/// inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// The operator was asked something it cannot do (wrong table, empty
    /// class, broken invariant). The message tells the story.
    Plan(String),
    /// A page read failed and retries were exhausted (or the page is
    /// permanently poisoned).
    Fault(FaultError),
}

impl ExecError {
    /// Wraps a plan-level message.
    pub fn new(msg: impl Into<String>) -> Self {
        ExecError::Plan(msg.into())
    }

    /// The underlying storage fault, if this is one.
    pub fn fault(&self) -> Option<&FaultError> {
        match self {
            ExecError::Fault(f) => Some(f),
            ExecError::Plan(_) => None,
        }
    }

    /// True for unrecovered storage faults.
    pub fn is_fault(&self) -> bool {
        matches!(self, ExecError::Fault(_))
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Plan(msg) => f.write_str(msg),
            ExecError::Fault(e) => write!(f, "unrecovered storage fault: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(_) => None,
            ExecError::Fault(e) => Some(e),
        }
    }
}

impl From<String> for ExecError {
    fn from(msg: String) -> Self {
        ExecError::Plan(msg)
    }
}

impl From<&str> for ExecError {
    fn from(msg: &str) -> Self {
        ExecError::Plan(msg.to_string())
    }
}

impl From<FaultError> for ExecError {
    fn from(e: FaultError) -> Self {
        ExecError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_storage::{FaultKind, FileId};

    #[test]
    fn plan_errors_display_their_message() {
        let e = ExecError::new("no such table");
        assert_eq!(e.to_string(), "no such table");
        assert!(!e.is_fault());
        assert!(e.fault().is_none());
    }

    #[test]
    fn fault_errors_chain_their_source() {
        use std::error::Error as _;
        let f = FaultError {
            file: FileId(3),
            page: 9,
            kind: FaultKind::PoisonedPage,
            access_no: 1,
        };
        let e = ExecError::from(f);
        assert!(e.is_fault());
        assert_eq!(e.fault(), Some(&f));
        assert!(e.to_string().contains("poisoned"), "{e}");
        assert!(e.source().is_some());
    }
}
