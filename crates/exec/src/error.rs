//! The executor's error type.

use std::fmt;

/// An error from physical evaluation: an operator asked to answer a query
/// its table cannot derive, or given an empty/malformed query set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(String);

impl ExecError {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> Self {
        ExecError(msg.into())
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExecError {}

impl From<String> for ExecError {
    fn from(msg: String) -> Self {
        ExecError(msg)
    }
}

impl From<&str> for ExecError {
    fn from(msg: &str) -> Self {
        ExecError(msg.to_string())
    }
}
