//! Tiered aggregation kernels.
//!
//! The scan+aggregate inner loop dominates every strategy in the paper
//! (§3, §7), and the naive accumulator — a `HashMap<Vec<u32>, AggState>`
//! keyed by a heap-allocated key built per tuple — pays an allocation, a
//! multi-word hash, and (before this module) a double probe on every new
//! group. An [`AggKernel`] is compiled per query at `QueryState::compile`
//! time from *exact* catalog cardinalities and picks the cheapest
//! representation the group-by space allows:
//!
//! * [`KernelTier::Dense`] — the target group-by's total cardinality is
//!   small (≤ [`DENSE_MAX_GROUPS`]): pack the rolled keys into a mixed-radix
//!   `u64` offset and accumulate into a flat slot array. No hashing at all.
//! * [`KernelTier::Packed`] — the key space fits 64 bits but is too large
//!   (or too sparse) for a flat array: the same packed `u64` keys a
//!   `HashMap` with a constant-time integer hash.
//! * [`KernelTier::Spill`] — the cardinality product overflows `u64`: fall
//!   back to the original `Vec<u32>` keys (now with a single `entry()`
//!   probe).
//!
//! The load-bearing invariant: **every tier charges the identical
//! [`CpuCounters`]** — one `hash_probes` per qualifying tuple, one
//! `hash_builds` per new group, one `agg_updates` and `tuple_copies` per
//! qualifying tuple — and per-group measures fold in scan order in every
//! tier, so query results, counters, and the simulated clock are
//! bit-identical across tiers. The kernels change real wall time only.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use starshare_olap::{AggState, CombineMode};
use starshare_storage::{CpuCounters, ScanBatch};

/// Largest exact group-by cardinality that gets a flat dense accumulator
/// (64 Ki slots ≈ 1 MiB of `AggState` per accumulator).
pub const DENSE_MAX_GROUPS: u64 = 1 << 16;

/// Hasher for packed `u64` group keys: the SplitMix64 finalizer, applied to
/// the single `write_u64` the map performs per operation. Deterministic
/// (unlike `RandomState`) and a handful of arithmetic ops instead of
/// SipHash rounds.
#[derive(Debug, Default)]
pub struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only reached if someone keys something other than u64; FNV-1a
        // keeps it correct.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The packed-hash tier's map type.
pub type PackedMap = HashMap<u64, AggState, BuildHasherDefault<PackedKeyHasher>>;

/// Which representation a kernel compiled to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Flat slot array indexed by the packed key.
    Dense,
    /// `HashMap<u64, AggState>` on packed keys.
    Packed,
    /// `HashMap<Vec<u32>, AggState>` fallback.
    Spill,
}

/// One dimension's contribution to the packed key: roll the stored key by
/// `divisor`, weight by the mixed-radix multiplier.
#[derive(Debug, Clone)]
struct PackDim {
    dim: usize,
    divisor: u32,
    weight: u64,
}

#[derive(Debug, Clone)]
enum TierPlan {
    Dense {
        dims: Vec<PackDim>,
        cards: Vec<u32>,
        total: usize,
    },
    Packed {
        dims: Vec<PackDim>,
        cards: Vec<u32>,
    },
    Spill,
}

/// A compiled aggregation kernel: how one query's qualifying tuples become
/// `(group key, AggState)` pairs. Immutable after compilation — partitioned
/// workers share one kernel and give each partition a private [`GroupAcc`].
#[derive(Debug, Clone)]
pub struct AggKernel {
    /// `(dim, divisor)` per grouped dimension, in dimension order — the
    /// spill tier's key extraction (identical to the pipeline's).
    extract: Vec<(usize, u32)>,
    tier: TierPlan,
}

impl AggKernel {
    /// Compiles a kernel for a group-by whose grouped dimensions are
    /// `extract` (`(source dim, roll-up divisor)` in dimension order) with
    /// exact target cardinalities `cards` (parallel to `extract`).
    pub fn compile(extract: Vec<(usize, u32)>, cards: Vec<u32>) -> Self {
        assert_eq!(
            extract.len(),
            cards.len(),
            "one cardinality per grouped dimension"
        );
        let total = cards
            .iter()
            .try_fold(1u64, |acc, &c| acc.checked_mul(c as u64));
        let tier = match total {
            Some(t) if t <= DENSE_MAX_GROUPS => TierPlan::Dense {
                dims: Self::pack_dims(&extract, &cards),
                cards,
                total: t as usize,
            },
            Some(_) => TierPlan::Packed {
                dims: Self::pack_dims(&extract, &cards),
                cards,
            },
            None => TierPlan::Spill,
        };
        AggKernel { extract, tier }
    }

    /// Mixed-radix weights: dimension `i`'s weight is the product of the
    /// cardinalities after it, so `key = Σ rolledᵢ · weightᵢ` enumerates
    /// `0..Πcards` in lexicographic key order (Horner's rule).
    fn pack_dims(extract: &[(usize, u32)], cards: &[u32]) -> Vec<PackDim> {
        let mut weight = 1u64;
        let mut dims: Vec<PackDim> = extract
            .iter()
            .zip(cards)
            .rev()
            .map(|(&(dim, divisor), &card)| {
                let pd = PackDim {
                    dim,
                    divisor,
                    weight,
                };
                weight = weight.saturating_mul(card as u64);
                pd
            })
            .collect();
        dims.reverse();
        dims
    }

    /// The representation this kernel compiled to.
    pub fn tier(&self) -> KernelTier {
        match self.tier {
            TierPlan::Dense { .. } => KernelTier::Dense,
            TierPlan::Packed { .. } => KernelTier::Packed,
            TierPlan::Spill => KernelTier::Spill,
        }
    }

    /// A fresh accumulator for this kernel.
    pub fn new_acc(&self) -> GroupAcc {
        match &self.tier {
            TierPlan::Dense { total, .. } => GroupAcc::Dense {
                slots: vec![AggState::default(); *total],
                occupied: vec![0u64; total.div_ceil(64)],
            },
            TierPlan::Packed { .. } => GroupAcc::Packed(PackedMap::default()),
            TierPlan::Spill => GroupAcc::Spill(HashMap::new()),
        }
    }

    /// Packs rolled keys into the mixed-radix offset; `get(dim)` supplies
    /// the stored key for a dimension (a row-major slice or a batch column).
    #[inline]
    fn pack_with(dims: &[PackDim], get: impl Fn(usize) -> u32) -> u64 {
        let mut off = 0u64;
        for pd in dims {
            off += (get(pd.dim) / pd.divisor) as u64 * pd.weight;
        }
        off
    }

    /// Absorbs one qualifying tuple into `acc`.
    ///
    /// Counter contract (identical in every tier, identical to the
    /// pre-kernel accumulator): `hash_probes += 1` for the
    /// aggregation-table lookup, `hash_builds += 1` iff the group is new,
    /// then `agg_updates += 1` and `tuple_copies += 1`.
    #[inline]
    pub fn absorb(
        &self,
        acc: &mut GroupAcc,
        mode: CombineMode,
        keys: &[u32],
        measure: f64,
        scratch: &mut Vec<u32>,
        cpu: &mut CpuCounters,
    ) {
        self.absorb_keyed(acc, mode, |d| keys[d], measure, scratch, cpu);
    }

    /// [`absorb`](Self::absorb) for one row of a columnar [`ScanBatch`]:
    /// reads only the grouped dimensions' columns, no row-major key copy.
    #[inline]
    pub fn absorb_row(
        &self,
        acc: &mut GroupAcc,
        mode: CombineMode,
        batch: &ScanBatch,
        row: usize,
        scratch: &mut Vec<u32>,
        cpu: &mut CpuCounters,
    ) {
        self.absorb_keyed(
            acc,
            mode,
            |d| batch.key(d, row),
            batch.measure(row),
            scratch,
            cpu,
        );
    }

    #[inline]
    fn absorb_keyed(
        &self,
        acc: &mut GroupAcc,
        mode: CombineMode,
        get: impl Fn(usize) -> u32,
        measure: f64,
        scratch: &mut Vec<u32>,
        cpu: &mut CpuCounters,
    ) {
        cpu.hash_probes += 1; // aggregation-table lookup
        match (&self.tier, acc) {
            (TierPlan::Dense { dims, .. }, GroupAcc::Dense { slots, occupied }) => {
                let off = Self::pack_with(dims, get) as usize;
                let (word, bit) = (off / 64, off % 64);
                if occupied[word] >> bit & 1 == 1 {
                    slots[off].fold(mode, measure);
                } else {
                    cpu.hash_builds += 1;
                    occupied[word] |= 1 << bit;
                    slots[off] = AggState::first(mode, measure);
                }
            }
            (TierPlan::Packed { dims, .. }, GroupAcc::Packed(map)) => {
                match map.entry(Self::pack_with(dims, get)) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().fold(mode, measure);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        cpu.hash_builds += 1;
                        e.insert(AggState::first(mode, measure));
                    }
                }
            }
            (TierPlan::Spill, GroupAcc::Spill(map)) => {
                scratch.clear();
                scratch.extend(self.extract.iter().map(|&(d, div)| get(d) / div));
                // Single entry() probe: one lookup done, one charged.
                match map.entry(scratch.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().fold(mode, measure);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        cpu.hash_builds += 1;
                        e.insert(AggState::first(mode, measure));
                    }
                }
            }
            _ => unreachable!("accumulator built by a different kernel tier"),
        }
        cpu.agg_updates += 1;
        cpu.tuple_copies += 1;
    }

    /// Merges a partition's partial accumulator into `dst` (partitioned
    /// execution, phase 3). Counter contract, identical to the pre-kernel
    /// merge loop: per source group one `hash_probes`, then `agg_updates`
    /// on a hit or `hash_builds` on a miss. Group states merge in call
    /// order (= partition order), keeping floating-point association
    /// deterministic.
    pub fn merge_partial(
        &self,
        dst: &mut GroupAcc,
        src: &GroupAcc,
        mode: CombineMode,
        cpu: &mut CpuCounters,
    ) {
        match (dst, src) {
            (
                GroupAcc::Dense { slots, occupied },
                GroupAcc::Dense {
                    slots: src_slots,
                    occupied: src_occ,
                },
            ) => {
                for (word, &src_word) in src_occ.iter().enumerate() {
                    let mut rest = src_word;
                    while rest != 0 {
                        let bit = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let off = word * 64 + bit;
                        cpu.hash_probes += 1;
                        if occupied[word] >> bit & 1 == 1 {
                            slots[off].merge(mode, &src_slots[off]);
                            cpu.agg_updates += 1;
                        } else {
                            cpu.hash_builds += 1;
                            occupied[word] |= 1 << bit;
                            slots[off] = src_slots[off];
                        }
                    }
                }
            }
            (GroupAcc::Packed(dst_map), GroupAcc::Packed(src_map)) => {
                for (&k, st) in src_map {
                    cpu.hash_probes += 1;
                    match dst_map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().merge(mode, st);
                            cpu.agg_updates += 1;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            cpu.hash_builds += 1;
                            e.insert(*st);
                        }
                    }
                }
            }
            (GroupAcc::Spill(dst_map), GroupAcc::Spill(src_map)) => {
                for (k, st) in src_map {
                    cpu.hash_probes += 1;
                    if let Some(acc) = dst_map.get_mut(k) {
                        acc.merge(mode, st);
                        cpu.agg_updates += 1;
                    } else {
                        cpu.hash_builds += 1;
                        dst_map.insert(k.clone(), *st);
                    }
                }
            }
            _ => unreachable!("merging accumulators of different kernel tiers"),
        }
    }

    /// Consumes an accumulator into `(group key, state)` pairs with the
    /// keys unpacked back to `Vec<u32>` form (unordered — results are
    /// sorted downstream by `QueryResult::from_groups`).
    pub fn into_groups(&self, acc: GroupAcc) -> Vec<(Vec<u32>, AggState)> {
        match (acc, &self.tier) {
            (GroupAcc::Dense { slots, occupied }, TierPlan::Dense { cards, .. }) => {
                let mut out = Vec::new();
                for (word, &w) in occupied.iter().enumerate() {
                    let mut rest = w;
                    while rest != 0 {
                        let bit = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let off = word * 64 + bit;
                        out.push((Self::unpack(cards, off as u64), slots[off]));
                    }
                }
                out
            }
            (GroupAcc::Packed(map), TierPlan::Packed { cards, .. }) => map
                .into_iter()
                .map(|(k, st)| (Self::unpack(cards, k), st))
                .collect(),
            (GroupAcc::Spill(map), TierPlan::Spill) => map.into_iter().collect(),
            _ => unreachable!("accumulator built by a different kernel tier"),
        }
    }

    /// Inverts [`pack`](Self::pack): mixed-radix digits, most significant
    /// dimension first.
    fn unpack(cards: &[u32], mut key: u64) -> Vec<u32> {
        let mut out = vec![0u32; cards.len()];
        for (slot, &card) in out.iter_mut().zip(cards).rev() {
            *slot = (key % card as u64) as u32;
            key /= card as u64;
        }
        out
    }

    /// Groups currently held in `acc`.
    pub fn n_groups(&self, acc: &GroupAcc) -> usize {
        match acc {
            GroupAcc::Dense { occupied, .. } => {
                occupied.iter().map(|w| w.count_ones() as usize).sum()
            }
            GroupAcc::Packed(m) => m.len(),
            GroupAcc::Spill(m) => m.len(),
        }
    }
}

/// A per-worker mutable accumulator, shaped by the kernel that created it
/// ([`AggKernel::new_acc`]).
#[derive(Debug, Clone)]
pub enum GroupAcc {
    /// Flat slots indexed by packed key; `occupied` is a bitset marking
    /// which slots hold a live group (a default `AggState` is a
    /// placeholder, not a group).
    Dense {
        slots: Vec<AggState>,
        occupied: Vec<u64>,
    },
    /// Packed-key hash accumulator.
    Packed(PackedMap),
    /// `Vec<u32>`-keyed fallback.
    Spill(HashMap<Vec<u32>, AggState>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn absorb_all(
        kernel: &AggKernel,
        rows: &[(&[u32], f64)],
        mode: CombineMode,
    ) -> (Vec<(Vec<u32>, f64)>, CpuCounters) {
        let mut acc = kernel.new_acc();
        let mut scratch = Vec::new();
        let mut cpu = CpuCounters::default();
        for &(keys, m) in rows {
            kernel.absorb(&mut acc, mode, keys, m, &mut scratch, &mut cpu);
        }
        let mut out: Vec<(Vec<u32>, f64)> = kernel
            .into_groups(acc)
            .into_iter()
            .map(|(k, st)| (k, st.value(mode)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        (out, cpu)
    }

    #[test]
    fn tier_selection_follows_cardinality_product() {
        let k = AggKernel::compile(vec![(0, 1), (1, 2)], vec![100, 100]);
        assert_eq!(k.tier(), KernelTier::Dense);
        let k = AggKernel::compile(vec![(0, 1), (1, 1)], vec![1 << 16, 2]);
        assert_eq!(k.tier(), KernelTier::Packed);
        // 7 dims × 2^10 each = 2^70 > u64::MAX.
        let k = AggKernel::compile(vec![(0, 1); 7], vec![1 << 10; 7]);
        assert_eq!(k.tier(), KernelTier::Spill);
        // Empty group-by (everything aggregated away): one dense slot.
        let k = AggKernel::compile(vec![], vec![]);
        assert_eq!(k.tier(), KernelTier::Dense);
    }

    #[test]
    fn all_tiers_agree_and_charge_identically() {
        // Same extraction compiled three ways by varying claimed cards
        // (claimed cardinalities only need to be upper bounds for packing
        // to be injective).
        let rows: Vec<(&[u32], f64)> = vec![
            (&[5, 9], 1.0),
            (&[5, 9], 2.5),
            (&[0, 3], -1.0),
            (&[7, 9], 4.0),
            (&[5, 8], 0.25),
        ];
        let dense = AggKernel::compile(vec![(0, 1), (1, 2)], vec![10, 5]);
        let packed = AggKernel::compile(vec![(0, 1), (1, 2)], vec![1 << 20, 1 << 20]);
        let spill = AggKernel::compile(
            vec![(0, 1), (1, 2), (0, 1), (0, 1), (0, 1), (0, 1), (0, 1)],
            vec![1 << 10; 7],
        );
        assert_eq!(dense.tier(), KernelTier::Dense);
        assert_eq!(packed.tier(), KernelTier::Packed);
        assert_eq!(spill.tier(), KernelTier::Spill);
        for mode in [
            CombineMode::Add,
            CombineMode::CountRows,
            CombineMode::TakeMin,
            CombineMode::TakeMax,
            CombineMode::Average,
        ] {
            let (rd, cd) = absorb_all(&dense, &rows, mode);
            let (rp, cp) = absorb_all(&packed, &rows, mode);
            assert_eq!(rd, rp, "dense vs packed, {mode:?}");
            assert_eq!(cd, cp, "counters dense vs packed, {mode:?}");
            // Spill extracts 7 key parts; compare group count + charges.
            let (rs, cs) = absorb_all(&spill, &rows, mode);
            assert_eq!(rs.len(), rd.len());
            assert_eq!(cs, cd, "counters spill vs dense, {mode:?}");
            assert_eq!(cd.hash_probes, rows.len() as u64);
            assert_eq!(cd.hash_builds, rd.len() as u64);
            assert_eq!(cd.agg_updates, rows.len() as u64);
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let cards = vec![6u32, 3, 7200];
        let extract = vec![(0usize, 1u32), (1, 1), (2, 1)];
        let k = AggKernel::compile(extract, cards.clone());
        let dims = match &k.tier {
            TierPlan::Dense { dims, .. } | TierPlan::Packed { dims, .. } => dims,
            TierPlan::Spill => unreachable!(),
        };
        let pack = |keys: &[u32; 3]| AggKernel::pack_with(dims, |d| keys[d]);
        for keys in [[0u32, 0, 0], [5, 2, 7199], [3, 1, 4096]] {
            let packed = pack(&keys);
            assert_eq!(AggKernel::unpack(&cards, packed), keys.to_vec());
        }
        // Packing is lexicographic in key order.
        assert!(pack(&[1, 0, 0]) > pack(&[0, 2, 7199]));
    }

    #[test]
    fn merge_matches_single_accumulator() {
        let kernel = AggKernel::compile(vec![(0, 1)], vec![16]);
        let mode = CombineMode::Add;
        let mut scratch = Vec::new();
        // One accumulator over all rows...
        let all: Vec<(&[u32], f64)> = vec![(&[1], 1.0), (&[2], 2.0), (&[1], 3.0), (&[3], 4.0)];
        let (expect, _) = absorb_all(&kernel, &all, mode);
        // ...versus two partials merged.
        let mut cpu = CpuCounters::default();
        let mut a = kernel.new_acc();
        let mut b = kernel.new_acc();
        for &(k, m) in &all[..2] {
            kernel.absorb(&mut a, mode, k, m, &mut scratch, &mut cpu);
        }
        for &(k, m) in &all[2..] {
            kernel.absorb(&mut b, mode, k, m, &mut scratch, &mut cpu);
        }
        let mut merged = kernel.new_acc();
        let mut merge_cpu = CpuCounters::default();
        kernel.merge_partial(&mut merged, &a, mode, &mut merge_cpu);
        kernel.merge_partial(&mut merged, &b, mode, &mut merge_cpu);
        assert_eq!(kernel.n_groups(&merged), 3);
        // Per partial group: one probe; builds + updates partition them.
        assert_eq!(merge_cpu.hash_probes, 4);
        assert_eq!(merge_cpu.hash_builds, 3);
        assert_eq!(merge_cpu.agg_updates, 1);
        let mut got: Vec<(Vec<u32>, f64)> = kernel
            .into_groups(merged)
            .into_iter()
            .map(|(k, st)| (k, st.value(mode)))
            .collect();
        got.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(got, expect);
    }
}
