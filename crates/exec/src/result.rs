//! Query results.

use starshare_olap::{GroupByQuery, StarSchema};

/// The result of one dimensional query: one row per output group.
///
/// Keys hold the member id at the query's target level for each grouped
/// dimension (dimensions aggregated to `All` are omitted from the key).
/// Rows are sorted by key, so results compare structurally.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The query this result answers.
    pub query: GroupByQuery,
    /// `(group key, SUM(measure))`, sorted by key.
    pub rows: Vec<(Vec<u32>, f64)>,
}

impl QueryResult {
    /// Assembles a result from an unordered accumulator.
    pub fn from_groups(
        query: GroupByQuery,
        groups: impl IntoIterator<Item = (Vec<u32>, f64)>,
    ) -> Self {
        let mut rows: Vec<(Vec<u32>, f64)> = groups.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        QueryResult { query, rows }
    }

    /// Number of output groups.
    pub fn n_groups(&self) -> usize {
        self.rows.len()
    }

    /// Total of all group sums (handy invariant: equals the filtered total
    /// of the source data).
    pub fn grand_total(&self) -> f64 {
        self.rows.iter().map(|(_, m)| m).sum()
    }

    /// Structural equality with a floating-point tolerance on measures.
    ///
    /// Aggregation order differs between operators, so sums can differ by
    /// rounding; `rel_tol` is relative to each row's magnitude.
    pub fn approx_eq(&self, other: &QueryResult, rel_tol: f64) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|((k1, m1), (k2, m2))| {
                k1 == k2 && (m1 - m2).abs() <= rel_tol * m1.abs().max(m2.abs()).max(1.0)
            })
    }

    /// Renders the first `limit` rows with member names.
    pub fn display(&self, schema: &StarSchema, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let grouped_dims: Vec<(usize, u8)> = self
            .query
            .group_by
            .levels()
            .iter()
            .enumerate()
            .filter_map(|(d, lr)| lr.level().map(|l| (d, l)))
            .collect();
        let header: Vec<&str> = grouped_dims
            .iter()
            .map(|&(d, l)| schema.dim(d).level(l).name.as_str())
            .collect();
        let _ = writeln!(out, "{} | {}", header.join(", "), schema.measure_name());
        for (key, m) in self.rows.iter().take(limit) {
            let names: Vec<String> = grouped_dims
                .iter()
                .zip(key)
                .map(|(&(d, l), &id)| schema.dim(d).member_name(l, id))
                .collect();
            let _ = writeln!(out, "{} | {:.2}", names.join(", "), m);
        }
        if self.rows.len() > limit {
            let _ = writeln!(out, "… {} more rows", self.rows.len() - limit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{Dimension, GroupBy, MemberPred};

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 2, &[2]),
                Dimension::uniform("B", 2, &[2]),
            ],
            "m",
        )
    }

    fn q(s: &StarSchema) -> GroupByQuery {
        GroupByQuery::new(
            GroupBy::parse(s, "A'B*").unwrap(),
            vec![MemberPred::All, MemberPred::All],
        )
    }

    #[test]
    fn from_groups_sorts() {
        let s = schema();
        let r = QueryResult::from_groups(q(&s), vec![(vec![1], 2.0), (vec![0], 1.0)]);
        assert_eq!(r.rows[0].0, vec![0]);
        assert_eq!(r.n_groups(), 2);
        assert_eq!(r.grand_total(), 3.0);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let s = schema();
        let a = QueryResult::from_groups(q(&s), vec![(vec![0], 100.0)]);
        let b = QueryResult::from_groups(q(&s), vec![(vec![0], 100.0 + 1e-10)]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = QueryResult::from_groups(q(&s), vec![(vec![0], 101.0)]);
        assert!(!a.approx_eq(&c, 1e-9));
        let d = QueryResult::from_groups(q(&s), vec![(vec![1], 100.0)]);
        assert!(!a.approx_eq(&d, 1e-9));
        let e = QueryResult::from_groups(q(&s), vec![]);
        assert!(!a.approx_eq(&e, 1e-9));
    }

    #[test]
    fn display_uses_member_names_and_omits_all_dims() {
        let s = schema();
        let r = QueryResult::from_groups(q(&s), vec![(vec![0], 5.0), (vec![1], 7.0)]);
        let d = r.display(&s, 10);
        assert!(d.contains("A'"), "{d}");
        // Level A' of a 2-level dimension is the top: members "A1", "A2".
        assert!(d.contains("A1 | 5.00"), "{d}");
        assert!(!d.contains('B'), "B is aggregated away: {d}");
    }

    #[test]
    fn display_truncates() {
        let s = schema();
        let r =
            QueryResult::from_groups(q(&s), (0..4u32).map(|i| (vec![i], 1.0)).collect::<Vec<_>>());
        let d = r.display(&s, 2);
        assert!(d.contains("2 more rows"), "{d}");
    }
}
