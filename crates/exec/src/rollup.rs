//! Compiled per-query pipelines.
//!
//! Before execution, a query is *compiled against a source table* into a
//! [`DimPipeline`]: per-dimension divisors that roll stored keys up to the
//! predicate and target levels, the predicate member lists, and the set of
//! dimensions that require a dimension-table probe.
//!
//! In a real star schema the roll-up is a foreign-key join with a dimension
//! table; with dense member ids and uniform fan-outs it is integer
//! division. The *work accounting* still models the join: each tuple pays
//! one hash probe per dimension that needs mapping (shared across queries
//! by the shared operators — that is precisely the §3.1 "share hash tables
//! instead of redundantly building and probing" saving), and building those
//! tables costs one hash insert per dimension row.

use starshare_olap::{CombineMode, GroupBy, GroupByQuery, LevelRef, StarSchema};
use starshare_storage::{CpuCounters, ScanBatch};

use crate::error::ExecError;
use crate::kernel::{AggKernel, GroupAcc, KernelTier};

/// Stored-key domains up to this size (1 Ki words = 8 KiB, L1-resident) get
/// the roll-up divisor folded into the bitset at compile time, making the
/// hot membership test a single divisionless bit probe.
const STORED_BITSET_MAX_DOMAIN: u64 = 1 << 16;

/// Member domains up to this size get a word-level bitset membership test
/// on the *rolled* key (16 words max); larger domains binary-search the
/// sorted member list.
const ROLLED_BITSET_MAX_DOMAIN: u32 = 1024;

/// How a compiled predicate tests membership.
#[derive(Debug, Clone)]
enum PredTest {
    /// Bit `k` set iff *stored* key `k` rolls up to a qualifying member —
    /// the roll-up division is pre-applied over the whole stored domain at
    /// compile time.
    StoredBitset(Vec<u64>),
    /// Bit `m` set iff member `m` qualifies; indexed by the rolled key.
    RolledBitset(Vec<u64>),
    /// Roll up, then binary-search the sorted member list.
    Sorted,
}

/// One compiled predicate on a stored-key dimension.
#[derive(Debug, Clone)]
struct PredStep {
    dim: usize,
    divisor: u32,
    /// Sorted member ids at the predicate level.
    members: Vec<u32>,
    test: PredTest,
}

#[inline]
fn bit_set(words: &[u64], k: u32) -> bool {
    words
        .get((k / 64) as usize)
        .is_some_and(|w| w >> (k % 64) & 1 == 1)
}

impl PredStep {
    fn compile(dim: usize, divisor: u32, members: Vec<u32>, domain: u32) -> Self {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "predicate members must be sorted and deduplicated"
        );
        let stored_domain = domain as u64 * divisor as u64;
        let test = if stored_domain <= STORED_BITSET_MAX_DOMAIN {
            let mut words = vec![0u64; (stored_domain as usize).div_ceil(64).max(1)];
            for &m in &members {
                // Every stored key in [m·divisor, (m+1)·divisor) rolls up
                // to member m.
                for k in m * divisor..(m + 1) * divisor {
                    words[(k / 64) as usize] |= 1 << (k % 64);
                }
            }
            PredTest::StoredBitset(words)
        } else if domain <= ROLLED_BITSET_MAX_DOMAIN {
            let mut words = vec![0u64; (domain as usize).div_ceil(64).max(1)];
            for &m in &members {
                words[(m / 64) as usize] |= 1 << (m % 64);
            }
            PredTest::RolledBitset(words)
        } else {
            PredTest::Sorted
        };
        PredStep {
            dim,
            divisor,
            members,
            test,
        }
    }

    /// Membership test on the *stored* key (the roll-up happens inside,
    /// where the compiled representation can skip it).
    #[inline]
    fn matches_stored(&self, key: u32) -> bool {
        match &self.test {
            PredTest::StoredBitset(words) => bit_set(words, key),
            PredTest::RolledBitset(words) => bit_set(words, key / self.divisor),
            PredTest::Sorted => self.members.binary_search(&(key / self.divisor)).is_ok(),
        }
    }

    /// Applies this predicate to one batch column, narrowing the selection
    /// vector. `seeded == false` means `sel` is conceptually all of
    /// `0..col.len()` and gets rebuilt; otherwise `sel`'s rows are filtered
    /// in place. The representation dispatch happens once per column, and
    /// the per-element compaction is branchless, keeping the hot loop to a
    /// load, a bit probe, and an unconditional store.
    fn filter_col(&self, col: &[u32], sel: &mut Vec<u32>, seeded: bool) {
        match &self.test {
            PredTest::StoredBitset(words) => sift(col, sel, seeded, |k| bit_set(words, k)),
            PredTest::RolledBitset(words) => {
                let d = self.divisor;
                sift(col, sel, seeded, |k| bit_set(words, k / d))
            }
            PredTest::Sorted => {
                let d = self.divisor;
                sift(col, sel, seeded, |k| {
                    self.members.binary_search(&(k / d)).is_ok()
                })
            }
        }
    }
}

/// Branchless selection-vector compaction: writes the row index on every
/// iteration and advances the output cursor only when `keep` holds.
#[inline]
fn sift(col: &[u32], sel: &mut Vec<u32>, seeded: bool, keep: impl Fn(u32) -> bool) {
    let mut out = 0usize;
    if !seeded {
        sel.clear();
        sel.resize(col.len(), 0);
        for (i, &k) in col.iter().enumerate() {
            sel[out] = i as u32;
            out += keep(k) as usize;
        }
    } else {
        for j in 0..sel.len() {
            let i = sel[j];
            sel[out] = i;
            out += keep(col[i as usize]) as usize;
        }
    }
    sel.truncate(out);
}

/// A query compiled against a specific source table.
#[derive(Debug, Clone)]
pub struct DimPipeline {
    preds: Vec<PredStep>,
    /// `(dim, divisor)` for each grouped dimension, in dimension order.
    agg_extract: Vec<(usize, u32)>,
    /// Bit `d` set iff dimension `d` needs a dimension-table probe (its
    /// target or predicate level is coarser than the stored level).
    probe_mask: u64,
    /// Rows to insert when building the needed dimension hash tables: the
    /// summed cardinality of the probed dimensions at their stored levels.
    build_rows: u64,
    /// The aggregation kernel chosen from the target group-by's exact
    /// cardinalities.
    kernel: AggKernel,
}

impl DimPipeline {
    /// Compiles `query` against a table storing `stored` levels.
    ///
    /// Fails if the table cannot answer the query.
    pub fn compile(
        schema: &StarSchema,
        stored: &GroupBy,
        query: &GroupByQuery,
    ) -> Result<Self, ExecError> {
        if !query.answerable_from(stored) {
            return Err(ExecError::new(format!(
                "query {} is not answerable from {}",
                query.display(schema),
                stored.display(schema)
            )));
        }
        let mut preds = Vec::new();
        let mut agg_extract = Vec::new();
        let mut agg_cards = Vec::new();
        let mut probe_mask = 0u64;
        let mut build_rows = 0u64;
        for d in 0..schema.n_dims() {
            let dim = schema.dim(d);
            let s = match stored.level(d) {
                LevelRef::Level(s) => s,
                LevelRef::All => continue, // target and pred are All too
            };
            let mut needs_probe = false;
            if let LevelRef::Level(t) = query.group_by.level(d) {
                agg_extract.push((d, dim.cardinality(s) / dim.cardinality(t)));
                agg_cards.push(dim.cardinality(t));
                needs_probe |= t > s;
            }
            if let starshare_olap::MemberPred::In { level: p, members } = &query.preds[d] {
                preds.push(PredStep::compile(
                    d,
                    dim.cardinality(s) / dim.cardinality(*p),
                    members.clone(),
                    dim.cardinality(*p),
                ));
                needs_probe |= *p > s;
            }
            if needs_probe {
                probe_mask |= 1 << d;
                build_rows += dim.cardinality(s) as u64;
            }
        }
        debug_assert_eq!(
            agg_cards,
            query.group_by.key_cardinalities(schema),
            "grouped dimensions must line up with the query's key space"
        );
        Ok(DimPipeline {
            kernel: AggKernel::compile(agg_extract.clone(), agg_cards),
            preds,
            agg_extract,
            probe_mask,
            build_rows,
        })
    }

    /// The compiled aggregation kernel.
    pub fn kernel(&self) -> &AggKernel {
        &self.kernel
    }

    /// Which representation the aggregation kernel compiled to.
    pub fn kernel_tier(&self) -> KernelTier {
        self.kernel.tier()
    }

    /// Dimensions needing a dimension-table probe, as a bit mask.
    pub fn probe_mask(&self) -> u64 {
        self.probe_mask
    }

    /// Hash-table rows to build for this pipeline's probed dimensions.
    pub fn build_rows(&self) -> u64 {
        self.build_rows
    }

    /// Evaluates all predicates on a stored-key tuple, charging one
    /// predicate evaluation per step actually executed (short-circuit).
    pub fn filter(&self, keys: &[u32], cpu: &mut CpuCounters) -> bool {
        self.filter_skipping(keys, cpu, 0)
    }

    /// Like [`filter`](Self::filter) but skips predicates on dimensions in
    /// `skip_mask` (those already guaranteed by a bitmap-index lookup).
    pub fn filter_skipping(&self, keys: &[u32], cpu: &mut CpuCounters, skip_mask: u64) -> bool {
        for p in &self.preds {
            if skip_mask & (1 << p.dim) != 0 {
                continue;
            }
            cpu.predicate_evals += 1;
            if !p.matches_stored(keys[p.dim]) {
                return false;
            }
        }
        true
    }

    /// Feeds a whole columnar [`ScanBatch`] into `acc`: a selection-vector
    /// cascade over the predicate columns, then the kernel absorbs the
    /// survivors straight from the batch.
    ///
    /// Charge-equivalent to calling [`filter_skipping`](Self::filter_skipping)
    /// plus [`AggKernel::absorb`] on every row: predicate `k` runs (and
    /// charges one `predicate_evals`) exactly for the rows that survived
    /// predicates `1..k` — the same rows the per-row short-circuit would
    /// have reached it with — and survivors absorb in row order, so
    /// results, counters, and the simulated clock are bit-identical to the
    /// row-at-a-time path. Only the memory access pattern changes: each
    /// predicate streams one dense `u32` column instead of striding across
    /// row-major tuples.
    #[allow(clippy::too_many_arguments)]
    pub fn feed_batch(
        &self,
        mode: CombineMode,
        skip_mask: u64,
        batch: &ScanBatch,
        acc: &mut GroupAcc,
        sel: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
        cpu: &mut CpuCounters,
    ) {
        let n = batch.len();
        let mut seeded = false;
        for p in &self.preds {
            if skip_mask & (1 << p.dim) != 0 {
                continue;
            }
            cpu.predicate_evals += if seeded { sel.len() } else { n } as u64;
            p.filter_col(batch.col(p.dim), sel, seeded);
            seeded = true;
        }
        if !seeded {
            sel.clear();
            sel.extend(0..n as u32);
        }
        for &i in sel.iter() {
            self.kernel
                .absorb_row(acc, mode, batch, i as usize, scratch, cpu);
        }
    }

    /// Extracts the aggregation key (rolled to the target levels) into
    /// `out`.
    pub fn agg_key_into(&self, keys: &[u32], out: &mut Vec<u32>) {
        out.clear();
        for &(d, div) in &self.agg_extract {
            out.push(keys[d] / div);
        }
    }

    /// True if the query has any predicate not covered by `skip_mask`.
    pub fn has_residual_preds(&self, skip_mask: u64) -> bool {
        self.preds.iter().any(|p| skip_mask & (1 << p.dim) == 0)
    }

    /// Dimensions carrying predicates, as a bit mask.
    pub fn pred_mask(&self) -> u64 {
        self.preds.iter().fold(0, |m, p| m | 1 << p.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{Dimension, GroupBy, GroupByQuery, MemberPred};

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 3, &[2, 10]),
                Dimension::uniform("B", 3, &[2, 10]),
            ],
            "m",
        )
    }

    #[test]
    fn compile_rejects_unanswerable() {
        let s = schema();
        let stored = GroupBy::parse(&s, "A'B'").unwrap();
        let q = GroupByQuery::unfiltered(GroupBy::finest(2));
        assert!(DimPipeline::compile(&s, &stored, &q).is_err());
    }

    #[test]
    fn probe_mask_reflects_levels() {
        let s = schema();
        let stored = GroupBy::finest(2);
        // Target A' B: A needs a probe (roll 0→1), B does not.
        let q = GroupByQuery::unfiltered(GroupBy::parse(&s, "A'B").unwrap());
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        assert_eq!(p.probe_mask(), 0b01);
        assert_eq!(p.build_rows(), 60);
        // Predicate at a coarser level also forces a probe.
        let q2 = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::All, MemberPred::eq(2, 0)],
        );
        let p2 = DimPipeline::compile(&s, &stored, &q2).unwrap();
        assert_eq!(p2.probe_mask(), 0b10);
        // Target == stored, pred at stored level: no probes at all.
        let q3 = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(0, 5), MemberPred::All],
        );
        let p3 = DimPipeline::compile(&s, &stored, &q3).unwrap();
        assert_eq!(p3.probe_mask(), 0);
        assert_eq!(p3.build_rows(), 0);
    }

    #[test]
    fn filter_rolls_and_tests() {
        let s = schema();
        let stored = GroupBy::finest(2);
        // A'' = A1 (top member 0): leaves 0..20 qualify.
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B").unwrap(),
            vec![MemberPred::eq(2, 0), MemberPred::All],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        assert!(p.filter(&[0, 0], &mut cpu));
        assert!(p.filter(&[19, 0], &mut cpu));
        assert!(!p.filter(&[20, 0], &mut cpu));
        assert_eq!(cpu.predicate_evals, 3);
    }

    #[test]
    fn filter_short_circuits() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(2, 0), MemberPred::eq(2, 0)],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        // First pred fails → second never evaluated.
        assert!(!p.filter(&[59, 0], &mut cpu));
        assert_eq!(cpu.predicate_evals, 1);
    }

    #[test]
    fn filter_skipping_honours_mask() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(2, 0), MemberPred::eq(2, 0)],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        // Skip dim 0's pred: tuple failing only on dim 0 now passes dim 1.
        assert!(p.filter_skipping(&[59, 0], &mut cpu, 0b01));
        assert_eq!(cpu.predicate_evals, 1);
        assert!(p.has_residual_preds(0b01));
        assert!(!p.has_residual_preds(0b11));
        assert_eq!(p.pred_mask(), 0b11);
    }

    #[test]
    fn agg_key_extraction() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::unfiltered(GroupBy::parse(&s, "A''B*").unwrap());
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut out = Vec::new();
        p.agg_key_into(&[25, 3], &mut out);
        assert_eq!(out, vec![1]); // leaf 25 → top 1; B aggregated away
        let q2 = GroupByQuery::unfiltered(GroupBy::parse(&s, "AB'").unwrap());
        let p2 = DimPipeline::compile(&s, &stored, &q2).unwrap();
        p2.agg_key_into(&[25, 33], &mut out);
        assert_eq!(out, vec![25, 3]);
    }

    #[test]
    fn compile_against_all_dimension() {
        let s = schema();
        let stored = GroupBy::new(vec![LevelRef::Level(1), LevelRef::All]);
        let q = GroupByQuery::unfiltered(GroupBy::new(vec![LevelRef::Level(2), LevelRef::All]));
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut out = Vec::new();
        p.agg_key_into(&[3, 0], &mut out);
        assert_eq!(out, vec![1]); // A' 3 → A'' 1
        assert_eq!(p.probe_mask(), 0b01);
    }
}
