//! Compiled per-query pipelines.
//!
//! Before execution, a query is *compiled against a source table* into a
//! [`DimPipeline`]: per-dimension divisors that roll stored keys up to the
//! predicate and target levels, the predicate member lists, and the set of
//! dimensions that require a dimension-table probe.
//!
//! In a real star schema the roll-up is a foreign-key join with a dimension
//! table; with dense member ids and uniform fan-outs it is integer
//! division. The *work accounting* still models the join: each tuple pays
//! one hash probe per dimension that needs mapping (shared across queries
//! by the shared operators — that is precisely the §3.1 "share hash tables
//! instead of redundantly building and probing" saving), and building those
//! tables costs one hash insert per dimension row.

use starshare_olap::{GroupBy, GroupByQuery, LevelRef, StarSchema};
use starshare_storage::CpuCounters;

use crate::error::ExecError;

/// One compiled predicate: roll the stored key up by `divisor`, then test
/// membership.
#[derive(Debug, Clone)]
struct PredStep {
    dim: usize,
    divisor: u32,
    /// Sorted member ids at the predicate level.
    members: Vec<u32>,
}

/// A query compiled against a specific source table.
#[derive(Debug, Clone)]
pub struct DimPipeline {
    preds: Vec<PredStep>,
    /// `(dim, divisor)` for each grouped dimension, in dimension order.
    agg_extract: Vec<(usize, u32)>,
    /// Bit `d` set iff dimension `d` needs a dimension-table probe (its
    /// target or predicate level is coarser than the stored level).
    probe_mask: u64,
    /// Rows to insert when building the needed dimension hash tables: the
    /// summed cardinality of the probed dimensions at their stored levels.
    build_rows: u64,
}

impl DimPipeline {
    /// Compiles `query` against a table storing `stored` levels.
    ///
    /// Fails if the table cannot answer the query.
    pub fn compile(
        schema: &StarSchema,
        stored: &GroupBy,
        query: &GroupByQuery,
    ) -> Result<Self, ExecError> {
        if !query.answerable_from(stored) {
            return Err(ExecError::new(format!(
                "query {} is not answerable from {}",
                query.display(schema),
                stored.display(schema)
            )));
        }
        let mut preds = Vec::new();
        let mut agg_extract = Vec::new();
        let mut probe_mask = 0u64;
        let mut build_rows = 0u64;
        for d in 0..schema.n_dims() {
            let dim = schema.dim(d);
            let s = match stored.level(d) {
                LevelRef::Level(s) => s,
                LevelRef::All => continue, // target and pred are All too
            };
            let mut needs_probe = false;
            if let LevelRef::Level(t) = query.group_by.level(d) {
                agg_extract.push((d, dim.cardinality(s) / dim.cardinality(t)));
                needs_probe |= t > s;
            }
            if let starshare_olap::MemberPred::In { level: p, members } = &query.preds[d] {
                preds.push(PredStep {
                    dim: d,
                    divisor: dim.cardinality(s) / dim.cardinality(*p),
                    members: members.clone(),
                });
                needs_probe |= *p > s;
            }
            if needs_probe {
                probe_mask |= 1 << d;
                build_rows += dim.cardinality(s) as u64;
            }
        }
        Ok(DimPipeline {
            preds,
            agg_extract,
            probe_mask,
            build_rows,
        })
    }

    /// Dimensions needing a dimension-table probe, as a bit mask.
    pub fn probe_mask(&self) -> u64 {
        self.probe_mask
    }

    /// Hash-table rows to build for this pipeline's probed dimensions.
    pub fn build_rows(&self) -> u64 {
        self.build_rows
    }

    /// Evaluates all predicates on a stored-key tuple, charging one
    /// predicate evaluation per step actually executed (short-circuit).
    pub fn filter(&self, keys: &[u32], cpu: &mut CpuCounters) -> bool {
        self.filter_skipping(keys, cpu, 0)
    }

    /// Like [`filter`](Self::filter) but skips predicates on dimensions in
    /// `skip_mask` (those already guaranteed by a bitmap-index lookup).
    pub fn filter_skipping(&self, keys: &[u32], cpu: &mut CpuCounters, skip_mask: u64) -> bool {
        for p in &self.preds {
            if skip_mask & (1 << p.dim) != 0 {
                continue;
            }
            cpu.predicate_evals += 1;
            let rolled = keys[p.dim] / p.divisor;
            if p.members.binary_search(&rolled).is_err() {
                return false;
            }
        }
        true
    }

    /// Extracts the aggregation key (rolled to the target levels) into
    /// `out`.
    pub fn agg_key_into(&self, keys: &[u32], out: &mut Vec<u32>) {
        out.clear();
        for &(d, div) in &self.agg_extract {
            out.push(keys[d] / div);
        }
    }

    /// True if the query has any predicate not covered by `skip_mask`.
    pub fn has_residual_preds(&self, skip_mask: u64) -> bool {
        self.preds.iter().any(|p| skip_mask & (1 << p.dim) == 0)
    }

    /// Dimensions carrying predicates, as a bit mask.
    pub fn pred_mask(&self) -> u64 {
        self.preds.iter().fold(0, |m, p| m | 1 << p.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{Dimension, GroupBy, GroupByQuery, MemberPred};

    fn schema() -> StarSchema {
        StarSchema::new(
            vec![
                Dimension::uniform("A", 3, &[2, 10]),
                Dimension::uniform("B", 3, &[2, 10]),
            ],
            "m",
        )
    }

    #[test]
    fn compile_rejects_unanswerable() {
        let s = schema();
        let stored = GroupBy::parse(&s, "A'B'").unwrap();
        let q = GroupByQuery::unfiltered(GroupBy::finest(2));
        assert!(DimPipeline::compile(&s, &stored, &q).is_err());
    }

    #[test]
    fn probe_mask_reflects_levels() {
        let s = schema();
        let stored = GroupBy::finest(2);
        // Target A' B: A needs a probe (roll 0→1), B does not.
        let q = GroupByQuery::unfiltered(GroupBy::parse(&s, "A'B").unwrap());
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        assert_eq!(p.probe_mask(), 0b01);
        assert_eq!(p.build_rows(), 60);
        // Predicate at a coarser level also forces a probe.
        let q2 = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::All, MemberPred::eq(2, 0)],
        );
        let p2 = DimPipeline::compile(&s, &stored, &q2).unwrap();
        assert_eq!(p2.probe_mask(), 0b10);
        // Target == stored, pred at stored level: no probes at all.
        let q3 = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(0, 5), MemberPred::All],
        );
        let p3 = DimPipeline::compile(&s, &stored, &q3).unwrap();
        assert_eq!(p3.probe_mask(), 0);
        assert_eq!(p3.build_rows(), 0);
    }

    #[test]
    fn filter_rolls_and_tests() {
        let s = schema();
        let stored = GroupBy::finest(2);
        // A'' = A1 (top member 0): leaves 0..20 qualify.
        let q = GroupByQuery::new(
            GroupBy::parse(&s, "A''B").unwrap(),
            vec![MemberPred::eq(2, 0), MemberPred::All],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        assert!(p.filter(&[0, 0], &mut cpu));
        assert!(p.filter(&[19, 0], &mut cpu));
        assert!(!p.filter(&[20, 0], &mut cpu));
        assert_eq!(cpu.predicate_evals, 3);
    }

    #[test]
    fn filter_short_circuits() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(2, 0), MemberPred::eq(2, 0)],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        // First pred fails → second never evaluated.
        assert!(!p.filter(&[59, 0], &mut cpu));
        assert_eq!(cpu.predicate_evals, 1);
    }

    #[test]
    fn filter_skipping_honours_mask() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::new(
            GroupBy::finest(2),
            vec![MemberPred::eq(2, 0), MemberPred::eq(2, 0)],
        );
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut cpu = CpuCounters::default();
        // Skip dim 0's pred: tuple failing only on dim 0 now passes dim 1.
        assert!(p.filter_skipping(&[59, 0], &mut cpu, 0b01));
        assert_eq!(cpu.predicate_evals, 1);
        assert!(p.has_residual_preds(0b01));
        assert!(!p.has_residual_preds(0b11));
        assert_eq!(p.pred_mask(), 0b11);
    }

    #[test]
    fn agg_key_extraction() {
        let s = schema();
        let stored = GroupBy::finest(2);
        let q = GroupByQuery::unfiltered(GroupBy::parse(&s, "A''B*").unwrap());
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut out = Vec::new();
        p.agg_key_into(&[25, 3], &mut out);
        assert_eq!(out, vec![1]); // leaf 25 → top 1; B aggregated away
        let q2 = GroupByQuery::unfiltered(GroupBy::parse(&s, "AB'").unwrap());
        let p2 = DimPipeline::compile(&s, &stored, &q2).unwrap();
        p2.agg_key_into(&[25, 33], &mut out);
        assert_eq!(out, vec![25, 3]);
    }

    #[test]
    fn compile_against_all_dimension() {
        let s = schema();
        let stored = GroupBy::new(vec![LevelRef::Level(1), LevelRef::All]);
        let q = GroupByQuery::unfiltered(GroupBy::new(vec![LevelRef::Level(2), LevelRef::All]));
        let p = DimPipeline::compile(&s, &stored, &q).unwrap();
        let mut out = Vec::new();
        p.agg_key_into(&[3, 0], &mut out);
        assert_eq!(out, vec![1]); // A' 3 → A'' 1
        assert_eq!(p.probe_mask(), 0b01);
    }
}
