//! Zone-map partition pruning for compressed heaps.
//!
//! Compressed heaps maintain per-zone (128-page partition) `(min, max)`
//! stored-key bounds for every dimension (see
//! [`HeapFile::zone_bounds`]). Because every hierarchy roll-up
//! (`id / fan_out`) is monotone non-decreasing in `id`, a zone's stored-key
//! interval `[lo, hi]` rolls up to the interval
//! `[roll_up(lo), roll_up(hi)]` at any coarser predicate level — so an
//! `In` predicate can possibly hold inside a zone **only** if one of its
//! members falls in that rolled interval. That check is conservative by
//! construction: it can keep a zone with no qualifying tuple, but it can
//! never drop a zone containing one, so skipping pruned zones leaves every
//! query's result bit-identical and only removes I/O that was guaranteed
//! to produce nothing.
//!
//! A shared scan serves *many* queries at once, so a zone is pruned only
//! when **no** query in the class can match it. Pruning is gated on
//! [`HeapFile::is_compressed`]: the uncompressed path keeps its historical
//! full-scan fault counts untouched.

use starshare_olap::{GroupByQuery, MemberPred, StarSchema, StoredTable};
use starshare_storage::HeapFile;

/// Whether any tuple in `zone` may satisfy `query`'s predicates,
/// judged from the zone's per-dimension key bounds alone.
///
/// Conservative: unknown cases (no stored level, predicate finer than the
/// stored level, uninitialized bounds) answer `true`.
pub(crate) fn zone_may_match(
    schema: &StarSchema,
    table: &StoredTable,
    heap: &HeapFile,
    zone: u32,
    query: &GroupByQuery,
) -> bool {
    for (d, pred) in query.preds.iter().enumerate() {
        let MemberPred::In { level, members } = pred else {
            continue;
        };
        let Some(stored) = table.stored_level(d) else {
            continue;
        };
        if *level < stored {
            // Predicate finer than the stored keys: bounds can't decide it.
            continue;
        }
        let (lo, hi) = heap.zone_bounds(zone, d);
        if lo > hi {
            continue;
        }
        let dim = schema.dim(d);
        let rlo = dim.roll_up(lo, stored, *level);
        let rhi = dim.roll_up(hi, stored, *level);
        // `members` is sorted: any member in [rlo, rhi]?
        let any = match members.binary_search(&rlo) {
            Ok(_) => true,
            Err(i) => members.get(i).is_some_and(|&m| m <= rhi),
        };
        if !any {
            return false;
        }
    }
    true
}

/// The tuple ranges a shared scan over `table` must visit to serve all of
/// `queries`: adjacent surviving zones coalesce into one `[lo, hi)` range.
///
/// `None` means "scan everything" — the heap is uncompressed (no zone
/// maps on the priced path), has at most one zone, or no zone could be
/// pruned — so callers fall back to the unpruned scan verbatim. `Some`
/// may be empty: every zone was excluded and the scan touches nothing.
pub(crate) fn keep_tuple_ranges<'q>(
    schema: &StarSchema,
    table: &StoredTable,
    queries: impl IntoIterator<Item = &'q GroupByQuery>,
) -> Option<Vec<(u64, u64)>> {
    let heap = table.heap();
    if !heap.is_compressed() {
        return None;
    }
    let n_zones = heap.zone_count();
    if n_zones <= 1 {
        return None;
    }
    let queries: Vec<&GroupByQuery> = queries.into_iter().collect();
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut pruned = false;
    for z in 0..n_zones {
        if queries
            .iter()
            .any(|q| zone_may_match(schema, table, heap, z, q))
        {
            let (lo, hi) = heap.zone_tuple_range(z);
            if lo == hi {
                continue;
            }
            match out.last_mut() {
                Some(r) if r.1 == lo => r.1 = hi,
                _ => out.push((lo, hi)),
            }
        } else {
            pruned = true;
        }
    }
    pruned.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{paper_schema, Cube, CubeBuilder, GroupByQuery};

    /// A base table clustered by dimension A (the only layout zone maps
    /// can prune) and stored compressed. No views: pruning is judged on
    /// the base table directly.
    fn cube() -> Cube {
        CubeBuilder::new(paper_schema(24))
            .rows(300_000)
            .seed(5)
            .cluster_by("A")
            .compress()
            .build()
    }

    /// Brute-force oracle: does any tuple in the zone satisfy the query?
    fn zone_truly_matches(
        cube: &starshare_olap::Cube,
        t: &StoredTable,
        zone: u32,
        q: &GroupByQuery,
    ) -> bool {
        let heap = t.heap();
        let (lo, hi) = heap.zone_tuple_range(zone);
        let mut keys = vec![0u32; cube.schema.n_dims()];
        (lo..hi).any(|pos| {
            heap.read_at(pos, &mut keys);
            q.preds.iter().enumerate().all(|(d, p)| {
                t.stored_level(d)
                    .map(|s| p.matches(&cube.schema, d, s, keys[d]))
                    .unwrap_or(true)
            })
        })
    }

    #[test]
    fn zone_check_never_drops_a_qualifying_zone() {
        let cube = cube();
        let tid = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table(tid);
        let heap = t.heap();
        assert!(heap.zone_count() > 1, "table too small to exercise zones");
        // A spread of selectivities, including predicates at coarser levels.
        let queries = [
            GroupByQuery::new(
                cube.groupby("A'B'C'D'"),
                vec![
                    MemberPred::eq(0, 0),
                    MemberPred::All,
                    MemberPred::All,
                    MemberPred::All,
                ],
            ),
            GroupByQuery::new(
                cube.groupby("A''B''C''D''"),
                vec![
                    MemberPred::All,
                    MemberPred::eq(2, 1),
                    MemberPred::members_in(1, vec![0, 3]),
                    MemberPred::All,
                ],
            ),
            GroupByQuery::new(
                cube.groupby("AB'C'D'"),
                vec![
                    MemberPred::members_in(0, vec![2, 11, 17]),
                    MemberPred::All,
                    MemberPred::All,
                    MemberPred::eq(1, 2),
                ],
            ),
        ];
        let mut pruned_some = false;
        for q in &queries {
            for z in 0..heap.zone_count() {
                let kept = zone_may_match(&cube.schema, t, heap, z, q);
                if zone_truly_matches(&cube, t, z, q) {
                    assert!(kept, "zone {z} has qualifying tuples but was pruned");
                }
                pruned_some |= !kept;
            }
        }
        assert!(pruned_some, "no zone pruned on any query: test is vacuous");
    }

    #[test]
    fn ranges_cover_exactly_the_surviving_zones() {
        let cube = cube();
        let tid = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table(tid);
        let heap = t.heap();
        let q = GroupByQuery::new(
            cube.groupby("A'B'C'D'"),
            vec![
                MemberPred::eq(0, 3),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let ranges = keep_tuple_ranges(&cube.schema, t, [&q])
            .expect("leaf-sorted dim 0 must prune some zones");
        // Ranges are sorted, disjoint, non-empty, and their union is the
        // union of surviving zones.
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "coalesced ranges never touch");
        }
        let mut covered = 0u64;
        for &(lo, hi) in &ranges {
            assert!(lo < hi);
            covered += hi - lo;
        }
        let expect: u64 = (0..heap.zone_count())
            .filter(|&z| zone_may_match(&cube.schema, t, heap, z, &q))
            .map(|z| {
                let (lo, hi) = heap.zone_tuple_range(z);
                hi - lo
            })
            .sum();
        assert_eq!(covered, expect);
        assert!(covered < heap.n_tuples(), "something must be pruned");
    }

    #[test]
    fn uncompressed_heaps_never_prune() {
        // Clustered but NOT compressed: the priced path has no zone maps.
        let cube = CubeBuilder::new(paper_schema(24))
            .rows(50_000)
            .seed(5)
            .cluster_by("A")
            .build();
        let tid = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table(tid);
        let q = GroupByQuery::new(
            cube.groupby("A'B'C'D'"),
            vec![
                MemberPred::eq(0, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        assert!(keep_tuple_ranges(&cube.schema, t, [&q]).is_none());
    }

    #[test]
    fn pruned_execution_is_bit_identical_to_unpruned() {
        use crate::context::ExecContext;
        use crate::operators::shared_hybrid_join;
        use crate::parallel::{execute_classes_with, ClassSpec, ExecStrategy, MorselSpec};

        let build = |compress: bool| {
            let b = CubeBuilder::new(paper_schema(24))
                .rows(300_000)
                .seed(9)
                .cluster_by("A");
            if compress {
                b.compress().build()
            } else {
                b.build()
            }
        };
        let plain = build(false);
        let comp = build(true);
        let queries = |cube: &Cube| {
            vec![
                GroupByQuery::new(
                    cube.groupby("A'B'C'D'"),
                    vec![
                        MemberPred::eq(0, 7),
                        MemberPred::All,
                        MemberPred::All,
                        MemberPred::All,
                    ],
                ),
                GroupByQuery::new(
                    cube.groupby("A''B''C''D''"),
                    vec![
                        MemberPred::members_in(1, vec![0, 4]),
                        MemberPred::eq(2, 2),
                        MemberPred::All,
                        MemberPred::All,
                    ],
                ),
            ]
        };
        let run_seq = |cube: &Cube| {
            let tid = cube.catalog.base_table().unwrap();
            let mut ctx = ExecContext::paper_1998();
            shared_hybrid_join(&mut ctx, cube, tid, &queries(cube), &[]).unwrap()
        };
        let (plain_rs, plain_rep) = run_seq(&plain);
        let (comp_rs, comp_rep) = run_seq(&comp);
        assert_eq!(plain_rs, comp_rs, "pruning must not move a single bit");
        assert!(
            comp_rep.io.seq_faults < plain_rep.io.seq_faults,
            "pruning must skip whole zones ({} vs {})",
            comp_rep.io.seq_faults,
            plain_rep.io.seq_faults
        );
        assert!(
            comp_rep.io.bytes_scanned() * 2 < plain_rep.io.bytes_scanned(),
            "compression + pruning must at least halve bytes scanned"
        );

        // The parallel morsel path prunes with the same query set, so it
        // matches the sequential operator exactly — results and fault
        // counts — at any thread count.
        let tid = comp.catalog.base_table().unwrap();
        for threads in [1usize, 4] {
            let mut ctx = ExecContext::paper_1998();
            let out = execute_classes_with(
                &mut ctx,
                &comp,
                &[ClassSpec {
                    table: tid,
                    hash_queries: queries(&comp),
                    index_queries: vec![],
                }],
                threads,
                ExecStrategy::Morsel(MorselSpec::default()),
            )
            .unwrap();
            assert_eq!(out[0].results, comp_rs, "{threads} threads");
            assert_eq!(out[0].report.io.seq_faults, comp_rep.io.seq_faults);
            assert_eq!(
                out[0].report.io.bytes_scanned(),
                comp_rep.io.bytes_scanned()
            );
        }
    }

    #[test]
    fn unselective_queries_defeat_pruning_for_the_whole_class() {
        let cube = cube();
        let tid = cube.catalog.base_table().unwrap();
        let t = cube.catalog.table(tid);
        let selective = GroupByQuery::new(
            cube.groupby("A'B'C'D'"),
            vec![
                MemberPred::eq(0, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let broad = GroupByQuery::new(
            cube.groupby("A'B'C'D'"),
            vec![
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        assert!(keep_tuple_ranges(&cube.schema, t, [&selective]).is_some());
        // One predicate-free query in the class keeps every zone alive.
        assert!(keep_tuple_ranges(&cube.schema, t, [&selective, &broad]).is_none());
    }
}
