//! Lattice-subsumption result cache.
//!
//! A bounded, epoch-aware cache of [`QueryResult`]s, shared by every
//! session an engine serves. Entries are keyed on the full query identity —
//! target group-by, predicate set, aggregate — plus the cube's data
//! *epoch* (bumped by `starshare_olap::append_facts`), so stale answers
//! can never leak across a data change. An epoch move carries entries
//! forward two ways: [`ResultCache::apply_append`] **delta-patches** live
//! entries with the appended rows (the streaming-append fast path), while
//! [`ResultCache::advance_epoch`] drops everything stale (the fallback for
//! any other data change).
//!
//! Lookups answer two ways:
//!
//! * an **exact hit** returns the stored result directly (a memory read —
//!   charged nothing on the simulated clock, matching the engine's
//!   long-standing repeated-query semantics);
//! * a **subsumption hit** finds a cached *strictly finer* entry whose
//!   predicates cover the probe (Gray et al.'s data-cube derivability:
//!   a coarser group-by is re-aggregable from any finer one) and answers
//!   by rolling the cached rows up through the existing [`DimPipeline`]
//!   divisors. The rollup is charged honestly on the deterministic sim
//!   clock: one predicate evaluation per compiled step per cached row
//!   (short-circuit), one hash probe and one aggregate update per
//!   surviving row, and one tuple copy per emitted group — CPU over the
//!   cached rows instead of scan I/O over the base table.
//!
//! Eviction is **cost-based**, not LRU: each entry carries a *benefit* —
//! the simulated time a hit saves, seeded with the production cost of the
//! entry and grown on every hit — and the entry with the lowest
//! benefit-per-byte is evicted first whenever the configured byte budget
//! overflows. An entry larger than the whole budget is never admitted.
//!
//! ### Why rollups are bit-identical
//!
//! Re-aggregating a finer SUM result reassociates float addition, which is
//! only safe because the synthetic measure is quantized to exact binary
//! fractions (see `starshare_olap::datagen`): sums over them are exact, so
//! a subsumption rollup reproduces direct evaluation bit-for-bit — the
//! invariant the testkit's `cache` differential and the cache bench gate
//! on. MIN/MAX/COUNT re-aggregate exactly by construction; AVG is not
//! re-aggregable and is answered only by exact hits.

use std::collections::BTreeMap;

use starshare_olap::{AggFn, GroupBy, GroupByQuery, LevelRef, MemberPred, StarSchema};
use starshare_storage::{CpuCounters, HardwareModel, SimTime};

use crate::context::ExecReport;
use crate::result::QueryResult;
use crate::rollup::DimPipeline;

/// Fixed per-entry overhead charged to the byte budget (key vector headers,
/// bookkeeping) on top of the row payload.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Counters describing everything a [`ResultCache`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by an identical cached entry.
    pub exact_hits: u64,
    /// Probes answered by rolling up a strictly finer cached entry.
    pub subsumption_hits: u64,
    /// Probes no cached entry could answer.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries dropped by an epoch bump.
    pub invalidations: u64,
    /// Entries carried across an append by delta patching.
    pub patched: u64,
    /// Entries dropped during an append patch because their aggregate is
    /// not delta-maintainable (AVG) or their predicates failed to compile.
    pub patch_drops: u64,
}

impl CacheStats {
    /// Total hits (exact + subsumption).
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.subsumption_hits
    }

    /// Hits over probes (1.0 when nothing was probed).
    pub fn hit_ratio(&self) -> f64 {
        let probes = self.hits() + self.misses;
        if probes == 0 {
            1.0
        } else {
            self.hits() as f64 / probes as f64
        }
    }

    /// The activity between an `earlier` snapshot and this one (counters
    /// are monotone, so per-field subtraction is the interval's delta).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            exact_hits: self.exact_hits - earlier.exact_hits,
            subsumption_hits: self.subsumption_hits - earlier.subsumption_hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
            patched: self.patched - earlier.patched,
            patch_drops: self.patch_drops - earlier.patch_drops,
        }
    }

    /// JSON object with stable key order (declaration order).
    pub fn to_json(&self) -> String {
        let mut o = starshare_obs::json::Obj::new();
        o.field_u64("exact_hits", self.exact_hits);
        o.field_u64("subsumption_hits", self.subsumption_hits);
        o.field_u64("misses", self.misses);
        o.field_u64("insertions", self.insertions);
        o.field_u64("evictions", self.evictions);
        o.field_u64("invalidations", self.invalidations);
        o.field_u64("patched", self.patched);
        o.field_u64("patch_drops", self.patch_drops);
        o.field_f64("hit_ratio", self.hit_ratio());
        o.finish()
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} exact / {} subsumption hits, {} misses ({:.0}% hit); {} inserted, {} evicted, {} invalidated, {} patched (+{} drops)",
            self.exact_hits,
            self.subsumption_hits,
            self.misses,
            self.hit_ratio() * 100.0,
            self.insertions,
            self.evictions,
            self.invalidations,
            self.patched,
            self.patch_drops
        )
    }
}

/// How a cache lookup answered.
#[derive(Debug)]
pub enum CacheHit {
    /// An identical entry: the stored result, a memory read.
    Exact {
        /// The stored answer.
        result: QueryResult,
        /// True when the entry was carried to the current epoch by a
        /// streaming-append delta patch (telemetry provenance).
        patched: bool,
    },
    /// A strictly finer covering entry, rolled up to the probe: the
    /// derived result plus the rollup's CPU charge on the simulated clock.
    Subsumption {
        /// The rolled-up answer.
        result: QueryResult,
        /// The rollup's cost: CPU over the cached rows, zero I/O.
        report: ExecReport,
    },
}

impl CacheHit {
    /// The answer, whichever way it was produced.
    pub fn into_result(self) -> QueryResult {
        match self {
            CacheHit::Exact { result, .. } => result,
            CacheHit::Subsumption { result, .. } => result,
        }
    }

    /// True for a subsumption (non-exact) hit.
    pub fn is_subsumption(&self) -> bool {
        matches!(self, CacheHit::Subsumption { .. })
    }
}

#[derive(Debug)]
struct Entry {
    query: GroupByQuery,
    result: QueryResult,
    /// Cube epoch the result was computed at.
    epoch: u64,
    /// Byte-budget charge of this entry.
    bytes: usize,
    /// Simulated cost of producing the result — what one future hit saves.
    base_cost: SimTime,
    /// Accumulated saved simulated time: the eviction benefit.
    benefit: SimTime,
    /// Insertion sequence, for deterministic eviction ties.
    seq: u64,
    /// True once a streaming append has delta-patched this entry.
    patched: bool,
}

/// The bounded, subsumption-aware, epoch-invalidated result cache.
///
/// Entries live in insertion order and are probed linearly — cache
/// populations are small (bounded by the byte budget) and a deterministic
/// order is what makes eviction, and therefore every downstream simulated
/// time, reproducible run to run.
#[derive(Debug)]
pub struct ResultCache {
    entries: Vec<Entry>,
    max_bytes: usize,
    bytes: usize,
    epoch: u64,
    next_seq: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache bounded to `max_bytes` of result payload.
    pub fn new(max_bytes: usize) -> Self {
        ResultCache {
            entries: Vec::new(),
            max_bytes,
            bytes: 0,
            epoch: 0,
            next_seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// The epoch the cache currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Moves the cache to `epoch`, dropping every entry computed at an
    /// older one. A no-op when the epoch is unchanged.
    pub fn advance_epoch(&mut self, epoch: u64) {
        if epoch == self.epoch {
            return;
        }
        self.epoch = epoch;
        let before = self.entries.len();
        self.entries.retain(|e| e.epoch == epoch);
        self.stats.invalidations += (before - self.entries.len()) as u64;
        self.bytes = self.entries.iter().map(|e| e.bytes).sum();
    }

    /// Moves the cache to `epoch` by **delta-patching** every live entry
    /// with the appended `rows` instead of dropping it: the delta is
    /// aggregated once at the leaf per cached aggregate, then rolled up
    /// through each entry's [`DimPipeline`] (the same divisors the scan
    /// uses) and merged into the entry's stored rows. Sound for SUM and
    /// COUNT unconditionally and for MIN/MAX under the engine's
    /// insert-only append model; AVG entries — and any entry whose
    /// predicates fail to compile against the leaf — are dropped, counted
    /// in [`CacheStats::patch_drops`]. A delta row an entry's predicates
    /// reject leaves that entry untouched (but still carried to the new
    /// epoch); a delta row grouping to a key the entry has never seen
    /// inserts a fresh row at its sorted position. Patched entries can
    /// grow, so the byte budget is re-enforced afterwards — a patch can
    /// race entries out of the cache.
    ///
    /// The patch work is charged on the deterministic simulated clock and
    /// returned as a pure-CPU [`ExecReport`]: one hash probe plus one
    /// aggregate update per raw row per leaf delta built, one predicate
    /// cascade per leaf delta group per entry, one probe plus update per
    /// surviving group, and one tuple copy per merged row. A no-op (equal
    /// epoch) returns an empty report.
    pub fn apply_append(
        &mut self,
        schema: &StarSchema,
        epoch: u64,
        rows: &[(Vec<u32>, f64)],
        model: &HardwareModel,
    ) -> ExecReport {
        if epoch == self.epoch {
            return ExecReport::default();
        }
        let from = self.epoch;
        self.epoch = epoch;
        let finest = GroupBy::finest(schema.n_dims());

        let mut cpu = CpuCounters::default();
        // Leaf deltas, aggregated once per cached aggregate and shared by
        // every entry carrying it.
        let mut leaf_deltas: Vec<(AggFn, BTreeMap<Vec<u32>, f64>)> = Vec::new();

        let mut kept = Vec::with_capacity(self.entries.len());
        let mut bytes = 0usize;
        for mut e in std::mem::take(&mut self.entries) {
            if e.epoch != from {
                // Predates even the epoch we are patching from: stale.
                self.stats.invalidations += 1;
                continue;
            }
            if e.query.agg == AggFn::Avg {
                self.stats.patch_drops += 1;
                continue;
            }
            let pipeline = match DimPipeline::compile(schema, &finest, &e.query) {
                Ok(p) => p,
                Err(_) => {
                    self.stats.patch_drops += 1;
                    continue;
                }
            };
            let agg = e.query.agg;
            let delta = match leaf_deltas.iter().position(|(a, _)| *a == agg) {
                Some(i) => &leaf_deltas[i].1,
                None => {
                    let mut d: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
                    for (key, m) in rows {
                        cpu.hash_probes += 1;
                        cpu.agg_updates += 1;
                        let v = match agg {
                            AggFn::Sum => *m,
                            AggFn::Count => 1.0,
                            AggFn::Min | AggFn::Max => *m,
                            AggFn::Avg => unreachable!("AVG dropped above"),
                        };
                        match d.entry(key.clone()) {
                            std::collections::btree_map::Entry::Vacant(slot) => {
                                slot.insert(v);
                            }
                            std::collections::btree_map::Entry::Occupied(mut slot) => {
                                let acc = slot.get_mut();
                                *acc = combine(agg, *acc, v);
                            }
                        }
                    }
                    leaf_deltas.push((agg, d));
                    &leaf_deltas.last().expect("just pushed").1
                }
            };

            // Roll the leaf delta up into the entry's key space.
            let mut patch: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
            let mut out_key = Vec::new();
            for (key, m) in delta {
                if !pipeline.filter(key, &mut cpu) {
                    continue;
                }
                pipeline.agg_key_into(key, &mut out_key);
                cpu.hash_probes += 1;
                cpu.agg_updates += 1;
                match patch.entry(out_key.clone()) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(*m);
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        let acc = slot.get_mut();
                        *acc = combine(agg, *acc, *m);
                    }
                }
            }
            // Merge into the entry's sorted rows: existing groups combine,
            // brand-new groups insert at their sorted position.
            for (k, dv) in patch {
                cpu.tuple_copies += 1;
                match e.result.rows.binary_search_by(|(rk, _)| rk.cmp(&k)) {
                    Ok(i) => {
                        let acc = &mut e.result.rows[i].1;
                        *acc = combine(agg, *acc, dv);
                    }
                    Err(i) => e.result.rows.insert(i, (k, dv)),
                }
            }
            e.bytes = result_bytes(&e.result);
            e.epoch = epoch;
            e.patched = true;
            self.stats.patched += 1;
            bytes += e.bytes;
            kept.push(e);
        }
        self.entries = kept;
        self.bytes = bytes;
        self.evict_to_budget();

        let sim = model.cpu_time(&cpu);
        ExecReport {
            cpu,
            sim,
            critical: sim,
            ..ExecReport::default()
        }
    }

    /// True when an identical query is cached at the current epoch.
    pub fn contains_exact(&self, query: &GroupByQuery) -> bool {
        self.entries
            .iter()
            .any(|e| e.epoch == self.epoch && e.query == *query)
    }

    /// Probes the cache: an exact entry wins; otherwise the smallest
    /// covering strictly-finer entry is rolled up through a
    /// [`DimPipeline`]. Returns `None` on a miss.
    pub fn lookup(
        &mut self,
        schema: &StarSchema,
        probe: &GroupByQuery,
        model: &HardwareModel,
    ) -> Option<CacheHit> {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.epoch == self.epoch && e.query == *probe)
        {
            // The hit saved re-producing the result.
            e.benefit += e.base_cost;
            self.stats.exact_hits += 1;
            let result = e.result.clone();
            return Some(CacheHit::Exact {
                result,
                patched: e.patched,
            });
        }

        // Subsumption: among covering finer entries, roll up the one with
        // the fewest rows (cheapest rollup); ties go to the oldest entry.
        let candidate = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.epoch == self.epoch && covers(schema, &e.query, probe))
            .min_by_key(|(_, e)| (e.result.rows.len(), e.seq))
            .map(|(i, _)| i);
        if let Some(i) = candidate {
            match roll_up(schema, &self.entries[i].result, probe, model) {
                Ok((result, report)) => {
                    let e = &mut self.entries[i];
                    // Credit the saved time: the probe avoided producing a
                    // result of (at least) this entry's class, paying only
                    // the rollup.
                    e.benefit += e.base_cost.saturating_sub(report.sim);
                    self.stats.subsumption_hits += 1;
                    return Some(CacheHit::Subsumption { result, report });
                }
                Err(_) => {
                    // Defensive: a covering entry the pipeline rejects is a
                    // coverage-rule bug; degrade to a miss rather than fail
                    // the query.
                    debug_assert!(false, "covering cache entry failed to compile");
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Admits a result produced at the current epoch, seeded with the
    /// simulated `cost` of producing it (the benefit a future hit saves).
    /// Skips silently when an identical entry already exists or the result
    /// alone exceeds the whole budget; evicts lowest benefit-per-byte
    /// entries until the budget holds.
    pub fn insert(&mut self, query: GroupByQuery, result: QueryResult, cost: SimTime) {
        if self.contains_exact(&query) {
            return;
        }
        let bytes = result_bytes(&result);
        if bytes > self.max_bytes {
            return;
        }
        self.entries.push(Entry {
            query,
            result,
            epoch: self.epoch,
            bytes,
            base_cost: cost,
            benefit: cost,
            seq: self.next_seq,
            patched: false,
        });
        self.next_seq += 1;
        self.bytes += bytes;
        self.stats.insertions += 1;
        self.evict_to_budget();
    }

    /// Evicts lowest benefit-per-byte entries (ties: oldest first) until
    /// the byte budget holds.
    fn evict_to_budget(&mut self) {
        while self.bytes > self.max_bytes {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = a.benefit.as_nanos() as u128 * b.bytes as u128;
                    let db = b.benefit.as_nanos() as u128 * a.bytes as u128;
                    da.cmp(&db).then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i)
                .expect("over budget implies at least one entry");
            let e = self.entries.remove(victim);
            self.bytes -= e.bytes;
            self.stats.evictions += 1;
        }
    }
}

/// Combines two partial aggregates of the same re-aggregable function.
fn combine(agg: AggFn, a: f64, b: f64) -> f64 {
    match agg {
        // SUM cells add; COUNT cells (already counts) add too.
        AggFn::Sum | AggFn::Count => a + b,
        AggFn::Min => a.min(b),
        AggFn::Max => a.max(b),
        AggFn::Avg => unreachable!("AVG is never delta-combined"),
    }
}

/// Byte-budget charge of one result: fixed overhead plus the row payload
/// (one `u32` per key component, one `f64` measure per row).
pub fn result_bytes(result: &QueryResult) -> usize {
    let key_width = result.rows.first().map_or(0, |(k, _)| k.len());
    ENTRY_OVERHEAD_BYTES + result.rows.len() * (key_width * 4 + 8)
}

/// True when a probe is answerable from `cached`'s result by re-aggregation:
/// same re-aggregable aggregate, the cached group-by derives everything the
/// probe needs, and every cached predicate covers the probe's on that
/// dimension (no row the probe wants was filtered away).
fn covers(schema: &StarSchema, cached: &GroupByQuery, probe: &GroupByQuery) -> bool {
    if cached.agg != probe.agg || probe.agg == AggFn::Avg {
        // AVG is not re-aggregable; everything else combines exactly.
        return false;
    }
    if !probe.answerable_from(&cached.group_by) {
        return false;
    }
    cached
        .preds
        .iter()
        .zip(&probe.preds)
        .enumerate()
        .all(|(d, (cp, pp))| pred_covers(schema, d, cp, pp))
}

/// True when every row the probe's predicate wants on dimension `d`
/// survived the cached predicate — i.e. the cached filter is a superset of
/// the probe's, possibly at a different hierarchy level. (`MemberPred::In`
/// members are sorted and deduplicated, so binary search applies.)
fn pred_covers(schema: &StarSchema, d: usize, cached: &MemberPred, probe: &MemberPred) -> bool {
    match (cached, probe) {
        // An unfiltered cached dimension covers any probe predicate.
        (MemberPred::All, _) => true,
        // A filtered cached dimension cannot cover an unfiltered probe.
        (MemberPred::In { .. }, MemberPred::All) => false,
        (
            MemberPred::In {
                level: lc,
                members: mc,
            },
            MemberPred::In {
                level: lp,
                members: mp,
            },
        ) => {
            if lc == lp {
                return mp.iter().all(|m| mc.binary_search(m).is_ok());
            }
            let dim = schema.dim(d);
            if lc < lp {
                // Cached filtered at a finer level: every finer member
                // under a wanted coarser member must have been kept.
                (0..dim.cardinality(*lc)).all(|x| {
                    mp.binary_search(&dim.roll_up(x, *lc, *lp)).is_err()
                        || mc.binary_search(&x).is_ok()
                })
            } else {
                // Cached filtered at a coarser level: every wanted finer
                // member's ancestor must have been kept.
                mp.iter()
                    .all(|m| mc.binary_search(&dim.roll_up(*m, *lp, *lc)).is_ok())
            }
        }
    }
}

/// Rolls a cached finer result up to `probe`, charging the work on the
/// simulated clock: the cached rows play the part of a (tiny) stored
/// table whose "stored levels" are the cached query's group-by.
fn roll_up(
    schema: &StarSchema,
    cached: &QueryResult,
    probe: &GroupByQuery,
    model: &HardwareModel,
) -> Result<(QueryResult, ExecReport), crate::error::ExecError> {
    let stored = &cached.query.group_by;
    let pipeline = DimPipeline::compile(schema, stored, probe)?;

    // Cached row keys hold only the grouped dimensions (in dimension
    // order); re-expand each to the full dimension-indexed width the
    // pipeline addresses. All-aggregated dimensions stay 0 — derivability
    // guarantees the probe neither groups nor filters them.
    let grouped: Vec<usize> = (0..schema.n_dims())
        .filter(|&d| matches!(stored.level(d), LevelRef::Level(_)))
        .collect();

    let mut cpu = CpuCounters::default();
    let mut groups: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut full = vec![0u32; schema.n_dims()];
    let mut out_key = Vec::new();
    for (key, m) in &cached.rows {
        debug_assert_eq!(key.len(), grouped.len());
        for (slot, &d) in grouped.iter().enumerate() {
            full[d] = key[slot];
        }
        if !pipeline.filter(&full, &mut cpu) {
            continue;
        }
        pipeline.agg_key_into(&full, &mut out_key);
        cpu.hash_probes += 1;
        cpu.agg_updates += 1;
        match groups.entry(out_key.clone()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(*m);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let acc = o.get_mut();
                *acc = match probe.agg {
                    // SUM cells add; COUNT cells (already counts) add too.
                    AggFn::Sum | AggFn::Count => *acc + m,
                    AggFn::Min => acc.min(*m),
                    AggFn::Max => acc.max(*m),
                    AggFn::Avg => unreachable!("AVG rejected by covers()"),
                };
            }
        }
    }
    cpu.tuple_copies += groups.len() as u64;
    let sim = model.cpu_time(&cpu);
    let report = ExecReport {
        cpu,
        sim,
        critical: sim,
        ..ExecReport::default()
    };
    Ok((QueryResult::from_groups(probe.clone(), groups), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_eval;
    use starshare_olap::{lattice_nodes, paper_cube, GroupBy, PaperCubeSpec};

    fn cube() -> starshare_olap::Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 300,
            d_leaf: 24,
            seed: 11,
            with_indexes: false,
        })
    }

    fn model() -> HardwareModel {
        HardwareModel::paper_1998()
    }

    fn rows_bits(r: &QueryResult) -> Vec<(Vec<u32>, u64)> {
        r.rows
            .iter()
            .map(|(k, m)| (k.clone(), m.to_bits()))
            .collect()
    }

    #[test]
    fn exact_hit_returns_the_stored_result() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let q = GroupByQuery::unfiltered(cube.groupby("A''B''C''D*"));
        let r = reference_eval(&cube, base, &q);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(q.clone(), r.clone(), SimTime::from_nanos(1_000_000));
        let hit = cache.lookup(&cube.schema, &q, &model()).expect("hit");
        assert!(!hit.is_subsumption());
        assert_eq!(rows_bits(&hit.into_result()), rows_bits(&r));
        assert_eq!(cache.stats().exact_hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }

    /// The keystone property: for *every* derivable pair of lattice nodes
    /// on the paper schema, answering the coarser query by rolling up a
    /// cached finer result is bit-identical to evaluating the coarser
    /// query directly from the base table. (Exact because the synthetic
    /// measure is quantized — see the module docs.)
    #[test]
    fn rollup_from_finer_matches_direct_evaluation_for_every_derivable_pair() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let mut nodes = lattice_nodes(&cube.schema);
        nodes.push(GroupBy::finest(cube.schema.n_dims()));
        let results: Vec<QueryResult> = nodes
            .iter()
            .map(|g| reference_eval(&cube, base, &GroupByQuery::unfiltered(g.clone())))
            .collect();

        let mut pairs = 0usize;
        let mut subsumption_hits = 0usize;
        for (fi, finer) in nodes.iter().enumerate() {
            for (ci, coarser) in nodes.iter().enumerate() {
                if fi == ci || !finer.derives(coarser) {
                    continue;
                }
                pairs += 1;
                let probe = GroupByQuery::unfiltered(coarser.clone());
                let mut cache = ResultCache::new(usize::MAX);
                cache.insert(
                    GroupByQuery::unfiltered(finer.clone()),
                    results[fi].clone(),
                    SimTime::from_nanos(1_000_000),
                );
                let hit = cache
                    .lookup(&cube.schema, &probe, &model())
                    .unwrap_or_else(|| panic!("derivable pair {fi}->{ci} missed"));
                assert!(hit.is_subsumption());
                subsumption_hits += 1;
                assert_eq!(
                    rows_bits(&hit.into_result()),
                    rows_bits(&results[ci]),
                    "rollup {} -> {} must be bit-identical to direct evaluation",
                    finer.display(&cube.schema),
                    coarser.display(&cube.schema),
                );
            }
        }
        assert!(
            pairs > 100,
            "paper lattice has many derivable pairs: {pairs}"
        );
        assert_eq!(pairs, subsumption_hits);
    }

    #[test]
    fn covering_predicates_roll_up_bit_identically() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        // Cached: finer group-by, superset members on A at level 1.
        let cached_q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1, 2]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        // Probe: coarser group-by, subset members on A, extra pred on B.
        let probe = GroupByQuery::new(
            cube.groupby("A''B''C*D"),
            vec![
                MemberPred::members_in(1, vec![0, 2]),
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let cached_r = reference_eval(&cube, base, &cached_q);
        let direct = reference_eval(&cube, base, &probe);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(cached_q, cached_r, SimTime::from_nanos(1_000_000));
        let hit = cache.lookup(&cube.schema, &probe, &model()).expect("hit");
        assert!(hit.is_subsumption());
        let CacheHit::Subsumption { result, report } = hit else {
            unreachable!()
        };
        assert_eq!(rows_bits(&result), rows_bits(&direct));
        // The rollup is charged: predicate evals + probes + agg updates.
        assert!(report.sim > SimTime::ZERO);
        assert!(report.cpu.predicate_evals > 0);
        assert_eq!(report.io.seq_faults + report.io.random_faults, 0);
    }

    /// Cross-level coverage: a cached filter at a finer level covers a
    /// probe filter at a coarser level exactly when every finer member
    /// under the wanted coarser members was kept.
    #[test]
    fn cross_level_predicates_cover_when_the_member_set_matches() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        // A has fan-out 2 from level 2 to level 1: level-2 member 0 owns
        // level-1 members {0, 1}.
        let all = MemberPred::All;
        let cached_q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1]),
                all.clone(),
                all.clone(),
                all.clone(),
            ],
        );
        let probe = GroupByQuery::new(
            cube.groupby("A''B''C''D*"),
            vec![MemberPred::eq(2, 0), all.clone(), all.clone(), all.clone()],
        );
        let cached_r = reference_eval(&cube, base, &cached_q);
        let direct = reference_eval(&cube, base, &probe);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(cached_q, cached_r, SimTime::from_nanos(1_000_000));
        let hit = cache
            .lookup(&cube.schema, &probe, &model())
            .expect("finer filter covering the whole coarser member must hit");
        assert!(hit.is_subsumption());
        assert_eq!(rows_bits(&hit.into_result()), rows_bits(&direct));

        // A *partial* child set does not cover the coarser member.
        let partial_q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![MemberPred::eq(1, 0), all.clone(), all.clone(), all],
        );
        let partial_r = reference_eval(&cube, base, &partial_q);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(partial_q, partial_r, SimTime::from_nanos(1));
        assert!(cache.lookup(&cube.schema, &probe, &model()).is_none());
    }

    #[test]
    fn non_covering_predicates_miss() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        // Cached entry filtered to members {0}; probe wants {0, 1}.
        let cached_q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let probe = GroupByQuery::new(
            cube.groupby("A''B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let r = reference_eval(&cube, base, &cached_q);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(cached_q, r, SimTime::from_nanos(1));
        assert!(cache.lookup(&cube.schema, &probe, &model()).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn avg_is_never_answered_by_subsumption() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let finer = GroupByQuery::unfiltered(cube.groupby("A'B''C''D")).with_agg(AggFn::Avg);
        let coarser = GroupByQuery::unfiltered(cube.groupby("A''B''C''D")).with_agg(AggFn::Avg);
        let r = reference_eval(&cube, base, &finer);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(finer.clone(), r, SimTime::from_nanos(1));
        assert!(cache.lookup(&cube.schema, &coarser, &model()).is_none());
        // The identical AVG query still exact-hits.
        assert!(cache.lookup(&cube.schema, &finer, &model()).is_some());
    }

    #[test]
    fn min_max_count_roll_up_correctly() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        for agg in [AggFn::Min, AggFn::Max, AggFn::Count] {
            let finer = GroupByQuery::unfiltered(cube.groupby("A'B''C''D")).with_agg(agg);
            let coarser = GroupByQuery::unfiltered(cube.groupby("A''B*C''D*")).with_agg(agg);
            let cached = reference_eval(&cube, base, &finer);
            let direct = reference_eval(&cube, base, &coarser);
            let mut cache = ResultCache::new(1 << 20);
            cache.insert(finer, cached, SimTime::from_nanos(1_000_000));
            let hit = cache
                .lookup(&cube.schema, &coarser, &model())
                .unwrap_or_else(|| panic!("{agg} should subsumption-hit"));
            assert!(hit.is_subsumption());
            assert_eq!(rows_bits(&hit.into_result()), rows_bits(&direct), "{agg}");
        }
    }

    #[test]
    fn mismatched_aggregates_do_not_cover() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let finer = GroupByQuery::unfiltered(cube.groupby("A'B''C''D"));
        let coarser = GroupByQuery::unfiltered(cube.groupby("A''B''C''D")).with_agg(AggFn::Count);
        let r = reference_eval(&cube, base, &finer);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(finer, r, SimTime::from_nanos(1));
        assert!(
            cache.lookup(&cube.schema, &coarser, &model()).is_none(),
            "a SUM entry must not answer a COUNT probe"
        );
    }

    #[test]
    fn epoch_bump_invalidates_and_keys_by_epoch() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let q = GroupByQuery::unfiltered(cube.groupby("A''B''C''D*"));
        let r = reference_eval(&cube, base, &q);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(q.clone(), r.clone(), SimTime::from_nanos(1));
        assert!(cache.contains_exact(&q));
        cache.advance_epoch(1);
        assert!(!cache.contains_exact(&q));
        assert!(cache.lookup(&cube.schema, &q, &model()).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats().invalidations, 1);
        // Re-inserting at the new epoch serves again.
        cache.insert(q.clone(), r, SimTime::from_nanos(1));
        assert!(cache.lookup(&cube.schema, &q, &model()).is_some());
    }

    #[test]
    fn eviction_holds_the_byte_budget_and_keeps_high_benefit_entries() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let queries = [
            GroupByQuery::unfiltered(cube.groupby("A''B''C''D*")),
            GroupByQuery::unfiltered(cube.groupby("A''B*C''D*")),
            GroupByQuery::unfiltered(cube.groupby("A*B''C''D*")),
            GroupByQuery::unfiltered(cube.groupby("A''B''C*D*")),
        ];
        let results: Vec<QueryResult> = queries
            .iter()
            .map(|q| reference_eval(&cube, base, q))
            .collect();
        // Budget fits roughly two entries.
        let budget = result_bytes(&results[0]) + result_bytes(&results[1]) + 16;
        let mut cache = ResultCache::new(budget);
        // Entry 0 is precious (huge production cost), the rest are cheap.
        cache.insert(
            queries[0].clone(),
            results[0].clone(),
            SimTime::from_nanos(1 << 40),
        );
        for (q, r) in queries.iter().zip(&results).skip(1) {
            cache.insert(q.clone(), r.clone(), SimTime::from_nanos(1_000));
            assert!(
                cache.bytes() <= cache.max_bytes(),
                "cache must stay within its byte budget"
            );
        }
        assert!(
            cache.stats().evictions > 0,
            "budget must have forced eviction"
        );
        assert!(
            cache.contains_exact(&queries[0]),
            "benefit-based eviction must keep the high-benefit entry"
        );
    }

    /// Deterministic quantized delta rows within the schema's leaf
    /// cardinalities (quarter units keep every sum exact, so patched
    /// entries must be *bit*-identical to recomputation).
    fn delta_rows(schema: &StarSchema, n: usize) -> Vec<(Vec<u32>, f64)> {
        let cards: Vec<u32> = (0..schema.n_dims())
            .map(|d| schema.dim(d).cardinality(0))
            .collect();
        (0..n)
            .map(|i| {
                let key = cards
                    .iter()
                    .enumerate()
                    .map(|(d, &c)| ((i * (d + 3) + 7 * d) as u32) % c)
                    .collect();
                (key, ((i * 7 + 3) % 400) as f64 * 0.25)
            })
            .collect()
    }

    #[test]
    fn append_patch_matches_recompute_bit_for_bit() {
        let mut cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let all = MemberPred::All;
        let queries = vec![
            GroupByQuery::unfiltered(cube.groupby("A''B''C''D*")),
            GroupByQuery::unfiltered(cube.groupby("A'B''C''D")),
            GroupByQuery::new(
                cube.groupby("A'B''C''D"),
                vec![
                    MemberPred::members_in(1, vec![0, 1, 2]),
                    all.clone(),
                    all.clone(),
                    all.clone(),
                ],
            ),
            GroupByQuery::unfiltered(cube.groupby("A''B*C''D*")).with_agg(AggFn::Count),
            GroupByQuery::unfiltered(cube.groupby("A''B''C*D*")).with_agg(AggFn::Min),
            GroupByQuery::unfiltered(cube.groupby("A''B''C*D*")).with_agg(AggFn::Max),
        ];
        let mut cache = ResultCache::new(1 << 20);
        for q in &queries {
            let r = reference_eval(&cube, base, q);
            cache.insert(q.clone(), r, SimTime::from_nanos(1_000_000));
        }

        let rows = delta_rows(&cube.schema, 40);
        starshare_olap::append_facts(&mut cube, &rows).unwrap();
        let report = cache.apply_append(&cube.schema, cube.epoch, &rows, &model());

        // The patch is charged as pure CPU on the simulated clock.
        assert!(report.sim > SimTime::ZERO);
        assert!(report.cpu.agg_updates > 0);
        assert_eq!(report.io.seq_faults + report.io.random_faults, 0);
        assert_eq!(cache.epoch(), cube.epoch);
        assert_eq!(cache.stats().patched, queries.len() as u64);
        assert_eq!(cache.stats().invalidations, 0);

        for q in &queries {
            let direct = reference_eval(&cube, base, q);
            let hit = cache
                .lookup(&cube.schema, q, &model())
                .unwrap_or_else(|| panic!("patched entry must still answer {:?}", q.agg));
            assert!(!hit.is_subsumption());
            assert_eq!(
                rows_bits(&hit.into_result()),
                rows_bits(&direct),
                "{:?} patched entry drifted from recomputation",
                q.agg
            );
        }
    }

    #[test]
    fn append_patch_inserts_brand_new_group_keys() {
        let mut cube = cube();
        let base = cube.catalog.base_table().unwrap();
        // A sparse fine group-by: 300 rows over thousands of possible
        // groups, so absent keys exist.
        let q = GroupByQuery::unfiltered(cube.groupby("A'B'C'D"));
        let cached = reference_eval(&cube, base, &q);
        // Find a group key no base row produced, and a leaf key that rolls
        // up to it (level-1 member m owns leaf range [m*div, (m+1)*div)).
        let divs: Vec<u32> = (0..3)
            .map(|d| {
                let dim = cube.schema.dim(d);
                dim.cardinality(0) / dim.cardinality(1)
            })
            .collect();
        let cards: Vec<u32> = (0..3).map(|d| cube.schema.dim(d).cardinality(1)).collect();
        let d_card = cube.schema.dim(3).cardinality(0);
        let mut fresh = None;
        'search: for a in 0..cards[0] {
            for b in 0..cards[1] {
                for c in 0..cards[2] {
                    for dd in 0..d_card {
                        let gkey = vec![a, b, c, dd];
                        if cached.rows.binary_search_by(|(k, _)| k.cmp(&gkey)).is_err() {
                            fresh = Some(gkey);
                            break 'search;
                        }
                    }
                }
            }
        }
        let gkey = fresh.expect("a 300-row cube cannot fill 5184 groups");
        let leaf = vec![
            gkey[0] * divs[0],
            gkey[1] * divs[1],
            gkey[2] * divs[2],
            gkey[3],
        ];

        let mut cache = ResultCache::new(1 << 20);
        cache.insert(q.clone(), cached, SimTime::from_nanos(1_000_000));
        let rows = vec![(leaf, 12.25)];
        starshare_olap::append_facts(&mut cube, &rows).unwrap();
        cache.apply_append(&cube.schema, cube.epoch, &rows, &model());

        let hit = cache.lookup(&cube.schema, &q, &model()).expect("patched");
        let patched = hit.into_result();
        let i = patched
            .rows
            .binary_search_by(|(k, _)| k.cmp(&gkey))
            .expect("the brand-new group key must appear at its sorted slot");
        assert_eq!(patched.rows[i].1.to_bits(), 12.25f64.to_bits());
        let direct = reference_eval(&cube, base, &q);
        assert_eq!(rows_bits(&patched), rows_bits(&direct));
    }

    #[test]
    fn append_patch_drops_avg_entries_and_keeps_the_rest() {
        let mut cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let sum_q = GroupByQuery::unfiltered(cube.groupby("A''B''C''D*"));
        let avg_q = GroupByQuery::unfiltered(cube.groupby("A''B''C''D*")).with_agg(AggFn::Avg);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(
            sum_q.clone(),
            reference_eval(&cube, base, &sum_q),
            SimTime::from_nanos(1),
        );
        cache.insert(
            avg_q.clone(),
            reference_eval(&cube, base, &avg_q),
            SimTime::from_nanos(1),
        );
        let rows = delta_rows(&cube.schema, 8);
        starshare_olap::append_facts(&mut cube, &rows).unwrap();
        cache.apply_append(&cube.schema, cube.epoch, &rows, &model());
        assert_eq!(
            cache.stats().patch_drops,
            1,
            "AVG is not delta-maintainable"
        );
        assert_eq!(cache.stats().patched, 1);
        assert!(!cache.contains_exact(&avg_q));
        assert!(cache.contains_exact(&sum_q));
    }

    #[test]
    fn append_touching_zero_entries_still_carries_them_forward() {
        let mut cube = cube();
        let base = cube.catalog.base_table().unwrap();
        // Cached entry filtered to A level-1 member 0; the delta lands
        // entirely in member 5's leaf range, so the patch changes nothing.
        let q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let before = reference_eval(&cube, base, &q);
        let mut cache = ResultCache::new(1 << 20);
        cache.insert(q.clone(), before.clone(), SimTime::from_nanos(1));
        let dim = cube.schema.dim(0);
        let div = dim.cardinality(0) / dim.cardinality(1);
        let rows = vec![(vec![5 * div, 0, 0, 0], 3.5)];
        starshare_olap::append_facts(&mut cube, &rows).unwrap();
        cache.apply_append(&cube.schema, cube.epoch, &rows, &model());
        assert_eq!(cache.stats().patched, 1);
        let hit = cache
            .lookup(&cube.schema, &q, &model())
            .expect("still live");
        assert_eq!(rows_bits(&hit.into_result()), rows_bits(&before));
        // And it still matches a recompute over the appended cube (the
        // filtered-out delta row cannot affect this slice).
        assert_eq!(
            rows_bits(&before),
            rows_bits(&reference_eval(&cube, base, &q))
        );
    }

    #[test]
    fn eviction_races_a_patch_under_a_tight_budget() {
        let mut cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let q1 = GroupByQuery::unfiltered(cube.groupby("A'B'C'D"));
        let q2 = GroupByQuery::unfiltered(cube.groupby("A'B''C''D"));
        let r1 = reference_eval(&cube, base, &q1);
        let r2 = reference_eval(&cube, base, &q2);
        // Budget exactly fits both entries as produced; any growth from
        // patched-in new group keys must force an eviction mid-patch.
        let budget = result_bytes(&r1) + result_bytes(&r2);
        let mut cache = ResultCache::new(budget);
        cache.insert(q1.clone(), r1, SimTime::from_nanos(1));
        cache.insert(q2.clone(), r2, SimTime::from_nanos(1 << 40));
        assert_eq!(cache.len(), 2);

        // Spread delta keys across the leaf space: with 5184 possible
        // fine groups and 300 base rows, most of these open new groups.
        let rows = delta_rows(&cube.schema, 64);
        starshare_olap::append_facts(&mut cube, &rows).unwrap();
        cache.apply_append(&cube.schema, cube.epoch, &rows, &model());

        assert!(
            cache.bytes() <= cache.max_bytes(),
            "patched cache must re-enforce its byte budget"
        );
        assert!(cache.stats().evictions > 0, "growth must have evicted");
        assert!(
            cache.contains_exact(&q2),
            "the high-benefit entry must survive the race"
        );
        // Whatever survived still answers bit-identically.
        let direct = reference_eval(&cube, base, &q2);
        let hit = cache.lookup(&cube.schema, &q2, &model()).expect("kept");
        assert_eq!(rows_bits(&hit.into_result()), rows_bits(&direct));
    }

    #[test]
    fn oversized_results_are_never_admitted() {
        let cube = cube();
        let base = cube.catalog.base_table().unwrap();
        let q = GroupByQuery::unfiltered(cube.groupby("A'B'C'D"));
        let r = reference_eval(&cube, base, &q);
        let mut cache = ResultCache::new(ENTRY_OVERHEAD_BYTES); // smaller than any payload
        cache.insert(q.clone(), r, SimTime::from_nanos(1));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }
}
