//! The star-join operators, single and shared.
//!
//! All five of the paper's evaluation strategies live here. They share one
//! inner machine: a set of per-query [`QueryState`]s absorbing tuples into
//! hash aggregations, fed either by a sequential scan of the source table
//! (hash-based plans, §3.1/3.3) or by a bitmap-directed probe of it
//! (index-based plans, §3.2).
//!
//! Work accounting (what the simulated clock sees):
//!
//! * page I/O — through the buffer pool: sequential faults for scans and
//!   index-bitmap loads, random faults for bitmap-directed tuple probes;
//! * dimension hash tables — built once per *operator* (that is the shared-
//!   scan saving): one hash insert per dimension row, one probe per scanned
//!   tuple per probed dimension (union across the operator's queries);
//! * per query per candidate tuple — predicate evaluations (short-circuit),
//!   a bitmap test for index-fed queries, and, for qualifying tuples, one
//!   aggregation-table probe, an update, and a result-tuple copy.

use starshare_olap::{combine_mode, CombineMode, Cube, GroupByQuery, LevelRef, TableId};
use starshare_storage::{AccessKind, CpuCounters, ScanBatch};

use crate::context::{ExecContext, ExecReport};
use crate::error::ExecError;
use crate::kernel::GroupAcc;
use crate::plan_io::{build_query_bitmap, QueryBitmap};
use crate::result::QueryResult;
use crate::retry::with_retry;
use crate::rollup::DimPipeline;

/// Per-query execution state: compiled pipeline + running aggregation.
///
/// `pub(crate)` so the partitioned operators in [`crate::parallel`] can
/// compile once and fan the immutable parts (pipeline, mode, bitmap) out to
/// workers, each keeping a private `groups` map.
pub(crate) struct QueryState {
    pub(crate) query: GroupByQuery,
    pub(crate) pipeline: DimPipeline,
    /// How source measures fold into this query's accumulator.
    pub(crate) mode: CombineMode,
    /// Index-derived filter (index-fed queries only).
    pub(crate) bitmap: Option<QueryBitmap>,
    /// Running aggregation, shaped by the pipeline's compiled kernel.
    pub(crate) acc: GroupAcc,
    scratch: Vec<u32>,
}

impl QueryState {
    pub(crate) fn compile(
        cube: &Cube,
        table: TableId,
        query: &GroupByQuery,
    ) -> Result<Self, ExecError> {
        let t = cube.catalog.table(table);
        if !t.measure().answers(query.agg) {
            return Err(ExecError::new(format!(
                "a {} table cannot answer {} queries",
                t.measure(),
                query.agg
            )));
        }
        let pipeline = DimPipeline::compile(&cube.schema, t.group_by(), query)?;
        Ok(QueryState {
            query: query.clone(),
            acc: pipeline.kernel().new_acc(),
            pipeline,
            mode: combine_mode(query.agg, t.measure()),
            bitmap: None,
            scratch: Vec::new(),
        })
    }

    /// Which predicate dimensions the bitmap already guarantees.
    pub(crate) fn skip_mask(&self) -> u64 {
        self.bitmap.as_ref().map_or(0, |b| b.covered_mask)
    }

    /// Feeds one candidate tuple: residual filter, then aggregate.
    fn feed(&mut self, keys: &[u32], measure: f64, cpu: &mut CpuCounters) {
        feed_tuple(
            &self.pipeline,
            self.mode,
            self.skip_mask(),
            keys,
            measure,
            &mut self.acc,
            &mut self.scratch,
            cpu,
        );
    }

    /// Feeds a whole columnar batch: vectorized residual filter, then the
    /// kernel absorbs survivors straight from the batch columns.
    fn feed_batch(&mut self, batch: &ScanBatch, sel: &mut Vec<u32>, cpu: &mut CpuCounters) {
        self.pipeline.feed_batch(
            self.mode,
            self.skip_mask(),
            batch,
            &mut self.acc,
            sel,
            &mut self.scratch,
            cpu,
        );
    }

    pub(crate) fn into_result(self) -> QueryResult {
        let mode = self.mode;
        let groups = self.pipeline.kernel().into_groups(self.acc);
        QueryResult::from_groups(
            self.query,
            groups.into_iter().map(|(k, st)| (k, st.value(mode))),
        )
    }
}

/// The per-tuple inner loop shared by the sequential operators and the
/// partitioned workers: residual filter, then absorb into the pipeline's
/// compiled aggregation kernel.
///
/// A free function (rather than a `QueryState` method) so partitioned
/// workers can run it against the *shared* compiled pipeline with a
/// *private* accumulator.
#[allow(clippy::too_many_arguments)]
pub(crate) fn feed_tuple(
    pipeline: &DimPipeline,
    mode: CombineMode,
    skip_mask: u64,
    keys: &[u32],
    measure: f64,
    acc: &mut GroupAcc,
    scratch: &mut Vec<u32>,
    cpu: &mut CpuCounters,
) {
    if !pipeline.filter_skipping(keys, cpu, skip_mask) {
        return;
    }
    pipeline
        .kernel()
        .absorb(acc, mode, keys, measure, scratch, cpu);
}

/// Charges the build of the dimension hash tables needed by `probe_mask`
/// over a table storing `stored` levels: one insert per dimension row.
pub(crate) fn charge_hash_builds(
    cube: &Cube,
    table: TableId,
    probe_mask: u64,
    cpu: &mut CpuCounters,
) {
    let stored = cube.catalog.table(table).group_by();
    for d in 0..cube.schema.n_dims() {
        if probe_mask & (1 << d) != 0 {
            if let LevelRef::Level(s) = stored.level(d) {
                cpu.hash_builds += cube.schema.dim(d).cardinality(s) as u64;
            }
        }
    }
}

/// §3.3 — shared scan for hash-based **and** index-based star joins.
///
/// One sequential scan of `table` feeds every query: `hash_queries`
/// evaluate their predicates per tuple; `index_queries` first build their
/// result bitmaps from the table's join indexes, then test each scanned
/// tuple's position against their bitmap (the "use the result bitmap as the
/// selection filter after the scan" conversion). Dimension hash tables are
/// built once for the union of all queries' probe needs.
///
/// With `index_queries` empty this is exactly §3.1's shared scan hash-based
/// star join; with a single hash query it degenerates to the classic
/// pipelined right-deep star join of Figure 1.
///
/// Results are returned in input order: all hash queries, then all index
/// queries.
pub fn shared_hybrid_join(
    ctx: &mut ExecContext,
    cube: &Cube,
    table: TableId,
    hash_queries: &[GroupByQuery],
    index_queries: &[GroupByQuery],
) -> Result<(Vec<QueryResult>, ExecReport), ExecError> {
    if hash_queries.is_empty() && index_queries.is_empty() {
        return Err("shared_hybrid_join needs at least one query".into());
    }
    let mut hash_states: Vec<QueryState> = hash_queries
        .iter()
        .map(|q| QueryState::compile(cube, table, q))
        .collect::<Result<_, _>>()?;
    let mut index_states: Vec<QueryState> = index_queries
        .iter()
        .map(|q| QueryState::compile(cube, table, q))
        .collect::<Result<_, _>>()?;

    let heap = cube.catalog.table(table).heap();
    let n_dims = cube.schema.n_dims();

    let (states, report) = ctx.run(|ctx, cpu| -> Result<Vec<QueryState>, ExecError> {
        // Phase 1: result bitmaps for the index-fed queries.
        let t = cube.catalog.table(table);
        for st in &mut index_states {
            st.bitmap = Some(build_query_bitmap(
                &cube.schema,
                t,
                &st.query,
                &mut ctx.pool,
                cpu,
            )?);
        }
        // Phase 2: shared dimension hash tables.
        let union_mask = hash_states
            .iter()
            .chain(index_states.iter())
            .fold(0u64, |m, s| m | s.pipeline.probe_mask());
        charge_hash_builds(cube, table, union_mask, cpu);
        let probes_per_tuple = union_mask.count_ones() as u64;

        // Phase 3: one shared scan, page-batched. Identical accounting to
        // the tuple-at-a-time cursor (one sequential access per page, same
        // per-tuple CPU charges); decode, predicate filtering, and
        // aggregation all run columnar per batch. Charges are sums and each
        // query folds its survivors in row order, so batching never moves
        // the simulated clock or the results.
        //
        // On a compressed heap the scan visits only the zone-map survivors
        // (see `crate::prune`): a pruned zone can satisfy no query in the
        // class, so skipping it changes nothing but the I/O. The parallel
        // executor prunes with the same query set, keeping the two paths
        // fault-identical.
        let ranges = crate::prune::keep_tuple_ranges(
            &cube.schema,
            t,
            hash_states
                .iter()
                .chain(index_states.iter())
                .map(|s| &s.query),
        )
        .unwrap_or_else(|| vec![(0, heap.n_tuples())]);
        let mut batch = ScanBatch::new(heap.layout());
        let mut keys = vec![0u32; n_dims];
        let mut sel = Vec::new();
        for &(range_lo, range_hi) in &ranges {
            let mut batches = heap.scan_batches(range_lo, range_hi);
            while with_retry(|| batches.try_next_into(&mut ctx.pool, &mut batch))? {
                let n = batch.len() as u64;
                cpu.tuple_copies += n;
                cpu.hash_probes += probes_per_tuple * n;
                for st in &mut hash_states {
                    st.feed_batch(&batch, &mut sel, cpu);
                }
                // Index-fed queries gate on their bitmap per position, so
                // they stay row-at-a-time.
                if !index_states.is_empty() {
                    for i in 0..batch.len() {
                        batch.keys_into(i, &mut keys);
                        let pos = batch.pos(i);
                        for st in &mut index_states {
                            cpu.bitmap_tests += 1;
                            if st.bitmap.as_ref().expect("built in phase 1").may_match(pos) {
                                st.feed(&keys, batch.measure(i), cpu);
                            }
                        }
                    }
                }
            }
        }
        Ok(hash_states
            .into_iter()
            .chain(index_states)
            .collect::<Vec<_>>())
    });
    Ok((
        states?.into_iter().map(QueryState::into_result).collect(),
        report,
    ))
}

/// §3.1 — shared scan hash-based star join (Figure 2).
pub fn shared_scan_hash_join(
    ctx: &mut ExecContext,
    cube: &Cube,
    table: TableId,
    queries: &[GroupByQuery],
) -> Result<(Vec<QueryResult>, ExecReport), ExecError> {
    shared_hybrid_join(ctx, cube, table, queries, &[])
}

/// Figure 1 — a single pipelined right-deep hash-based star join.
pub fn hash_star_join(
    ctx: &mut ExecContext,
    cube: &Cube,
    table: TableId,
    query: &GroupByQuery,
) -> Result<(QueryResult, ExecReport), ExecError> {
    let (mut rs, rep) = shared_hybrid_join(ctx, cube, table, std::slice::from_ref(query), &[])?;
    Ok((rs.pop().expect("one query in, one result out"), rep))
}

/// §3.2 — shared (bitmap) index join (Figure 4).
///
/// Builds each query's result bitmap, ORs them, probes the base table once
/// per candidate position, and routes each fetched tuple to the queries
/// whose bitmap has that position set ("Filter tuples"), then aggregates.
pub fn shared_index_join(
    ctx: &mut ExecContext,
    cube: &Cube,
    table: TableId,
    queries: &[GroupByQuery],
) -> Result<(Vec<QueryResult>, ExecReport), ExecError> {
    if queries.is_empty() {
        return Err("shared_index_join needs at least one query".into());
    }
    let mut states: Vec<QueryState> = queries
        .iter()
        .map(|q| QueryState::compile(cube, table, q))
        .collect::<Result<_, _>>()?;
    let heap = cube.catalog.table(table).heap();
    let n_rows = heap.n_tuples();
    let n_dims = cube.schema.n_dims();

    let (states, report) = ctx.run(|ctx, cpu| -> Result<Vec<QueryState>, ExecError> {
        // Phase 1: per-query bitmaps, then OR them into the probe set.
        let t = cube.catalog.table(table);
        let mut total: Option<starshare_bitmap::Bitmap> = None;
        let mut probe_everything = false;
        for st in &mut states {
            let qb = build_query_bitmap(&cube.schema, t, &st.query, &mut ctx.pool, cpu)?;
            match &qb.bitmap {
                Some(bm) => match total.as_mut() {
                    Some(tot) => {
                        cpu.bitmap_words += tot.or_assign(bm);
                    }
                    None => total = Some(bm.clone()),
                },
                // A query with no index-servable predicate forces a probe
                // of every row.
                None => probe_everything = true,
            }
            st.bitmap = Some(qb);
        }

        let union_mask = states.iter().fold(0u64, |m, s| m | s.pipeline.probe_mask());
        charge_hash_builds(cube, table, union_mask, cpu);
        let probes_per_tuple = union_mask.count_ones() as u64;

        // Phase 2: probe the base table at candidate positions. Random
        // tuple fetches go through the fault-checked path with bounded
        // retry, same as the scan side.
        let mut keys = vec![0u32; n_dims];
        let mut feed_all = |positions: &mut dyn Iterator<Item = u64>,
                            ctx: &mut ExecContext,
                            cpu: &mut CpuCounters,
                            states: &mut [QueryState]|
         -> Result<(), ExecError> {
            for pos in positions {
                let measure = with_retry(|| {
                    heap.try_fetch(pos, &mut ctx.pool, AccessKind::Random, &mut keys)
                })?;
                cpu.tuple_copies += 1;
                cpu.hash_probes += probes_per_tuple;
                for st in states.iter_mut() {
                    cpu.bitmap_tests += 1;
                    if st.bitmap.as_ref().expect("set above").may_match(pos) {
                        st.feed(&keys, measure, cpu);
                    }
                }
            }
            Ok(())
        };
        if probe_everything {
            feed_all(&mut (0..n_rows), ctx, cpu, &mut states)?;
        } else if let Some(tot) = &total {
            // Whole-table pass: every word of the bitmap holds candidates
            // for *this* iteration, so `iter_ones` wastes nothing here.
            // Range-restricted walks (the parallel executor's morsels) must
            // use `iter_ones_in`, which seeks to the range's first word.
            feed_all(&mut tot.iter_ones(), ctx, cpu, &mut states)?;
        }
        Ok(states)
    });
    Ok((
        states?.into_iter().map(QueryState::into_result).collect(),
        report,
    ))
}

/// Figure 3 — a single bitmap index-based star join.
pub fn index_star_join(
    ctx: &mut ExecContext,
    cube: &Cube,
    table: TableId,
    query: &GroupByQuery,
) -> Result<(QueryResult, ExecReport), ExecError> {
    let (mut rs, rep) = shared_index_join(ctx, cube, table, std::slice::from_ref(query))?;
    Ok((rs.pop().expect("one query in, one result out"), rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_eval;
    use starshare_olap::{paper_cube, MemberPred, PaperCubeSpec};

    fn cube() -> Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 4_000,
            d_leaf: 48,
            seed: 5,
            with_indexes: true,
        })
    }

    fn q_selective(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 1),
                MemberPred::eq(2, 0),
                MemberPred::eq(2, 2),
                MemberPred::eq(1, 0),
            ],
        )
    }

    fn q_broad(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1, 2]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::eq(1, 0),
            ],
        )
    }

    fn q_other(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A''B'C''D"),
            vec![
                MemberPred::All,
                MemberPred::members_in(1, vec![2, 3]),
                MemberPred::eq(2, 1),
                MemberPred::eq(1, 0),
            ],
        )
    }

    #[test]
    fn hash_join_matches_reference_on_base_and_view() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        for tname in ["ABCD", "A'B'C'D"] {
            let tid = cube.catalog.find_by_name(tname).unwrap();
            for q in [q_selective(&cube), q_broad(&cube), q_other(&cube)] {
                let (r, _) = hash_star_join(&mut ctx, &cube, tid, &q).unwrap();
                let expect = reference_eval(&cube, tid, &q);
                assert!(
                    r.approx_eq(&expect, 1e-9),
                    "{tname}: {}",
                    q.display(&cube.schema)
                );
                assert!(r.n_groups() > 0, "want non-trivial result at this scale");
            }
        }
    }

    #[test]
    fn index_join_matches_reference() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        for q in [q_selective(&cube), q_broad(&cube), q_other(&cube)] {
            let (r, _) = index_star_join(&mut ctx, &cube, tid, &q).unwrap();
            let expect = reference_eval(&cube, tid, &q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
    }

    #[test]
    fn shared_scan_matches_separate_results() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let qs = vec![q_selective(&cube), q_broad(&cube), q_other(&cube)];
        let (rs, _) = shared_scan_hash_join(&mut ctx, &cube, tid, &qs).unwrap();
        assert_eq!(rs.len(), 3);
        for (r, q) in rs.iter().zip(&qs) {
            let expect = reference_eval(&cube, tid, q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
    }

    #[test]
    fn shared_index_matches_separate_results() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let qs = vec![q_selective(&cube), q_other(&cube)];
        let (rs, _) = shared_index_join(&mut ctx, &cube, tid, &qs).unwrap();
        for (r, q) in rs.iter().zip(&qs) {
            let expect = reference_eval(&cube, tid, q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
    }

    #[test]
    fn hybrid_matches_reference_for_both_kinds() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let hash_qs = vec![q_broad(&cube)];
        let index_qs = vec![q_selective(&cube), q_other(&cube)];
        let (rs, _) = shared_hybrid_join(&mut ctx, &cube, tid, &hash_qs, &index_qs).unwrap();
        assert_eq!(rs.len(), 3);
        let all: Vec<GroupByQuery> = hash_qs.into_iter().chain(index_qs).collect();
        for (r, q) in rs.iter().zip(&all) {
            let expect = reference_eval(&cube, tid, q);
            assert!(r.approx_eq(&expect, 1e-9), "{}", q.display(&cube.schema));
        }
    }

    #[test]
    fn shared_scan_saves_io_versus_separate() {
        let cube = cube();
        let tid = cube.catalog.find_by_name("ABCD").unwrap();
        let qs = vec![q_selective(&cube), q_broad(&cube), q_other(&cube)];
        // Separate: flush before each, sum reports.
        let mut ctx = ExecContext::paper_1998();
        let mut separate = ExecReport::default();
        for q in &qs {
            ctx.flush();
            let (_, rep) = hash_star_join(&mut ctx, &cube, tid, q).unwrap();
            separate.merge(&rep);
        }
        // Shared: one scan.
        ctx.flush();
        let (_, shared) = shared_scan_hash_join(&mut ctx, &cube, tid, &qs).unwrap();
        assert!(
            shared.io.seq_faults * 2 <= separate.io.seq_faults,
            "shared {} vs separate {}",
            shared.io.seq_faults,
            separate.io.seq_faults
        );
        assert!(shared.sim < separate.sim);
        // Probe sharing: shared probes strictly fewer than the sum.
        assert!(shared.cpu.hash_probes < separate.cpu.hash_probes);
    }

    #[test]
    fn shared_index_saves_probes_versus_separate() {
        let cube = cube();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let q1 = q_selective(&cube);
        // A second selective query overlapping the same D' slice.
        let q2 = GroupByQuery::new(
            cube.groupby("A'B'C'D"),
            vec![
                MemberPred::eq(1, 1),
                MemberPred::eq(1, 2),
                MemberPred::eq(1, 4),
                MemberPred::eq(1, 0),
            ],
        );
        let mut ctx = ExecContext::paper_1998();
        let mut separate = ExecReport::default();
        for q in [&q1, &q2] {
            ctx.flush();
            let (_, rep) = index_star_join(&mut ctx, &cube, tid, q).unwrap();
            separate.merge(&rep);
        }
        ctx.flush();
        let (_, shared) = shared_index_join(&mut ctx, &cube, tid, &[q1, q2]).unwrap();
        assert!(
            shared.io.random_faults <= separate.io.random_faults,
            "shared {} vs separate {}",
            shared.io.random_faults,
            separate.io.random_faults
        );
        assert!(shared.sim <= separate.sim);
    }

    #[test]
    fn hybrid_adds_index_query_almost_free() {
        // The §3.3 claim: adding an index-fed query to a scan costs only
        // bitmap work, not another pass of I/O.
        let cube = cube();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let hash_q = vec![q_broad(&cube)];
        let mut ctx = ExecContext::paper_1998();
        ctx.flush();
        let (_, alone) = shared_hybrid_join(&mut ctx, &cube, tid, &hash_q, &[]).unwrap();
        ctx.flush();
        let (_, with_index) =
            shared_hybrid_join(&mut ctx, &cube, tid, &hash_q, &[q_selective(&cube)]).unwrap();
        // Scan I/O identical up to the index's own bitmap pages.
        assert!(with_index.io.seq_faults <= alone.io.seq_faults + 32);
        assert_eq!(with_index.io.random_faults, alone.io.random_faults);
        // And much cheaper than running the index query separately.
        ctx.flush();
        let (_, idx_alone) = index_star_join(&mut ctx, &cube, tid, &q_selective(&cube)).unwrap();
        let added = with_index.sim.saturating_sub(alone.sim);
        assert!(
            added < idx_alone.sim,
            "added {added} vs standalone {}",
            idx_alone.sim
        );
    }

    #[test]
    fn operators_reject_wrong_table() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        // A''B''C''D cannot answer a query needing A'.
        let tid = cube.catalog.find_by_name("A''B''C''D").unwrap();
        let q = q_selective(&cube);
        assert!(hash_star_join(&mut ctx, &cube, tid, &q).is_err());
        assert!(index_star_join(&mut ctx, &cube, tid, &q).is_err());
        assert!(shared_hybrid_join(&mut ctx, &cube, tid, &[], &[]).is_err());
    }

    #[test]
    fn index_join_with_unindexed_residual_pred_is_correct() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        // D predicate at leaf level: not index-servable → residual.
        let q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 1),
                MemberPred::All,
                MemberPred::All,
                MemberPred::members_in(0, (0..24).collect()),
            ],
        );
        let (r, _) = index_star_join(&mut ctx, &cube, tid, &q).unwrap();
        let expect = reference_eval(&cube, tid, &q);
        assert!(r.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn empty_result_queries_work_everywhere() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let q = GroupByQuery::new(
            cube.groupby("A'B'C'D"),
            vec![
                MemberPred::members_in(1, vec![]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let (r1, _) = hash_star_join(&mut ctx, &cube, tid, &q).unwrap();
        assert_eq!(r1.n_groups(), 0);
        let (r2, _) = index_star_join(&mut ctx, &cube, tid, &q).unwrap();
        assert_eq!(r2.n_groups(), 0);
    }

    #[test]
    fn results_are_order_stable_across_operators() {
        let cube = cube();
        let mut ctx = ExecContext::paper_1998();
        let tid = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let q = q_broad(&cube);
        let (r1, _) = hash_star_join(&mut ctx, &cube, tid, &q).unwrap();
        let (r2, _) = index_star_join(&mut ctx, &cube, tid, &q).unwrap();
        let keys1: Vec<_> = r1.rows.iter().map(|(k, _)| k.clone()).collect();
        let keys2: Vec<_> = r2.rows.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys1, keys2);
    }
}
