//! Partitioned, multi-threaded execution of a global plan's classes, with a
//! deterministic clock.
//!
//! A `GlobalPlan`'s classes are independent by construction (each reads its
//! own base table through its own shared operator), so they can run
//! concurrently. Within a class, the dominant cost is the base-table pass;
//! it is split into [`PARTITIONS`] page-aligned tuple ranges, each absorbed
//! into *private* per-partition aggregation states that the coordinator
//! merges afterwards in partition order.
//!
//! Everything the simulated clock sees is independent of how many host
//! threads actually ran:
//!
//! * the partition count is **fixed** (not the thread count), so the work
//!   split never changes;
//! * each worker counts I/O and CPU privately against a
//!   [`BufferPool::clone_residency`] snapshot, and the coordinator folds the
//!   partials back in class/partition order;
//! * partial aggregates merge in partition order, so floating-point sums
//!   associate the same way every run;
//! * [`ExecReport::sim`] still totals *all* work, while
//!   [`ExecReport::critical`] reports the critical path — coordinator
//!   phases plus the slowest partition, then the slowest class — which is
//!   what an ideally-parallel 1998 machine's clock would read.
//!
//! Only wall time varies with the thread count; that is the point.
//!
//! Pool semantics differ from the sequential path in one way: every class
//! starts from the residency the *plan* started with (a snapshot), and the
//! shared pool's residency is left untouched — concurrent classes cannot
//! warm pages for each other, because "which class ran first" would be a
//! scheduling accident.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use starshare_bitmap::Bitmap;
use starshare_olap::{Cube, GroupByQuery, TableId};
use starshare_storage::{
    AccessKind, BufferPool, CpuCounters, HeapFile, IoStats, ScanBatch, SimTime,
};

use crate::context::{ExecContext, ExecReport};
use crate::error::ExecError;
use crate::kernel::GroupAcc;
use crate::operators::{charge_hash_builds, feed_tuple, QueryState};
use crate::plan_io::build_query_bitmap;
use crate::result::QueryResult;

/// Fixed number of base-table partitions per class.
///
/// Deliberately **not** the thread count: the partitioning (and therefore
/// every counter, every floating-point merge order, and the critical path)
/// must be identical whether the partitions run on 1 thread or 16.
pub const PARTITIONS: usize = 8;

/// One class of a global plan, ready for partitioned execution: the shared
/// base table plus its member queries split by join method.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// The shared base table.
    pub table: TableId,
    /// Queries evaluated by scanning (hash-based star joins).
    pub hash_queries: Vec<GroupByQuery>,
    /// Queries evaluated through bitmap indexes.
    pub index_queries: Vec<GroupByQuery>,
}

/// One executed class: results in hash-then-index input order, plus the
/// class's report (with `critical` = phase 1 + slowest partition + merge).
#[derive(Debug)]
pub struct ClassOutcome {
    /// One result per query: all hash queries, then all index queries.
    pub results: Vec<QueryResult>,
    /// The class's cost report.
    pub report: ExecReport,
}

/// How a class's partitions read the base table.
enum ScanKind {
    /// Any hash member forces a full scan (the §3.3 hybrid: index members
    /// filter by bitmap during the same pass).
    Scan,
    /// Index-only class: probe candidate positions.
    Probe {
        /// OR of the member bitmaps; `None` with `everything` set when some
        /// member has no index-servable predicate.
        total: Option<Bitmap>,
        everything: bool,
    },
}

/// A class after the coordinator's phase 1 (compile + bitmaps + hash-table
/// builds), immutable during the parallel phase.
struct PreparedClass<'a> {
    heap: &'a HeapFile,
    /// Hash states first, then index states.
    states: Vec<QueryState>,
    n_hash: usize,
    /// Post-phase-1 residency snapshot workers clone from.
    pool: BufferPool,
    scan: ScanKind,
    probes_per_tuple: u64,
    /// Page-aligned `[lo, hi)` tuple ranges (empty ranges dropped).
    partitions: Vec<(u64, u64)>,
    phase1_io: IoStats,
    phase1_cpu: CpuCounters,
    phase1_wall: Duration,
}

/// What one partition worker produced: private accumulators and privately
/// counted work.
struct PartitionOutput {
    /// One kernel accumulator per class query, in the class's state order.
    groups: Vec<GroupAcc>,
    io: IoStats,
    cpu: CpuCounters,
    wall: Duration,
}

/// Splits `heap` into up to [`PARTITIONS`] contiguous page-aligned tuple
/// ranges. Page alignment keeps partitions on disjoint pages, so private
/// fault counts sum to exactly what one cold scan would fault.
fn page_partitions(heap: &HeapFile) -> Vec<(u64, u64)> {
    let n = heap.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let per_page = heap.layout().tuples_per_page() as u64;
    let pages_per_part = (heap.page_count() as u64)
        .div_ceil(PARTITIONS as u64)
        .max(1);
    (0..PARTITIONS as u64)
        .map(|p| {
            let lo = (p * pages_per_part * per_page).min(n);
            let hi = ((p + 1) * pages_per_part * per_page).min(n);
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Runs one partition of one prepared class against a private pool
/// snapshot. Pure with respect to shared state — everything mutable is
/// local — so any worker may run it at any time with identical outcome.
fn run_partition(cube: &Cube, class: &PreparedClass<'_>, lo: u64, hi: u64) -> PartitionOutput {
    let start = Instant::now();
    let mut pool = class.pool.clone_residency();
    let mut cpu = CpuCounters::default();
    let mut groups: Vec<GroupAcc> = class
        .states
        .iter()
        .map(|st| st.pipeline.kernel().new_acc())
        .collect();
    let mut scratch = Vec::new();
    let mut keys = vec![0u32; cube.schema.n_dims()];

    let feed_states = |keys: &[u32],
                       measure: f64,
                       pos: u64,
                       cpu: &mut CpuCounters,
                       groups: &mut [GroupAcc],
                       scratch: &mut Vec<u32>| {
        cpu.tuple_copies += 1;
        cpu.hash_probes += class.probes_per_tuple;
        for (i, st) in class.states.iter().enumerate() {
            if i >= class.n_hash {
                cpu.bitmap_tests += 1;
                if !st.bitmap.as_ref().expect("built in phase 1").may_match(pos) {
                    continue;
                }
            }
            feed_tuple(
                &st.pipeline,
                st.mode,
                st.skip_mask(),
                keys,
                measure,
                &mut groups[i],
                scratch,
                cpu,
            );
        }
    };

    match &class.scan {
        ScanKind::Scan => {
            // Page-batched: same accesses and per-tuple charges as the
            // tuple-at-a-time cursor. Hash members run the vectorized
            // filter cascade per batch; index members gate on their bitmap
            // per position, so they stay row-at-a-time.
            let mut batches = class.heap.scan_batches(lo, hi);
            let mut batch = ScanBatch::new(class.heap.layout());
            let mut sel = Vec::new();
            while batches.next_into(&mut pool, &mut batch) {
                let n = batch.len() as u64;
                cpu.tuple_copies += n;
                cpu.hash_probes += class.probes_per_tuple * n;
                for (i, st) in class.states.iter().enumerate().take(class.n_hash) {
                    st.pipeline.feed_batch(
                        st.mode,
                        st.skip_mask(),
                        &batch,
                        &mut groups[i],
                        &mut sel,
                        &mut scratch,
                        &mut cpu,
                    );
                }
                if class.n_hash < class.states.len() {
                    for r in 0..batch.len() {
                        batch.keys_into(r, &mut keys);
                        let pos = batch.pos(r);
                        for (i, st) in class.states.iter().enumerate().skip(class.n_hash) {
                            cpu.bitmap_tests += 1;
                            if st.bitmap.as_ref().expect("built in phase 1").may_match(pos) {
                                feed_tuple(
                                    &st.pipeline,
                                    st.mode,
                                    st.skip_mask(),
                                    &keys,
                                    batch.measure(r),
                                    &mut groups[i],
                                    &mut scratch,
                                    &mut cpu,
                                );
                            }
                        }
                    }
                }
            }
        }
        ScanKind::Probe { total, everything } => {
            let mut probe = |positions: &mut dyn Iterator<Item = u64>,
                             pool: &mut BufferPool,
                             cpu: &mut CpuCounters| {
                for pos in positions {
                    let measure = class.heap.fetch(pos, pool, AccessKind::Random, &mut keys);
                    feed_states(&keys, measure, pos, cpu, &mut groups, &mut scratch);
                }
            };
            if *everything {
                probe(&mut (lo..hi), &mut pool, &mut cpu);
            } else if let Some(tot) = total {
                probe(
                    &mut tot.iter_ones().filter(|p| (lo..hi).contains(p)),
                    &mut pool,
                    &mut cpu,
                );
            }
        }
    }
    PartitionOutput {
        groups,
        io: pool.stats(),
        cpu,
        wall: start.elapsed(),
    }
}

/// Executes a set of independent classes on `threads` worker threads.
///
/// Every `(class, partition)` pair becomes one unit in a single work queue,
/// so partitions of different classes interleave freely across workers —
/// class-level and partition-level parallelism fall out of the same pool.
/// Results per class come back in hash-then-index order; the shared pool
/// receives every partial [`IoStats`] in class/partition order and keeps
/// its residency (see the module docs for why).
pub fn execute_classes(
    ctx: &mut ExecContext,
    cube: &Cube,
    classes: &[ClassSpec],
    threads: usize,
) -> Result<Vec<ClassOutcome>, ExecError> {
    let threads = threads.max(1);
    let model = ctx.model;

    // ---- Phase 1 (coordinator, class order): compile, bitmaps, builds.
    let mut prepared = Vec::with_capacity(classes.len());
    for spec in classes {
        if spec.hash_queries.is_empty() && spec.index_queries.is_empty() {
            return Err("a plan class needs at least one query".into());
        }
        let start = Instant::now();
        let mut states: Vec<QueryState> = spec
            .hash_queries
            .iter()
            .chain(&spec.index_queries)
            .map(|q| QueryState::compile(cube, spec.table, q))
            .collect::<Result<_, _>>()?;
        let n_hash = spec.hash_queries.len();

        let mut pool = ctx.pool.clone_residency();
        let mut cpu = CpuCounters::default();
        let t = cube.catalog.table(spec.table);
        // Index members need their result bitmaps up front in both shapes.
        // `pool` is a residency clone, which never carries a fault injector,
        // so this can only surface plan-level errors here.
        for st in states.iter_mut().skip(n_hash) {
            st.bitmap = Some(build_query_bitmap(
                &cube.schema,
                t,
                &st.query,
                &mut pool,
                &mut cpu,
            )?);
        }
        let union_mask = states.iter().fold(0u64, |m, s| m | s.pipeline.probe_mask());
        charge_hash_builds(cube, spec.table, union_mask, &mut cpu);

        let scan = if n_hash > 0 {
            ScanKind::Scan
        } else {
            // OR the member bitmaps into the candidate set, as the shared
            // index join does.
            let mut total: Option<Bitmap> = None;
            let mut everything = false;
            for st in &states {
                match &st.bitmap.as_ref().expect("index state").bitmap {
                    Some(bm) => match total.as_mut() {
                        Some(tot) => cpu.bitmap_words += tot.or_assign(bm),
                        None => total = Some(bm.clone()),
                    },
                    None => everything = true,
                }
            }
            ScanKind::Probe { total, everything }
        };
        let heap = t.heap();
        prepared.push(PreparedClass {
            partitions: page_partitions(heap),
            heap,
            probes_per_tuple: union_mask.count_ones() as u64,
            states,
            n_hash,
            scan,
            phase1_io: pool.stats(),
            phase1_cpu: cpu,
            phase1_wall: start.elapsed(),
            pool,
        });
    }

    // ---- Phase 2 (parallel): one queue of (class, partition) units.
    let units: Vec<(usize, usize)> = prepared
        .iter()
        .enumerate()
        .flat_map(|(c, pc)| (0..pc.partitions.len()).map(move |p| (c, p)))
        .collect();
    let slots: Vec<Mutex<Option<PartitionOutput>>> =
        units.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(units.len().max(1)) {
            s.spawn(|| loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(c, p)) = units.get(u) else { break };
                let class = &prepared[c];
                let (lo, hi) = class.partitions[p];
                let out = run_partition(cube, class, lo, hi);
                *slots[u].lock().expect("no panics hold this lock") = Some(out);
            });
        }
    });
    let mut outputs: Vec<Vec<PartitionOutput>> = prepared.iter().map(|_| Vec::new()).collect();
    for (&(c, _), slot) in units.iter().zip(slots) {
        outputs[c].push(slot.into_inner().expect("scope joined").expect("unit ran"));
    }

    // ---- Phase 3 (coordinator, class order): merge partials, total up.
    let mut outcomes = Vec::with_capacity(prepared.len());
    for (class, parts) in prepared.into_iter().zip(outputs) {
        let merge_start = Instant::now();
        let mut merge_cpu = CpuCounters::default();
        let mut merged: Vec<GroupAcc> = class
            .states
            .iter()
            .map(|st| st.pipeline.kernel().new_acc())
            .collect();
        for part in &parts {
            for (qi, part_groups) in part.groups.iter().enumerate() {
                let st = &class.states[qi];
                st.pipeline.kernel().merge_partial(
                    &mut merged[qi],
                    part_groups,
                    st.mode,
                    &mut merge_cpu,
                );
            }
        }
        let results: Vec<QueryResult> = class
            .states
            .iter()
            .zip(merged)
            .map(|(st, acc)| {
                QueryResult::from_groups(
                    st.query.clone(),
                    st.pipeline
                        .kernel()
                        .into_groups(acc)
                        .into_iter()
                        .map(|(k, a)| (k, a.value(st.mode))),
                )
            })
            .collect();

        let sim1 = class.phase1_io.io_time(&model) + model.cpu_time(&class.phase1_cpu);
        let sim_merge = model.cpu_time(&merge_cpu);
        let mut io = class.phase1_io;
        let mut cpu = class.phase1_cpu;
        cpu.merge(&merge_cpu);
        let mut sim = sim1 + sim_merge;
        let mut slowest = SimTime::ZERO;
        let mut wall = class.phase1_wall + merge_start.elapsed();
        for part in &parts {
            io.merge(&part.io);
            cpu.merge(&part.cpu);
            let part_sim = part.io.io_time(&model) + model.cpu_time(&part.cpu);
            sim += part_sim;
            slowest = slowest.max(part_sim);
            wall += part.wall;
        }
        ctx.pool.add_stats(&io);
        outcomes.push(ClassOutcome {
            results,
            report: ExecReport {
                io,
                cpu,
                sim,
                critical: sim1 + slowest + sim_merge,
                wall,
            },
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{shared_hybrid_join, shared_index_join};
    use starshare_olap::{paper_cube, GroupByQuery, MemberPred, PaperCubeSpec};

    fn cube() -> Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 4_000,
            d_leaf: 48,
            seed: 5,
            with_indexes: true,
        })
    }

    fn q_broad(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1, 2]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::eq(1, 0),
            ],
        )
    }

    fn q_selective(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 1),
                MemberPred::eq(2, 0),
                MemberPred::eq(2, 2),
                MemberPred::eq(1, 0),
            ],
        )
    }

    #[test]
    fn partitions_are_page_aligned_and_cover_the_table() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let heap = cube.catalog.table(t).heap();
        let parts = page_partitions(heap);
        assert!(!parts.is_empty() && parts.len() <= PARTITIONS);
        let per_page = heap.layout().tuples_per_page() as u64;
        let mut expect_lo = 0;
        for &(lo, hi) in &parts {
            assert_eq!(lo, expect_lo, "contiguous");
            assert_eq!(lo % per_page, 0, "page-aligned start");
            expect_lo = hi;
        }
        assert_eq!(expect_lo, heap.n_tuples(), "full coverage");
    }

    #[test]
    fn partitioned_scan_matches_sequential_operator() {
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let hash_qs = vec![q_broad(&cube)];
        let index_qs = vec![q_selective(&cube)];
        let mut ctx = ExecContext::paper_1998();
        let (seq_rs, _) = shared_hybrid_join(&mut ctx, &cube, t, &hash_qs, &index_qs).unwrap();
        let mut ctx2 = ExecContext::paper_1998();
        let spec = ClassSpec {
            table: t,
            hash_queries: hash_qs,
            index_queries: index_qs,
        };
        let out = execute_classes(&mut ctx2, &cube, std::slice::from_ref(&spec), 2).unwrap();
        assert_eq!(out.len(), 1);
        for (par, seq) in out[0].results.iter().zip(&seq_rs) {
            assert!(par.approx_eq(seq, 1e-9));
        }
        assert!(out[0].report.critical <= out[0].report.sim);
        assert!(out[0].report.critical > SimTime::ZERO);
    }

    #[test]
    fn partitioned_probe_matches_sequential_operator() {
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let qs = vec![q_selective(&cube)];
        let mut ctx = ExecContext::paper_1998();
        let (seq_rs, _) = shared_index_join(&mut ctx, &cube, t, &qs).unwrap();
        let mut ctx2 = ExecContext::paper_1998();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![],
            index_queries: qs,
        };
        let out = execute_classes(&mut ctx2, &cube, std::slice::from_ref(&spec), 3).unwrap();
        assert!(out[0].results[0].approx_eq(&seq_rs[0], 1e-9));
    }

    #[test]
    fn thread_count_never_changes_the_clock() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube), q_selective(&cube)],
            index_queries: vec![],
        };
        let runs: Vec<ClassOutcome> = [1usize, 2, 4]
            .iter()
            .map(|&n| {
                let mut ctx = ExecContext::paper_1998();
                execute_classes(&mut ctx, &cube, std::slice::from_ref(&spec), n)
                    .unwrap()
                    .remove(0)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].report.sim, other.report.sim);
            assert_eq!(runs[0].report.critical, other.report.critical);
            assert_eq!(runs[0].report.io, other.report.io);
            for (a, b) in runs[0].results.iter().zip(&other.results) {
                assert_eq!(a.rows, b.rows, "bit-identical results");
            }
        }
    }

    #[test]
    fn probe_everything_query_probes_every_row_once() {
        let cube = cube();
        // A''B''C''D has no indexes: the index class degenerates to probing
        // all positions.
        let t = cube.catalog.find_by_name("A''B''C''D").unwrap();
        let q = GroupByQuery::new(
            cube.groupby("A''B''C''D"),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![],
            index_queries: vec![q.clone()],
        };
        let mut ctx = ExecContext::paper_1998();
        let out = execute_classes(&mut ctx, &cube, std::slice::from_ref(&spec), 2).unwrap();
        let n = cube.catalog.table(t).n_rows();
        assert_eq!(out[0].report.cpu.bitmap_tests, n);
        let mut ctx2 = ExecContext::paper_1998();
        let (seq_rs, _) = shared_index_join(&mut ctx2, &cube, t, &[q]).unwrap();
        assert!(out[0].results[0].approx_eq(&seq_rs[0], 1e-9));
    }

    #[test]
    fn empty_class_is_rejected() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let mut ctx = ExecContext::paper_1998();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![],
            index_queries: vec![],
        };
        assert!(execute_classes(&mut ctx, &cube, &[spec], 2).is_err());
    }

    #[test]
    fn stats_flow_back_to_the_shared_pool() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube)],
            index_queries: vec![],
        };
        let mut ctx = ExecContext::paper_1998();
        let before = ctx.pool.stats();
        let out = execute_classes(&mut ctx, &cube, &[spec], 2).unwrap();
        let delta = ctx.pool.stats().since(&before);
        assert_eq!(delta, out[0].report.io);
        assert!(delta.seq_faults > 0);
    }
}
