//! Morsel-driven, multi-threaded execution of a global plan's classes,
//! with a deterministic clock.
//!
//! A `GlobalPlan`'s classes are independent by construction (each reads its
//! own base table through its own shared operator), so they can run
//! concurrently. Within a class, the dominant cost is the base-table pass;
//! it is carved into page-aligned *morsels* (see [`crate::morsel`]): scan
//! classes into fixed-size page chunks, probe classes into ranges balanced
//! by the candidate popcount of the OR'd bitmap, so skewed bitmaps no
//! longer pile all the work into one range. Morsels are dispatched through
//! per-worker deques with work-stealing, each absorbed into *private*
//! per-morsel aggregation states that merge afterwards in a deterministic
//! balanced binary tree.
//!
//! Everything the simulated clock sees is independent of how many host
//! threads actually ran:
//!
//! * morsel boundaries are computed **from the data and the
//!   [`MorselSpec`]** before any thread runs — never from the thread
//!   count or the stealing order;
//! * each worker counts I/O and CPU privately against a
//!   [`BufferPool::clone_residency`] snapshot, writing into its morsel's
//!   pre-assigned slot; the coordinator folds the partials back in
//!   class/morsel order;
//! * partial aggregates merge pairwise in a balanced tree whose shape is a
//!   pure function of the morsel count — `new[i] = merge(old[2*i] <-
//!   old[2*i+1])` level by level, an odd leftover passing through — so
//!   floating-point sums associate the same way every run;
//! * [`ExecReport::sim`] still totals *all* work, while
//!   [`ExecReport::critical`] reports the critical path — coordinator
//!   phases, plus the slowest morsel, plus the slowest pair of each merge
//!   level — which is what an ideally-parallel 1998 machine's clock would
//!   read.
//!
//! Only wall time varies with the thread count; that is the point. The
//! report's [`ExecReport::wall`] is *elapsed* latency (what an observer
//! with a stopwatch sees shrink as threads are added) and
//! [`ExecReport::busy`] is *summed* worker time (total host work, roughly
//! flat across thread counts).
//!
//! Pool semantics differ from the sequential path in one way: every class
//! starts from the residency the *plan* started with (a snapshot), and the
//! shared pool's residency is left untouched — concurrent classes cannot
//! warm pages for each other, because "which class ran first" would be a
//! scheduling accident.
//!
//! [`ExecStrategy::LegacyFixed8`] keeps the pre-morsel executor — a fixed
//! 8-way page-even split with a serial coordinator fold and a full-bitmap
//! probe filter — frozen as the benchmark baseline `starshare-bench`
//! races the morsel path against.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use starshare_bitmap::Bitmap;
use starshare_olap::{Cube, GroupByQuery, TableId};
use starshare_storage::{
    AccessKind, BufferPool, CpuCounters, HardwareModel, HeapFile, IoStats, ScanBatch, SimTime,
};

use crate::context::{ExecContext, ExecReport};
use crate::error::ExecError;
use crate::kernel::GroupAcc;
use crate::morsel::{probe_morsels, run_units, scan_morsels, scan_morsels_in_ranges};
use crate::operators::{charge_hash_builds, feed_tuple, QueryState};
use crate::plan_io::build_query_bitmap;
use crate::prune::keep_tuple_ranges;
use crate::result::QueryResult;

pub use crate::morsel::{MorselSpec, DEFAULT_MORSEL_PAGES};

/// Partition count of the frozen legacy executor
/// ([`ExecStrategy::LegacyFixed8`]).
const LEGACY_PARTITIONS: usize = 8;

/// How a class's base-table pass is split and merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Morsel-driven work-stealing execution with a deterministic tree
    /// merge (the default).
    Morsel(MorselSpec),
    /// The pre-morsel executor: fixed 8-way page-even split, full-bitmap
    /// probe filter, serial coordinator fold. Kept as the benchmark
    /// baseline; `wall` reports summed worker time (its historical
    /// behavior), identical to `busy`.
    LegacyFixed8,
}

impl Default for ExecStrategy {
    fn default() -> Self {
        ExecStrategy::Morsel(MorselSpec::default())
    }
}

/// One class of a global plan, ready for partitioned execution: the shared
/// base table plus its member queries split by join method.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// The shared base table.
    pub table: TableId,
    /// Queries evaluated by scanning (hash-based star joins).
    pub hash_queries: Vec<GroupByQuery>,
    /// Queries evaluated through bitmap indexes.
    pub index_queries: Vec<GroupByQuery>,
}

/// One executed class: results in hash-then-index input order, plus the
/// class's report (with `critical` = phase 1 + slowest morsel + merge
/// tree's per-level maxima).
#[derive(Debug)]
pub struct ClassOutcome {
    /// One result per query: all hash queries, then all index queries.
    pub results: Vec<QueryResult>,
    /// The class's cost report.
    pub report: ExecReport,
    /// The partial-merge portion of the class's CPU (already included in
    /// `report.cpu`), broken out so per-query profiles can attribute the
    /// fold separately. Zero on the sequential operators.
    pub merge_cpu: CpuCounters,
    /// Morsels the class split into.
    pub n_morsels: u64,
}

/// How a class's morsels read the base table.
enum ScanKind {
    /// Any hash member forces a full scan (the §3.3 hybrid: index members
    /// filter by bitmap during the same pass).
    Scan,
    /// Index-only class: probe candidate positions.
    Probe {
        /// OR of the member bitmaps; `None` with `everything` set when some
        /// member has no index-servable predicate.
        total: Option<Bitmap>,
        everything: bool,
    },
}

/// A class after the coordinator's phase 1 (compile + bitmaps + hash-table
/// builds), immutable during the parallel phase.
struct PreparedClass<'a> {
    heap: &'a HeapFile,
    /// Hash states first, then index states.
    states: Vec<QueryState>,
    n_hash: usize,
    /// Post-phase-1 residency snapshot workers clone from.
    pool: BufferPool,
    scan: ScanKind,
    probes_per_tuple: u64,
    /// Page-aligned `[lo, hi)` tuple ranges (empty ranges dropped).
    morsels: Vec<(u64, u64)>,
    phase1_io: IoStats,
    phase1_cpu: CpuCounters,
    phase1_wall: Duration,
}

/// What one morsel worker produced: private accumulators and privately
/// counted work.
struct MorselOutput {
    /// One kernel accumulator per class query, in the class's state order.
    groups: Vec<GroupAcc>,
    io: IoStats,
    cpu: CpuCounters,
    wall: Duration,
}

/// Reusable per-worker buffers: one columnar batch plus the row-major
/// scratch vectors, reshaped per morsel so a worker can hop between
/// classes with different tuple layouts without reallocating.
#[derive(Default)]
struct WorkerScratch {
    batch: Option<ScanBatch>,
    keys: Vec<u32>,
    sel: Vec<u32>,
    scratch: Vec<u32>,
}

/// Splits `heap` into up to [`LEGACY_PARTITIONS`] contiguous page-aligned
/// tuple ranges (the frozen legacy split). Page alignment keeps partitions
/// on disjoint pages, so private fault counts sum to exactly what one cold
/// scan would fault.
fn page_partitions(heap: &HeapFile) -> Vec<(u64, u64)> {
    let n = heap.n_tuples();
    if n == 0 {
        return Vec::new();
    }
    let per_page = heap.layout().tuples_per_page() as u64;
    let pages_per_part = (heap.page_count() as u64)
        .div_ceil(LEGACY_PARTITIONS as u64)
        .max(1);
    (0..LEGACY_PARTITIONS as u64)
        .map(|p| {
            let lo = (p * pages_per_part * per_page).min(n);
            let hi = ((p + 1) * pages_per_part * per_page).min(n);
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Computes a prepared class's morsel boundaries under `strategy`.
fn class_morsels(strategy: ExecStrategy, heap: &HeapFile, scan: &ScanKind) -> Vec<(u64, u64)> {
    match strategy {
        ExecStrategy::LegacyFixed8 => page_partitions(heap),
        ExecStrategy::Morsel(spec) => match scan {
            ScanKind::Scan => scan_morsels(heap, spec.pages),
            ScanKind::Probe {
                total: Some(tot),
                everything: false,
            } => probe_morsels(heap, tot, spec.pages),
            // Probing everything is a uniform pass: page chunks are already
            // candidate-balanced.
            ScanKind::Probe { .. } => scan_morsels(heap, spec.pages),
        },
    }
}

/// Runs one morsel of one prepared class against a private pool snapshot.
/// Pure with respect to shared state — everything mutable is local or in
/// `ws` (whose contents never leak into outputs) — so any worker may run
/// it at any time with identical outcome.
fn run_morsel(
    cube: &Cube,
    class: &PreparedClass<'_>,
    lo: u64,
    hi: u64,
    strategy: ExecStrategy,
    ws: &mut WorkerScratch,
) -> MorselOutput {
    let start = Instant::now();
    let mut pool = class.pool.clone_residency();
    let mut cpu = CpuCounters::default();
    let mut groups: Vec<GroupAcc> = class
        .states
        .iter()
        .map(|st| st.pipeline.kernel().new_acc())
        .collect();
    let WorkerScratch {
        batch,
        keys,
        sel,
        scratch,
    } = ws;
    keys.clear();
    keys.resize(cube.schema.n_dims(), 0);

    let feed_states = |keys: &[u32],
                       measure: f64,
                       pos: u64,
                       cpu: &mut CpuCounters,
                       groups: &mut [GroupAcc],
                       scratch: &mut Vec<u32>| {
        cpu.tuple_copies += 1;
        cpu.hash_probes += class.probes_per_tuple;
        for (i, st) in class.states.iter().enumerate() {
            if i >= class.n_hash {
                cpu.bitmap_tests += 1;
                if !st.bitmap.as_ref().expect("built in phase 1").may_match(pos) {
                    continue;
                }
            }
            feed_tuple(
                &st.pipeline,
                st.mode,
                st.skip_mask(),
                keys,
                measure,
                &mut groups[i],
                scratch,
                cpu,
            );
        }
    };

    match &class.scan {
        ScanKind::Scan => {
            // Page-batched: same accesses and per-tuple charges as the
            // tuple-at-a-time cursor. Hash members run the vectorized
            // filter cascade per batch; index members gate on their bitmap
            // per position, so they stay row-at-a-time.
            let mut batches = class.heap.scan_batches(lo, hi);
            let batch = batch.get_or_insert_with(|| ScanBatch::new(class.heap.layout()));
            batch.reshape(class.heap.layout());
            while batches.next_into(&mut pool, batch) {
                let n = batch.len() as u64;
                cpu.tuple_copies += n;
                cpu.hash_probes += class.probes_per_tuple * n;
                for (i, st) in class.states.iter().enumerate().take(class.n_hash) {
                    st.pipeline.feed_batch(
                        st.mode,
                        st.skip_mask(),
                        batch,
                        &mut groups[i],
                        sel,
                        scratch,
                        &mut cpu,
                    );
                }
                if class.n_hash < class.states.len() {
                    for r in 0..batch.len() {
                        batch.keys_into(r, keys);
                        let pos = batch.pos(r);
                        for (i, st) in class.states.iter().enumerate().skip(class.n_hash) {
                            cpu.bitmap_tests += 1;
                            if st.bitmap.as_ref().expect("built in phase 1").may_match(pos) {
                                feed_tuple(
                                    &st.pipeline,
                                    st.mode,
                                    st.skip_mask(),
                                    keys,
                                    batch.measure(r),
                                    &mut groups[i],
                                    scratch,
                                    &mut cpu,
                                );
                            }
                        }
                    }
                }
            }
        }
        ScanKind::Probe { total, everything } => match strategy {
            ExecStrategy::Morsel(_) => {
                // Run-coalesced probe: clustered candidates share heap
                // pages, so each page's run of positions is charged in one
                // [`BufferPool::access_run`] — counters and LRU state come
                // out identical to per-candidate fetches — and the rows are
                // decoded straight from the page without re-walking the
                // pool's map per tuple.
                let mut probe = |positions: &mut dyn Iterator<Item = u64>,
                                 pool: &mut BufferPool,
                                 cpu: &mut CpuCounters| {
                    let per_page = class.heap.layout().tuples_per_page() as u64;
                    let file = class.heap.file_id();
                    let mut it = positions.peekable();
                    while let Some(first) = it.next() {
                        let page = (first / per_page) as u32;
                        let run_end = (u64::from(page) + 1) * per_page;
                        let measure = class.heap.read_at(first, keys);
                        feed_states(keys, measure, first, cpu, &mut groups, scratch);
                        let mut n = 1;
                        while let Some(&pos) = it.peek() {
                            if pos >= run_end {
                                break;
                            }
                            it.next();
                            let measure = class.heap.read_at(pos, keys);
                            feed_states(keys, measure, pos, cpu, &mut groups, scratch);
                            n += 1;
                        }
                        let (io_bytes, dec_bytes) = class.heap.page_cost(page);
                        pool.access_run_sized(
                            file,
                            page,
                            AccessKind::Random,
                            n,
                            io_bytes,
                            dec_bytes,
                        );
                    }
                };
                if *everything {
                    probe(&mut (lo..hi), &mut pool, &mut cpu);
                } else if let Some(tot) = total {
                    // The hot-spot fix: seek straight into the range's
                    // words instead of walking the whole bitmap and
                    // discarding out-of-range positions.
                    probe(&mut tot.iter_ones_in(lo, hi), &mut pool, &mut cpu);
                }
            }
            ExecStrategy::LegacyFixed8 => {
                // The historical fetch-per-candidate loop over the whole
                // bitmap, filtered down to this partition's range.
                let mut probe = |positions: &mut dyn Iterator<Item = u64>,
                                 pool: &mut BufferPool,
                                 cpu: &mut CpuCounters| {
                    for pos in positions {
                        let measure = class.heap.fetch(pos, pool, AccessKind::Random, keys);
                        feed_states(keys, measure, pos, cpu, &mut groups, scratch);
                    }
                };
                if *everything {
                    probe(&mut (lo..hi), &mut pool, &mut cpu);
                } else if let Some(tot) = total {
                    probe(
                        &mut tot.iter_ones().filter(|p| (lo..hi).contains(p)),
                        &mut pool,
                        &mut cpu,
                    );
                }
            }
        },
    }
    MorselOutput {
        groups,
        io: pool.stats(),
        cpu,
        wall: start.elapsed(),
    }
}

/// What a class's partial-aggregate merge cost.
struct MergeCost {
    cpu: CpuCounters,
    /// Critical path through the merge: for the tree, the sum over levels
    /// of each level's slowest pair; for the legacy fold, the whole fold.
    critical: SimTime,
    /// Summed worker time spent merging.
    busy: Duration,
    /// Pair merges performed (tree: exactly `morsels - 1`; fold: one
    /// absorption per partial). Deterministic.
    pairs: u64,
    /// Successful steals inside the merge scheduler — a scheduling
    /// accident, reported to metrics only.
    steals: u64,
}

/// A merge pair's input slot: destination and source accumulator sets,
/// taken by whichever worker runs the pair.
type MergePairInput = Mutex<Option<(Vec<GroupAcc>, Vec<GroupAcc>)>>;

/// A merge pair's output slot: the merged accumulators plus the pair's
/// counted work and host time.
type MergePairOutput = Mutex<Option<(Vec<GroupAcc>, CpuCounters, Duration)>>;

/// Merges per-morsel accumulator sets with a deterministic balanced binary
/// tree: level by level, `new[i] = merge(old[2*i] <- old[2*i+1])`, an odd
/// leftover passing through to the next level's last slot. Tree positions
/// are keyed by morsel index alone, pairs of one level run in parallel
/// through the work-stealing scheduler, and counters fold in pair order —
/// so results, counters, and the merge's critical path are all pure
/// functions of the morsel partials.
fn tree_merge(
    states: &[QueryState],
    model: &HardwareModel,
    mut layer: Vec<Vec<GroupAcc>>,
    threads: usize,
) -> (Vec<GroupAcc>, MergeCost) {
    let mut cost = MergeCost {
        cpu: CpuCounters::default(),
        critical: SimTime::ZERO,
        busy: Duration::ZERO,
        pairs: 0,
        steals: 0,
    };
    if layer.is_empty() {
        // No morsels (empty table or empty candidate set): fresh, empty
        // accumulators.
        let fresh = states
            .iter()
            .map(|st| st.pipeline.kernel().new_acc())
            .collect();
        return (fresh, cost);
    }
    while layer.len() > 1 {
        let n_pairs = layer.len() / 2;
        let mut drain = std::mem::take(&mut layer).into_iter();
        let inputs: Vec<MergePairInput> = (0..n_pairs)
            .map(|_| {
                let dst = drain.next().expect("2*n_pairs elements");
                let src = drain.next().expect("2*n_pairs elements");
                Mutex::new(Some((dst, src)))
            })
            .collect();
        let leftover = drain.next();
        let outputs: Vec<MergePairOutput> = (0..n_pairs).map(|_| Mutex::new(None)).collect();
        cost.pairs += n_pairs as u64;
        cost.steals += run_units(
            threads,
            n_pairs,
            || (),
            |_, i| {
                let start = Instant::now();
                let (mut dst, src) = inputs[i]
                    .lock()
                    .expect("no panics hold merge slots")
                    .take()
                    .expect("each pair taken once");
                let mut cpu = CpuCounters::default();
                for (qi, st) in states.iter().enumerate() {
                    st.pipeline
                        .kernel()
                        .merge_partial(&mut dst[qi], &src[qi], st.mode, &mut cpu);
                }
                *outputs[i].lock().expect("no panics hold merge slots") =
                    Some((dst, cpu, start.elapsed()));
            },
        );
        let mut level_max = SimTime::ZERO;
        for out in outputs {
            let (dst, cpu, wall) = out
                .into_inner()
                .expect("scheduler joined")
                .expect("pair ran");
            level_max = level_max.max(model.cpu_time(&cpu));
            cost.cpu.merge(&cpu);
            cost.busy += wall;
            layer.push(dst);
        }
        layer.extend(leftover);
        cost.critical += level_max;
    }
    let merged = layer.pop().expect("non-empty layer");
    (merged, cost)
}

/// The legacy serial coordinator fold: every morsel's partials absorbed
/// into fresh accumulators, in morsel order, on the coordinator thread.
fn serial_fold(
    states: &[QueryState],
    model: &HardwareModel,
    parts: Vec<Vec<GroupAcc>>,
) -> (Vec<GroupAcc>, MergeCost) {
    let start = Instant::now();
    let mut cpu = CpuCounters::default();
    let mut merged: Vec<GroupAcc> = states
        .iter()
        .map(|st| st.pipeline.kernel().new_acc())
        .collect();
    for part in &parts {
        for (qi, part_groups) in part.iter().enumerate() {
            let st = &states[qi];
            st.pipeline
                .kernel()
                .merge_partial(&mut merged[qi], part_groups, st.mode, &mut cpu);
        }
    }
    let critical = model.cpu_time(&cpu);
    let pairs = parts.len() as u64;
    let cost = MergeCost {
        cpu,
        critical,
        busy: start.elapsed(),
        pairs,
        steals: 0,
    };
    (merged, cost)
}

/// Caps a requested worker count at the host's available parallelism
/// (passing the request through unchanged when the host won't say).
fn host_capped(threads: usize) -> usize {
    std::thread::available_parallelism().map_or(threads, |n| threads.min(n.get()))
}

/// Executes a set of independent classes on `threads` worker threads with
/// the default [`ExecStrategy`] (morsel-driven, default morsel size).
pub fn execute_classes(
    ctx: &mut ExecContext,
    cube: &Cube,
    classes: &[ClassSpec],
    threads: usize,
) -> Result<Vec<ClassOutcome>, ExecError> {
    execute_classes_with(ctx, cube, classes, threads, ExecStrategy::default())
}

/// Executes a set of independent classes on `threads` worker threads under
/// an explicit [`ExecStrategy`].
///
/// Every `(class, morsel)` pair becomes one unit in the work-stealing
/// scheduler, so morsels of different classes interleave freely across
/// workers — class-level and morsel-level parallelism fall out of the same
/// pool. Results per class come back in hash-then-index order; the shared
/// pool receives every partial [`IoStats`] in class/morsel order and keeps
/// its residency (see the module docs for why).
pub fn execute_classes_with(
    ctx: &mut ExecContext,
    cube: &Cube,
    classes: &[ClassSpec],
    threads: usize,
    strategy: ExecStrategy,
) -> Result<Vec<ClassOutcome>, ExecError> {
    let threads = threads.max(1);
    let model = ctx.model;

    // ---- Phase 1 (coordinator, class order): compile, bitmaps, builds.
    let mut prepared = Vec::with_capacity(classes.len());
    for spec in classes {
        if spec.hash_queries.is_empty() && spec.index_queries.is_empty() {
            return Err("a plan class needs at least one query".into());
        }
        let start = Instant::now();
        let mut states: Vec<QueryState> = spec
            .hash_queries
            .iter()
            .chain(&spec.index_queries)
            .map(|q| QueryState::compile(cube, spec.table, q))
            .collect::<Result<_, _>>()?;
        let n_hash = spec.hash_queries.len();

        let mut pool = ctx.pool.clone_residency();
        let mut cpu = CpuCounters::default();
        let t = cube.catalog.table(spec.table);
        // Index members need their result bitmaps up front in both shapes.
        // `pool` is a residency clone, which never carries a fault injector,
        // so this can only surface plan-level errors here.
        for st in states.iter_mut().skip(n_hash) {
            st.bitmap = Some(build_query_bitmap(
                &cube.schema,
                t,
                &st.query,
                &mut pool,
                &mut cpu,
            )?);
        }
        let union_mask = states.iter().fold(0u64, |m, s| m | s.pipeline.probe_mask());
        charge_hash_builds(cube, spec.table, union_mask, &mut cpu);

        let scan = if n_hash > 0 {
            ScanKind::Scan
        } else {
            // OR the member bitmaps into the candidate set, as the shared
            // index join does.
            let mut total: Option<Bitmap> = None;
            let mut everything = false;
            for st in &states {
                match &st.bitmap.as_ref().expect("index state").bitmap {
                    Some(bm) => match total.as_mut() {
                        Some(tot) => cpu.bitmap_words += tot.or_assign(bm),
                        None => total = Some(bm.clone()),
                    },
                    None => everything = true,
                }
            }
            ScanKind::Probe { total, everything }
        };
        let heap = t.heap();
        // Boundary computation (page counts, range popcounts, zone-map
        // checks) is coordinator scheduling bookkeeping, like the legacy
        // split arithmetic: it is not charged to the simulated clock. See
        // DESIGN.md.
        //
        // Scan classes over compressed heaps first consult the zone maps:
        // a zone no class query can match is never scheduled at all. The
        // sequential `shared_hybrid_join` prunes with the same query set,
        // so both paths fault the same pages. Probe classes are already
        // position-exact; the legacy strategy keeps its frozen split.
        let morsels = match (strategy, &scan) {
            (ExecStrategy::Morsel(spec), ScanKind::Scan) => {
                match keep_tuple_ranges(&cube.schema, t, states.iter().map(|s| &s.query)) {
                    Some(ranges) => scan_morsels_in_ranges(heap, spec.pages, &ranges),
                    None => class_morsels(strategy, heap, &scan),
                }
            }
            _ => class_morsels(strategy, heap, &scan),
        };
        prepared.push(PreparedClass {
            morsels,
            heap,
            probes_per_tuple: union_mask.count_ones() as u64,
            states,
            n_hash,
            scan,
            phase1_io: pool.stats(),
            phase1_cpu: cpu,
            phase1_wall: start.elapsed(),
            pool,
        });
    }

    // ---- Phase 2 (parallel): every (class, morsel) is one stealable unit.
    let phase2_start = Instant::now();
    let units: Vec<(usize, usize)> = prepared
        .iter()
        .enumerate()
        .flat_map(|(c, pc)| (0..pc.morsels.len()).map(move |m| (c, m)))
        .collect();
    let slots: Vec<Mutex<Option<MorselOutput>>> = units.iter().map(|_| Mutex::new(None)).collect();
    // The morsel scheduler never spawns more workers than the host has
    // cores: oversubscription cannot speed up a work-stealing pool, it only
    // inflates every unit's elapsed time with involuntary context switches.
    // The determinism contract makes this safe — outcomes depend on morsel
    // boundaries, never on which worker ran a morsel — so the requested
    // thread count is purely a resource ceiling here. The legacy strategy
    // keeps its historical spawn-per-request behavior.
    let workers = match strategy {
        ExecStrategy::Morsel(_) => host_capped(threads),
        ExecStrategy::LegacyFixed8 => threads,
    };
    let steals = run_units(workers, units.len(), WorkerScratch::default, |ws, u| {
        let (c, m) = units[u];
        let class = &prepared[c];
        let (lo, hi) = class.morsels[m];
        let out = run_morsel(cube, class, lo, hi, strategy, ws);
        *slots[u].lock().expect("no panics hold result slots") = Some(out);
    });
    let mut outputs: Vec<Vec<MorselOutput>> = prepared.iter().map(|_| Vec::new()).collect();
    for (&(c, _), slot) in units.iter().zip(slots) {
        outputs[c].push(slot.into_inner().expect("scope joined").expect("unit ran"));
    }
    // Steals are scheduling accidents: metrics only, never traced (see the
    // determinism rules in `starshare_obs::trace`).
    let tele = ctx.telemetry.clone();
    tele.metrics(|m| {
        m.morsels += units.len() as u64;
        m.steals += steals;
    });

    // ---- Phase 3 (coordinator, class order): merge partials, total up.
    // Trace emission happens here, in class/morsel slot order, from
    // data-derived quantities only — byte-identical across thread counts.
    let mut outcomes = Vec::with_capacity(prepared.len());
    for (ci, (class, parts)) in prepared.into_iter().zip(outputs).enumerate() {
        let mut io = class.phase1_io;
        let mut cpu = class.phase1_cpu;
        let sim1 = class.phase1_io.io_time(&model) + model.cpu_time(&class.phase1_cpu);
        let mut sim = sim1;
        let mut slowest = SimTime::ZERO;
        let mut busy = class.phase1_wall;
        tele.trace(|t| {
            t.start(
                "exec.class",
                vec![
                    ("class", ci.into()),
                    ("n_queries", class.states.len().into()),
                    ("n_morsels", parts.len().into()),
                    ("prepare_ns", sim1.into()),
                ],
            )
        });
        let mut groups_per_morsel = Vec::with_capacity(parts.len());
        for (mi, part) in parts.into_iter().enumerate() {
            io.merge(&part.io);
            cpu.merge(&part.cpu);
            let part_sim = part.io.io_time(&model) + model.cpu_time(&part.cpu);
            sim += part_sim;
            slowest = slowest.max(part_sim);
            busy += part.wall;
            tele.trace(|t| {
                let (lo, hi) = class.morsels[mi];
                t.event(
                    "exec.morsel",
                    vec![
                        ("slot", mi.into()),
                        ("lo", lo.into()),
                        ("hi", hi.into()),
                        ("sim_ns", part_sim.into()),
                        ("seq_faults", part.io.seq_faults.into()),
                        ("random_faults", part.io.random_faults.into()),
                    ],
                )
            });
            groups_per_morsel.push(part.groups);
        }
        let n_morsels = groups_per_morsel.len() as u64;

        let (merged, merge) = match strategy {
            ExecStrategy::Morsel(_) => {
                tree_merge(&class.states, &model, groups_per_morsel, workers)
            }
            ExecStrategy::LegacyFixed8 => serial_fold(&class.states, &model, groups_per_morsel),
        };
        cpu.merge(&merge.cpu);
        sim += model.cpu_time(&merge.cpu);
        busy += merge.busy;
        tele.metrics(|m| {
            m.merge_pairs += merge.pairs;
            m.steals += merge.steals;
        });
        tele.trace(|t| {
            t.event(
                "exec.merge",
                vec![
                    ("pairs", merge.pairs.into()),
                    ("cpu_ns", model.cpu_time(&merge.cpu).into()),
                    ("critical_ns", merge.critical.into()),
                ],
            )
        });
        // Elapsed latency: phase 1 (serial, per class) plus everything from
        // the parallel phase's start through this class's merge. Classes
        // share the worker pool, so their elapsed windows overlap; the
        // legacy strategy keeps its historical behavior of reporting summed
        // worker time as `wall`.
        let wall = match strategy {
            ExecStrategy::Morsel(_) => class.phase1_wall + phase2_start.elapsed(),
            ExecStrategy::LegacyFixed8 => busy,
        };

        let results: Vec<QueryResult> = class
            .states
            .iter()
            .zip(merged)
            .map(|(st, acc)| {
                QueryResult::from_groups(
                    st.query.clone(),
                    st.pipeline
                        .kernel()
                        .into_groups(acc)
                        .into_iter()
                        .map(|(k, a)| (k, a.value(st.mode))),
                )
            })
            .collect();

        ctx.pool.add_stats(&io);
        let critical = sim1 + slowest + merge.critical;
        tele.trace(|t| {
            t.advance(critical);
            t.end(
                "exec.class",
                vec![("sim_ns", sim.into()), ("critical_ns", critical.into())],
            )
        });
        outcomes.push(ClassOutcome {
            results,
            report: ExecReport {
                io,
                cpu,
                sim,
                critical,
                wall,
                busy,
            },
            merge_cpu: merge.cpu,
            n_morsels,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{shared_hybrid_join, shared_index_join};
    use starshare_olap::{paper_cube, GroupByQuery, MemberPred, PaperCubeSpec};

    fn cube() -> Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 4_000,
            d_leaf: 48,
            seed: 5,
            with_indexes: true,
        })
    }

    fn q_broad(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1, 2]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::eq(1, 0),
            ],
        )
    }

    fn q_selective(cube: &Cube) -> GroupByQuery {
        GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::eq(1, 1),
                MemberPred::eq(2, 0),
                MemberPred::eq(2, 2),
                MemberPred::eq(1, 0),
            ],
        )
    }

    #[test]
    fn morsels_are_page_aligned_and_cover_the_table() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let heap = cube.catalog.table(t).heap();
        for strategy in [
            ExecStrategy::Morsel(MorselSpec::with_pages(1)),
            ExecStrategy::Morsel(MorselSpec::default()),
            ExecStrategy::Morsel(MorselSpec::whole_table()),
            ExecStrategy::LegacyFixed8,
        ] {
            let parts = class_morsels(strategy, heap, &ScanKind::Scan);
            assert!(!parts.is_empty(), "{strategy:?}");
            let per_page = heap.layout().tuples_per_page() as u64;
            let mut expect_lo = 0;
            for &(lo, hi) in &parts {
                assert_eq!(lo, expect_lo, "contiguous ({strategy:?})");
                assert_eq!(lo % per_page, 0, "page-aligned start ({strategy:?})");
                expect_lo = hi;
            }
            assert_eq!(expect_lo, heap.n_tuples(), "full coverage ({strategy:?})");
        }
    }

    #[test]
    fn partitioned_scan_matches_sequential_operator() {
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let hash_qs = vec![q_broad(&cube)];
        let index_qs = vec![q_selective(&cube)];
        let mut ctx = ExecContext::paper_1998();
        let (seq_rs, _) = shared_hybrid_join(&mut ctx, &cube, t, &hash_qs, &index_qs).unwrap();
        let mut ctx2 = ExecContext::paper_1998();
        let spec = ClassSpec {
            table: t,
            hash_queries: hash_qs,
            index_queries: index_qs,
        };
        let out = execute_classes(&mut ctx2, &cube, std::slice::from_ref(&spec), 2).unwrap();
        assert_eq!(out.len(), 1);
        for (par, seq) in out[0].results.iter().zip(&seq_rs) {
            assert!(par.approx_eq(seq, 1e-9));
        }
        assert!(out[0].report.critical <= out[0].report.sim);
        assert!(out[0].report.critical > SimTime::ZERO);
    }

    #[test]
    fn partitioned_probe_matches_sequential_operator() {
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let qs = vec![q_selective(&cube)];
        let mut ctx = ExecContext::paper_1998();
        let (seq_rs, _) = shared_index_join(&mut ctx, &cube, t, &qs).unwrap();
        for strategy in [ExecStrategy::default(), ExecStrategy::LegacyFixed8] {
            let mut ctx2 = ExecContext::paper_1998();
            let spec = ClassSpec {
                table: t,
                hash_queries: vec![],
                index_queries: qs.clone(),
            };
            let out =
                execute_classes_with(&mut ctx2, &cube, std::slice::from_ref(&spec), 3, strategy)
                    .unwrap();
            assert!(
                out[0].results[0].approx_eq(&seq_rs[0], 1e-9),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn legacy_and_morsel_agree_on_io_and_feed_work() {
        // The two strategies split the same pages and probe the same
        // candidates: I/O and per-tuple feed counters must agree exactly
        // (merge charges legitimately differ — the tree merges pairs, the
        // fold re-absorbs every partial into a fresh accumulator).
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube)],
            index_queries: vec![q_selective(&cube)],
        };
        let run = |strategy| {
            let mut ctx = ExecContext::paper_1998();
            execute_classes_with(&mut ctx, &cube, std::slice::from_ref(&spec), 2, strategy)
                .unwrap()
                .remove(0)
        };
        let legacy = run(ExecStrategy::LegacyFixed8);
        let morsel = run(ExecStrategy::default());
        assert_eq!(legacy.report.io, morsel.report.io);
        // `bitmap_tests` is charged only on the feed path, so it is
        // invariant in the split; the other CPU counters also accrue in
        // `merge_partial` (once per merged group) and legitimately track
        // the partial count.
        assert_eq!(
            legacy.report.cpu.bitmap_tests,
            morsel.report.cpu.bitmap_tests
        );
        for (a, b) in legacy.results.iter().zip(&morsel.results) {
            assert!(a.approx_eq(b, 1e-9));
        }
    }

    #[test]
    fn thread_count_never_changes_the_clock() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube), q_selective(&cube)],
            index_queries: vec![],
        };
        for strategy in [
            ExecStrategy::Morsel(MorselSpec::with_pages(1)),
            ExecStrategy::default(),
            ExecStrategy::LegacyFixed8,
        ] {
            let runs: Vec<ClassOutcome> = [1usize, 2, 7, 16]
                .iter()
                .map(|&n| {
                    let mut ctx = ExecContext::paper_1998();
                    execute_classes_with(&mut ctx, &cube, std::slice::from_ref(&spec), n, strategy)
                        .unwrap()
                        .remove(0)
                })
                .collect();
            for other in &runs[1..] {
                assert_eq!(runs[0].report.sim, other.report.sim, "{strategy:?}");
                assert_eq!(
                    runs[0].report.critical, other.report.critical,
                    "{strategy:?}"
                );
                assert_eq!(runs[0].report.io, other.report.io, "{strategy:?}");
                for (a, b) in runs[0].results.iter().zip(&other.results) {
                    assert_eq!(a.rows, b.rows, "bit-identical results ({strategy:?})");
                }
            }
        }
    }

    #[test]
    fn morsel_size_never_changes_io_or_answers() {
        // Morsel boundaries are page-aligned, so each page's accesses fall
        // in exactly one morsel: IoStats and feed counters are invariant in
        // the morsel size. Results stay within float-reassociation noise
        // (the merge-tree shape legitimately follows the morsel count, so
        // bit-identity is only promised at a *fixed* size — see DESIGN.md).
        let cube = cube();
        let t = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube)],
            index_queries: vec![q_selective(&cube)],
        };
        let runs: Vec<ClassOutcome> = [1u32, DEFAULT_MORSEL_PAGES, u32::MAX]
            .iter()
            .map(|&pages| {
                let mut ctx = ExecContext::paper_1998();
                execute_classes_with(
                    &mut ctx,
                    &cube,
                    std::slice::from_ref(&spec),
                    4,
                    ExecStrategy::Morsel(MorselSpec::with_pages(pages)),
                )
                .unwrap()
                .remove(0)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].report.io, other.report.io);
            assert_eq!(
                runs[0].report.cpu.bitmap_tests,
                other.report.cpu.bitmap_tests
            );
            for (a, b) in runs[0].results.iter().zip(&other.results) {
                assert!(a.approx_eq(b, 1e-9));
            }
        }
    }

    #[test]
    fn probe_everything_query_probes_every_row_once() {
        let cube = cube();
        // A''B''C''D has no indexes: the index class degenerates to probing
        // all positions.
        let t = cube.catalog.find_by_name("A''B''C''D").unwrap();
        let q = GroupByQuery::new(
            cube.groupby("A''B''C''D"),
            vec![
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![],
            index_queries: vec![q.clone()],
        };
        let mut ctx = ExecContext::paper_1998();
        let out = execute_classes(&mut ctx, &cube, std::slice::from_ref(&spec), 2).unwrap();
        let n = cube.catalog.table(t).n_rows();
        assert_eq!(out[0].report.cpu.bitmap_tests, n);
        let mut ctx2 = ExecContext::paper_1998();
        let (seq_rs, _) = shared_index_join(&mut ctx2, &cube, t, &[q]).unwrap();
        assert!(out[0].results[0].approx_eq(&seq_rs[0], 1e-9));
    }

    #[test]
    fn empty_class_is_rejected() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let mut ctx = ExecContext::paper_1998();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![],
            index_queries: vec![],
        };
        assert!(execute_classes(&mut ctx, &cube, &[spec], 2).is_err());
    }

    #[test]
    fn stats_flow_back_to_the_shared_pool() {
        let cube = cube();
        let t = cube.catalog.base_table().unwrap();
        let spec = ClassSpec {
            table: t,
            hash_queries: vec![q_broad(&cube)],
            index_queries: vec![],
        };
        let mut ctx = ExecContext::paper_1998();
        let before = ctx.pool.stats();
        let out = execute_classes(&mut ctx, &cube, &[spec], 2).unwrap();
        let delta = ctx.pool.stats().since(&before);
        assert_eq!(delta, out[0].report.io);
        assert!(delta.seq_faults > 0);
    }
}
