//! Reference evaluator.
//!
//! A deliberately naive, allocation-happy, *independent* implementation of
//! dimensional query evaluation: full raw scan, per-dimension roll-up via
//! the schema, predicate check, BTreeMap aggregation. No buffer pool, no
//! counters, no shared code with the operators beyond the schema types —
//! its whole job is to be obviously correct so the test suite can compare
//! every operator against it.

use std::collections::BTreeMap;

use starshare_olap::{AggFn, Cube, GroupByQuery, LevelRef, MeasureKind, MemberPred, TableId};

use crate::result::QueryResult;

/// Evaluates `query` against `table` by brute force.
///
/// # Panics
/// Panics if the table cannot answer the query (levels or measure).
pub fn reference_eval(cube: &Cube, table: TableId, query: &GroupByQuery) -> QueryResult {
    let schema = &cube.schema;
    let t = cube.catalog.table(table);
    assert!(
        query.answerable_from(t.group_by()),
        "reference_eval: {} not answerable from {}",
        query.display(schema),
        t.group_by().display(schema)
    );
    assert!(
        t.measure().answers(query.agg),
        "reference_eval: a {} table cannot answer {} queries",
        t.measure(),
        query.agg
    );
    let n_dims = schema.n_dims();
    // Deliberately independent aggregation logic: (value, row count) pairs
    // folded by a plain match, not the engine's AggState.
    let mut groups: BTreeMap<Vec<u32>, (f64, u64)> = BTreeMap::new();
    let mut keys = vec![0u32; n_dims];
    'tuples: for pos in 0..t.n_rows() {
        let measure = t.heap().read_at(pos, &mut keys);
        // Predicates.
        #[allow(clippy::needless_range_loop)] // d indexes three parallel structures
        for d in 0..n_dims {
            if let MemberPred::In { level, members } = &query.preds[d] {
                let stored = t
                    .stored_level(d)
                    .expect("pred on an All dimension is unanswerable");
                let rolled = schema.dim(d).roll_up(keys[d], stored, *level);
                // `MemberPred::In` members are sorted + deduplicated.
                if members.binary_search(&rolled).is_err() {
                    continue 'tuples;
                }
            }
        }
        // Group key.
        let mut gk = Vec::new();
        #[allow(clippy::needless_range_loop)] // d indexes parallel structures
        for d in 0..n_dims {
            if let LevelRef::Level(target) = query.group_by.level(d) {
                let stored = t.stored_level(d).expect("target on an All dimension");
                gk.push(schema.dim(d).roll_up(keys[d], stored, target));
            }
        }
        let cell = groups.entry(gk);
        let from_count_view = matches!(t.measure(), MeasureKind::Aggregated(AggFn::Count));
        match query.agg {
            AggFn::Sum => {
                let e = cell.or_insert((0.0, 0));
                e.0 += measure;
            }
            AggFn::Count => {
                let e = cell.or_insert((0.0, 0));
                e.0 += if from_count_view { measure } else { 1.0 };
            }
            AggFn::Min => {
                let e = cell.or_insert((f64::INFINITY, 0));
                e.0 = e.0.min(measure);
            }
            AggFn::Max => {
                let e = cell.or_insert((f64::NEG_INFINITY, 0));
                e.0 = e.0.max(measure);
            }
            AggFn::Avg => {
                let e = cell.or_insert((0.0, 0));
                e.0 += measure;
                e.1 += 1;
            }
        }
    }
    QueryResult::from_groups(
        query.clone(),
        groups.into_iter().map(|(k, (v, n))| match query.agg {
            AggFn::Avg => (k, v / n as f64),
            _ => (k, v),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use starshare_olap::{paper_cube, GroupBy, PaperCubeSpec};

    fn tiny_cube() -> Cube {
        paper_cube(PaperCubeSpec {
            base_rows: 2_000,
            d_leaf: 24,
            seed: 3,
            with_indexes: false,
        })
    }

    #[test]
    fn unfiltered_total_matches_base_sum() {
        let cube = tiny_cube();
        let base = cube.catalog.base_table().unwrap();
        let q = GroupByQuery::unfiltered(cube.groupby("A''B''C''D''"));
        let r = reference_eval(&cube, base, &q);
        let t = cube.catalog.table(base);
        let mut keys = vec![0u32; 4];
        let expect: f64 = (0..t.n_rows())
            .map(|p| t.heap().read_at(p, &mut keys))
            .sum();
        assert!((r.grand_total() - expect).abs() < 1e-6);
        assert!(r.n_groups() <= 81);
    }

    #[test]
    fn same_answer_from_base_and_view() {
        let cube = tiny_cube();
        let base = cube.catalog.base_table().unwrap();
        let view = cube.catalog.find_by_name("A'B'C'D").unwrap();
        let q = GroupByQuery::new(
            cube.groupby("A'B''C''D"),
            vec![
                MemberPred::members_in(1, vec![0, 1, 2]),
                MemberPred::eq(2, 0),
                MemberPred::All,
                MemberPred::eq(1, 0),
            ],
        );
        let r1 = reference_eval(&cube, base, &q);
        let r2 = reference_eval(&cube, view, &q);
        assert!(r1.approx_eq(&r2, 1e-9), "base vs view disagree");
        assert!(r1.n_groups() > 0, "query should not be empty at this scale");
    }

    #[test]
    fn empty_predicate_yields_empty_result() {
        let cube = tiny_cube();
        let base = cube.catalog.base_table().unwrap();
        // A'' member predicates are 0,1,2; intersecting two disjoint single
        // members is impossible per dimension, so pick an empty member set.
        let q = GroupByQuery::new(
            GroupBy::finest(4),
            vec![
                MemberPred::members_in(2, vec![]),
                MemberPred::All,
                MemberPred::All,
                MemberPred::All,
            ],
        );
        let r = reference_eval(&cube, base, &q);
        assert_eq!(r.n_groups(), 0);
        assert_eq!(r.grand_total(), 0.0);
    }
}
